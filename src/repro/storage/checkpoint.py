"""Data-directory layout: checkpoints, manifest, and the segment cache.

A ``--data-dir`` given to ``repro-detect serve`` has this shape::

    DATA_DIR/
      MANIFEST.json          # {"format", "checkpoint": "ckpt-3"|null, "cut_lsn": N}
      LOCK                   # exclusive-serving advisory lock (holder's pid)
      wal.log                # the write-ahead log (repro.storage.wal)
      checkpoints/
        ckpt-3/
          registry.json      # graphs, catalogs, sessions (one document)
          <graph>-v<k>.json  # one graph image per retained version
      segments/
        run-<pid>/           # executor spool cache for the live process
          k<digest>/...      # one sharded-store spool per runtime key

The manifest is the recovery root and is always written atomically
(:func:`repro.graph.io.atomic_write_json`): a crash mid-checkpoint leaves
the previous manifest pointing at the previous complete checkpoint, and
the stale half-written ``ckpt-N`` directory is garbage-collected on the
next successful checkpoint.  Only after the manifest rename does the WAL
prefix get truncated — the invariant is ``checkpoint ⊕ WAL suffix ==
current state`` at every instant.

This module knows nothing about the service layer; it deals purely in
paths and JSON documents.  :mod:`repro.storage.manager` assembles the
documents from live service state.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from pathlib import Path
from typing import Optional, Union

try:  # POSIX only; on other platforms the data dir runs unlocked
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import ReproError
from repro.graph.io import atomic_write_json, load_json_document

__all__ = ["DataDirectory", "SegmentCache", "DATA_DIR_FORMAT"]

DATA_DIR_FORMAT = "repro-data-dir"


class DataDirectory:
    """Path bookkeeping for one durable service data directory.

    Construction takes an exclusive advisory lock (``fcntl.lockf``) on a
    ``LOCK`` file in the directory and fails fast when another *process*
    already holds it: two servers appending to the same ``wal.log`` would
    interleave LSNs, and each boot's :class:`SegmentCache` deletes every
    ``run-*`` spool directory — including the other live process's.  POSIX
    record locks are per-process, so the in-process recovery tests (which
    abandon a crashed service object and reopen the same directory) still
    work, and the kernel releases the lock automatically on ``kill -9``.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoints_root.mkdir(exist_ok=True)
        self._lock_handle = open(self.lock_path, "a+", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.lockf(self._lock_handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self._lock_handle.seek(0)  # "a+" positions at EOF
                pid = self._lock_handle.read().strip()
                holder = f"pid {pid}" if pid else "unknown pid"
                self._lock_handle.close()
                self._lock_handle = None
                raise ReproError(
                    f"data directory {self.root} is already being served by "
                    f"another process ({holder} holds {self.lock_path}); two "
                    f"servers on one data dir would corrupt the WAL"
                ) from None
        self._lock_handle.seek(0)
        self._lock_handle.truncate()
        self._lock_handle.write(f"{os.getpid()}\n")
        self._lock_handle.flush()

    def release(self) -> None:
        """Drop the exclusive lock (clean shutdown)."""
        if self._lock_handle is not None:
            self._lock_handle.close()
            self._lock_handle = None

    # ------------------------------------------------------------------ paths

    @property
    def wal_path(self) -> Path:
        return self.root / "wal.log"

    @property
    def lock_path(self) -> Path:
        return self.root / "LOCK"

    @property
    def manifest_path(self) -> Path:
        return self.root / "MANIFEST.json"

    @property
    def checkpoints_root(self) -> Path:
        return self.root / "checkpoints"

    @property
    def segments_root(self) -> Path:
        return self.root / "segments"

    def checkpoint_dir(self, name: str) -> Path:
        return self.checkpoints_root / name

    # --------------------------------------------------------------- manifest

    def read_manifest(self) -> Optional[dict]:
        """Return the manifest document, or ``None`` for a fresh data dir."""
        if not self.manifest_path.is_file():
            return None
        manifest = load_json_document(self.manifest_path)
        if not isinstance(manifest, dict) or manifest.get("format") != DATA_DIR_FORMAT:
            raise ReproError(
                f"{self.manifest_path} is not a {DATA_DIR_FORMAT} manifest; refusing "
                f"to serve from a directory that holds something else"
            )
        return manifest

    def write_manifest(self, checkpoint: Optional[str], cut_lsn: int) -> None:
        """Atomically point the data dir at ``checkpoint`` (WAL cut at ``cut_lsn``)."""
        atomic_write_json(
            {"format": DATA_DIR_FORMAT, "checkpoint": checkpoint, "cut_lsn": cut_lsn},
            self.manifest_path,
        )

    # ------------------------------------------------------------ checkpoints

    def next_checkpoint_name(self) -> str:
        """Return an unused ``ckpt-<n>`` name (strictly above every existing one)."""
        highest = 0
        for entry in self.checkpoints_root.iterdir():
            if entry.name.startswith("ckpt-"):
                try:
                    highest = max(highest, int(entry.name[5:]))
                except ValueError:
                    continue
        return f"ckpt-{highest + 1}"

    def prune_checkpoints(self, keep: Optional[str]) -> None:
        """Delete every checkpoint directory except ``keep``.

        Removes both superseded checkpoints and half-written ones left by a
        crash mid-checkpoint (they were never named by a manifest).
        """
        for entry in self.checkpoints_root.iterdir():
            if entry.is_dir() and entry.name != keep:
                shutil.rmtree(entry, ignore_errors=True)


class SegmentCache:
    """Durable spool directories for the executor's warm worker pools.

    ``directory_for(key)`` maps a detector runtime key to a stable
    directory under ``segments/run-<pid>/``, so a warm-pool reload with the
    same key finds the sharded-store images already serialized there and
    adopts them (``ShardedStore.spool`` manifest adoption) instead of
    re-spooling the whole graph.

    Runtime keys embed a process-unique store token, so a cached spool is
    only meaningful to the process that wrote it: the cache scopes its
    directories per run and deletes every ``run-*`` leftover at
    construction — which is also how spools orphaned by a SIGKILL get
    cleaned up on the next boot.  ``close()`` removes the live run's
    directory on clean shutdown.
    """

    def __init__(self, data_dir: DataDirectory) -> None:
        self._root = data_dir.segments_root
        self._root.mkdir(exist_ok=True)
        for entry in self._root.iterdir():
            if entry.is_dir() and entry.name.startswith("run-"):
                shutil.rmtree(entry, ignore_errors=True)
        self._run_dir = self._root / f"run-{os.getpid()}"
        self._run_dir.mkdir(exist_ok=True)

    @property
    def run_dir(self) -> Path:
        return self._run_dir

    def directory_for(self, runtime_key: object) -> str:
        """Return (creating if needed) the spool directory for ``runtime_key``."""
        digest = hashlib.sha256(repr(runtime_key).encode("utf-8")).hexdigest()[:16]
        directory = self._run_dir / f"k{digest}"
        directory.mkdir(exist_ok=True)
        return str(directory)

    def close(self) -> None:
        """Remove this run's spool directories (clean shutdown)."""
        shutil.rmtree(self._run_dir, ignore_errors=True)
