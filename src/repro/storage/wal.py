"""Write-ahead log for the durable detection service.

Every accepted mutation of service state — graph registration, an applied
``POST /graphs/{name}/updates`` batch, catalog registration, continuous
session lifecycle and their per-version :class:`ViolationDelta` records —
is appended here *before* the client sees an acknowledgement.  Recovery
(:mod:`repro.storage.manager`) replays the suffix of this log on top of
the latest checkpoint, so the ack-implies-logged invariant is what makes
``kill -9`` safe.

Record format (one record per line)::

    <crc32 of body, 8 lowercase hex chars> <body>\n

where ``body`` is a compact JSON object carrying a monotonic ``"lsn"``
plus the record payload, serialized with sorted keys so the bytes are
deterministic.  Appends are flushed and ``fsync``'d before returning.

Torn tails: a crash can leave a partially written final record.  On open
the log is scanned sequentially; the first line that fails to parse,
fails its CRC, or breaks LSN monotonicity marks the torn tail, and the
file is truncated back to the last good record.  Corruption can only be
a tail — records are appended in LSN order and fsync'd in order — so
truncation never discards acknowledged state that a checkpoint has not
already captured.

Stale prefixes: a crash between a checkpoint's manifest swing and its
WAL truncation leaves intact records at or below the manifest's cut LSN
at the head of the file.  Those are *valid* records the checkpoint
already covers — not corruption — so opening with ``start_lsn`` skips
past them and keeps scanning; only a decode/CRC failure or an LSN that
goes backwards within the live region marks the torn tail.  Treating
the stale prefix as a tail would truncate the whole file and lose
acknowledged records above the cut.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path
from typing import Iterator, Optional, Union

from repro import obs
from repro.errors import ReproError
from repro.testing.faults import wal_fault_injector

__all__ = ["WalCorruption", "WriteAheadLog"]

PathLike = Union[str, Path]


class WalCorruption(Exception):
    """Raised for WAL damage that cannot be repaired by tail truncation."""


def _encode(lsn: int, payload: dict) -> bytes:
    try:
        body = json.dumps({"lsn": lsn, **payload}, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        # no default=str here: silently stringifying a datetime (or any other
        # non-JSON value) would make replay reconstruct state whose value
        # types differ from what the live process held — fail at append time
        # instead, before the mutation is acknowledged
        raise ReproError(f"WAL record is not JSON-serializable: {exc}") from None
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x} {body}\n".encode("utf-8")


def _decode(line: bytes) -> Optional[dict]:
    """Return the record payload, or None when the line is torn/corrupt."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line.decode("utf-8")
        crc_hex, body = text[:-1].split(" ", 1)
        if len(crc_hex) != 8:
            return None
        if int(crc_hex, 16) != (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF):
            return None
        record = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not isinstance(record.get("lsn"), int):
        return None
    return record


class WriteAheadLog:
    """An append-only, CRC-checked, fsync'd record log with monotonic LSNs.

    Opening scans any existing file, truncates a torn tail, and positions
    the next LSN after the last intact record (or at ``start_lsn`` for an
    empty log — recovery passes the checkpoint's cut LSN + 1 so LSNs stay
    monotonic across checkpoint truncations).
    """

    def __init__(self, path: PathLike, start_lsn: int = 1) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        cut = start_lsn - 1
        last_lsn = cut
        good_offset = 0
        if self.path.exists():
            with open(self.path, "rb") as handle:
                offset = 0
                for line in handle:
                    record = _decode(line)
                    if record is None:
                        break  # torn or corrupt tail
                    lsn = record["lsn"]
                    if last_lsn == cut and lsn <= cut:
                        # stale prefix: a crash between the checkpoint's
                        # manifest swing and its truncate_through left
                        # records the checkpoint already covers — keep
                        # them and keep scanning for the live suffix
                        offset += len(line)
                        good_offset = offset
                        continue
                    if lsn <= last_lsn:
                        break  # LSN went backwards in the live region: torn tail
                    last_lsn = lsn
                    offset += len(line)
                    good_offset = offset
            if good_offset < self.path.stat().st_size:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_offset)
                    handle.flush()
                    os.fsync(handle.fileno())
        self._last_lsn = last_lsn
        self._handle = open(self.path, "ab")
        # deterministic fault injection (REPRO_FAULTS=wal_fsync:...); None in
        # production, so the append hot path pays a single identity check
        self._faults = wal_fault_injector()

    # ------------------------------------------------------------------ state

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (start_lsn - 1 if none)."""
        return self._last_lsn

    @property
    def next_lsn(self) -> int:
        return self._last_lsn + 1

    # ----------------------------------------------------------------- append

    def append(self, payload: dict) -> int:
        """Durably append one record; return its LSN."""
        return self.append_many([payload])

    def append_many(self, payloads: list[dict]) -> int:
        """Durably append several records under a single flush+fsync.

        The batch is atomic in the torn-tail sense only for its final
        record; callers group records that must land together (an update
        and the session deltas it produced) and rely on idempotent replay
        for the prefix.  Returns the last LSN written.
        """
        if not payloads:
            return self._last_lsn
        chunk = bytearray()
        lsn = self._last_lsn
        for payload in payloads:
            lsn += 1
            chunk += _encode(lsn, payload)
        offset = self._handle.tell()
        started = time.monotonic()
        try:
            self._handle.write(chunk)
            self._handle.flush()
            if self._faults is not None:
                self._faults.on_fsync()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            # The records never became durable: roll the file back to the
            # pre-append offset so the on-disk log holds exactly the
            # acknowledged prefix, keep _last_lsn where it was, and surface
            # a clean error.  The log object stays usable — a later append
            # may succeed (transient ENOSPC/EIO) and recovery sees no gap.
            self._rollback_append(offset)
            if obs.enabled():
                obs.counter_inc("repro_wal_fsync_failures_total")
            raise ReproError(
                f"WAL append could not be made durable ({exc}); the log was "
                f"rolled back to its last acknowledged record (lsn "
                f"{self._last_lsn}) and no state was lost"
            ) from exc
        if obs.enabled():
            obs.histogram_observe(
                "repro_wal_fsync_seconds", None, time.monotonic() - started
            )
            obs.counter_inc("repro_wal_appends_total", None, len(payloads))
            obs.counter_inc("repro_wal_bytes_total", None, len(chunk))
        self._last_lsn = lsn
        return lsn

    def _rollback_append(self, offset: int) -> None:
        """Truncate the file back to ``offset`` after a failed flush/fsync."""
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close after a failed fsync
            pass
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")

    # ----------------------------------------------------------------- replay

    def records(self) -> Iterator[dict]:
        """Yield every intact record in LSN order (for recovery replay).

        A stale prefix left by an interrupted truncation is yielded too;
        recovery filters on the manifest's cut LSN (replay is idempotent
        regardless).
        """
        self._handle.flush()
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            for line in handle:
                record = _decode(line)
                if record is None:
                    return
                yield record

    # --------------------------------------------------------------- truncate

    def truncate_through(self, lsn: int) -> None:
        """Drop every record with an LSN <= ``lsn`` (checkpoint prefix GC).

        Rewrites the retained suffix to a temporary file and atomically
        renames it over the log, so a crash mid-truncation leaves either
        the old or the new log — never a mix.
        """
        retained = [record for record in self.records() if record["lsn"] > lsn]
        self._handle.close()
        tmp_path = self.path.with_suffix(".tmp")
        with open(tmp_path, "wb") as handle:
            for record in retained:
                payload = {key: value for key, value in record.items() if key != "lsn"}
                handle.write(_encode(record["lsn"], payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._last_lsn = max(self._last_lsn, lsn)
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WriteAheadLog({str(self.path)!r}, last_lsn={self._last_lsn})"
