"""Disk-backed graph storage engine: SQLite write-through + indexed reads.

:class:`PersistentStore` is the durable member of the pluggable-store
family (``repro.graph.store``).  It keeps the graph in two places at
once:

* an SQLite database (stdlib :mod:`sqlite3`) holding the node/edge/label
  schema — the durable image, with the same index surface as
  :class:`~repro.graph.store.IndexedStore` (a node-label index and
  per-direction ``(node, edge label)`` adjacency indexes);
* a full in-memory :class:`IndexedStore` mirror that serves **every**
  read.  Mutators write through to both.

Routing all reads through the mirror buys three properties at the price
of RAM (bounded by the same graphs the in-memory engines already hold):
reads are byte-identical to the ``indexed`` engine — iteration order,
zero-copy views, determinism under hash randomization — so the whole
parity suite transfers; the hot detection path never crosses into C
library calls per adjacency probe; and forked worker processes never
touch the inherited SQLite connection (SQLite connections are not
fork-safe — see "fork safety" in ``docs/ARCHITECTURE.md``), because
everything they read lives in plain Python dicts.

Insertion ranks are persisted.  The mirror's own rank counter restarts
at zero per process, which would renumber nodes after removal gaps on a
reopen; :meth:`node_rank` therefore answers from the store's own
persisted rank table, which reproduces exactly the ranks the reference
``DictStore`` would have assigned over the same operation sequence.

Node ids and attribute values round-trip through JSON (the same
convention as the spool/checkpoint images in :mod:`repro.graph.io`);
graphs with non-JSON-encodable node ids cannot be persisted and raise
:class:`~repro.errors.GraphError` on insertion.

A frozen-CSR fast path for detection is exposed via :meth:`csr_store`:
the first caller pays one conversion to a frozen
:class:`~repro.graph.store.CsrStore` image, later callers (the sharded
executor's single-image path, benchmarks) share it until the next
mutation invalidates it.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Hashable, Iterator
from pathlib import Path
from typing import Optional, Union

from repro.errors import GraphError
from repro.graph.model import Edge, Node
from repro.graph.store import (
    STORE_REGISTRY,
    CsrStore,
    GraphStore,
    IndexedStore,
    EdgeKey,
    Signature,
)

__all__ = ["PersistentStore"]

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    id TEXT PRIMARY KEY,
    label TEXT NOT NULL,
    attributes TEXT NOT NULL,
    rank INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_nodes_label ON nodes(label);
CREATE INDEX IF NOT EXISTS idx_nodes_rank ON nodes(rank);
CREATE TABLE IF NOT EXISTS edges (
    source TEXT NOT NULL,
    target TEXT NOT NULL,
    label TEXT NOT NULL,
    seq INTEGER NOT NULL,
    PRIMARY KEY (source, target, label)
);
CREATE INDEX IF NOT EXISTS idx_edges_out ON edges(source, label);
CREATE INDEX IF NOT EXISTS idx_edges_in ON edges(target, label);
CREATE INDEX IF NOT EXISTS idx_edges_seq ON edges(seq);
"""


def _encode_id(node_id: Hashable) -> str:
    try:
        return json.dumps(node_id, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        raise GraphError(
            f"node id {node_id!r} is not JSON-encodable; the persistent store "
            "(like spooled images) requires JSON-round-trippable node ids"
        ) from None


def _tuplify(value):
    """Recursively turn JSON lists back into tuples.

    Any list in an id position must have started life as a tuple (lists
    are unhashable, so they cannot be node ids), and that holds at every
    nesting depth — ``('a', (1, 2))`` must decode back to itself, not to
    the unhashable ``('a', [1, 2])``.
    """
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _decode_id(text: str) -> Hashable:
    return _tuplify(json.loads(text))


def _encode_attributes(attributes) -> str:
    try:
        # no default=str: silently stringifying a non-JSON value would make
        # a reopened store disagree with the live one on attribute types
        return json.dumps(dict(attributes), sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        raise GraphError(
            f"attributes {attributes!r} are not JSON-encodable; the persistent "
            "store (like spooled images) requires JSON-round-trippable "
            "attribute values"
        ) from None


class PersistentStore(GraphStore):
    """Durable SQLite engine behind the standard :class:`GraphStore` contract.

    ``path=None`` (the registry default — :func:`make_store` instantiates
    factories with no arguments) backs the store with a private
    ``:memory:`` database: the full schema is exercised, nothing touches
    disk.  Pass a filesystem path (or use :meth:`open`) for a durable
    store; reopening an existing database restores nodes in rank order
    and edges in insertion (``seq``) order, so iteration and match
    enumeration are identical to the process that wrote it.
    """

    backend = "persistent"
    supports_mutation = True

    def __init__(self, path: Optional[PathLike] = None, fast_unsafe: bool = False) -> None:
        self.path = str(path) if path is not None else None
        # autocommit: every statement lands immediately, so clones (via the
        # backup API) and reopen both see the current state without an
        # explicit flush.  check_same_thread=False because the service
        # mutates registered graphs from HTTP handler threads; access is
        # serialized by the registry's per-graph lock (and the GraphStore
        # contract never promised thread-safe concurrent mutation anyway).
        self._connection = sqlite3.connect(
            self.path or ":memory:", isolation_level=None, check_same_thread=False
        )
        self._connection.executescript(_SCHEMA)
        if self.path is None or fast_unsafe:
            # ``fast_unsafe`` is for callers whose durability lives elsewhere
            # (the service's WAL + checkpoints): a kill -9 may corrupt the
            # database file, which such callers treat as disposable.  A
            # :memory: database has nothing to corrupt, so it always takes
            # the fast path.
            self._connection.execute("PRAGMA synchronous=OFF")
            self._connection.execute("PRAGMA journal_mode=MEMORY")
        else:
            # standalone durable engine: SQLite's own WAL journaling keeps
            # the file uncorruptible under kill -9; synchronous=NORMAL can
            # lose the last transactions on *power* failure but never
            # consistency, and avoids an fsync per autocommitted statement.
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
        self._mirror = IndexedStore()
        self._rank: dict[Hashable, int] = {}
        self._next_rank = 0
        self._next_seq = 0
        self._csr_cache: Optional[CsrStore] = None
        if self.path is not None:
            self._load_existing()

    @classmethod
    def open(cls, path: PathLike, fast_unsafe: bool = False) -> "PersistentStore":
        """Open (or create) a durable store at ``path``."""
        return cls(path, fast_unsafe=fast_unsafe)

    def _load_existing(self) -> None:
        cursor = self._connection.execute(
            "SELECT id, label, attributes, rank FROM nodes ORDER BY rank"
        )
        for id_text, label, attributes_text, rank in cursor:
            node_id = _decode_id(id_text)
            self._mirror.add_node(Node(node_id, label, json.loads(attributes_text)))
            self._rank[node_id] = rank
        cursor = self._connection.execute(
            "SELECT source, target, label, seq FROM edges ORDER BY seq"
        )
        for source_text, target_text, label, seq in cursor:
            self._mirror.add_edge(Edge(_decode_id(source_text), _decode_id(target_text), label))
            self._next_seq = seq + 1
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'next_rank'"
        ).fetchone()
        # the meta counter may lag the row data (it is refreshed on flush);
        # the true high-water mark is the max of both
        candidates = [0]
        if row is not None:
            candidates.append(int(row[0]))
        if self._rank:
            candidates.append(max(self._rank.values()) + 1)
        self._next_rank = max(candidates)

    # ------------------------------------------------------------- durability

    def flush(self) -> None:
        """Commit any buffered state to the database file."""
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES ('next_rank', ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (str(self._next_rank),),
        )
        self._connection.commit()

    def close(self) -> None:
        """Flush and release the database connection (reads keep working)."""
        if self._connection is not None:
            self.flush()
            self._connection.close()
            self._connection = None  # type: ignore[assignment]

    def _dirty(self) -> None:
        self._csr_cache = None

    def csr_store(self) -> CsrStore:
        """Return a frozen-CSR image of the current contents (cached).

        The detection fast path: frozen CSR adjacency is immutable and
        fork-safe, so sharded/parallel execution can reuse one image
        across runs until the next mutation invalidates it.
        """
        cached = self._csr_cache
        if cached is None:
            cached = CsrStore()
            for node in self._mirror.nodes():
                cached.add_node(node)
            for edge in self._mirror.edges():
                cached.add_edge(edge)
            freeze = getattr(cached, "_freeze", None)
            if callable(freeze):
                freeze()
            self._csr_cache = cached
        return cached

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        id_text = _encode_id(node.id)
        self._mirror.add_node(node)
        self._rank[node.id] = self._next_rank
        self._connection.execute(
            "INSERT INTO nodes (id, label, attributes, rank) VALUES (?, ?, ?, ?)",
            (id_text, node.label, _encode_attributes(node.attributes), self._next_rank),
        )
        self._next_rank += 1
        self._dirty()

    def replace_node(self, node: Node) -> None:
        self._mirror.replace_node(node)
        self._connection.execute(
            "UPDATE nodes SET attributes = ? WHERE id = ?",
            (_encode_attributes(node.attributes), _encode_id(node.id)),
        )
        self._dirty()

    def remove_node(self, node_id: Hashable) -> None:
        self._mirror.remove_node(node_id)
        del self._rank[node_id]
        self._connection.execute("DELETE FROM nodes WHERE id = ?", (_encode_id(node_id),))
        self._dirty()

    def get_node(self, node_id: Hashable) -> Optional[Node]:
        return self._mirror.get_node(node_id)

    def has_node(self, node_id: Hashable) -> bool:
        return self._mirror.has_node(node_id)

    def node_count(self) -> int:
        return self._mirror.node_count()

    def nodes(self) -> Iterator[Node]:
        return self._mirror.nodes()

    def node_ids(self) -> Iterator[Hashable]:
        return self._mirror.node_ids()

    def all_node_ids(self):
        return self._mirror.all_node_ids()

    def node_rank(self, node_id: Hashable) -> int:
        return self._rank[node_id]

    def nodes_with_label(self, label: str):
        return self._mirror.nodes_with_label(label)

    def labels(self) -> frozenset[str]:
        return self._mirror.labels()

    # ------------------------------------------------------------------ edges

    def add_edge(self, edge: Edge) -> None:
        self._mirror.add_edge(edge)
        self._connection.execute(
            "INSERT INTO edges (source, target, label, seq) VALUES (?, ?, ?, ?)",
            (_encode_id(edge.source), _encode_id(edge.target), edge.label, self._next_seq),
        )
        self._next_seq += 1
        self._dirty()

    def remove_edge(self, key: EdgeKey) -> None:
        self._mirror.remove_edge(key)
        source, target, label = key
        self._connection.execute(
            "DELETE FROM edges WHERE source = ? AND target = ? AND label = ?",
            (_encode_id(source), _encode_id(target), label),
        )
        self._dirty()

    def get_edge(self, key: EdgeKey) -> Optional[Edge]:
        return self._mirror.get_edge(key)

    def has_edge_key(self, key: EdgeKey) -> bool:
        return self._mirror.has_edge_key(key)

    def has_any_edge(self, source: Hashable, target: Hashable) -> bool:
        return self._mirror.has_any_edge(source, target)

    def edge_count(self) -> int:
        return self._mirror.edge_count()

    def edges(self) -> Iterator[Edge]:
        return self._mirror.edges()

    def edge_labels(self) -> frozenset[str]:
        return self._mirror.edge_labels()

    def edges_with_exact_signature(self, signature: Signature) -> list[Edge]:
        return self._mirror.edges_with_exact_signature(signature)

    def signature_items(self) -> Iterator[tuple[Signature, list[Edge]]]:
        return self._mirror.signature_items()

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable):
        return self._mirror.successors(node_id)

    def predecessors(self, node_id: Hashable):
        return self._mirror.predecessors(node_id)

    def successors_by_label(self, node_id: Hashable, edge_label: str):
        return self._mirror.successors_by_label(node_id, edge_label)

    def predecessors_by_label(self, node_id: Hashable, edge_label: str):
        return self._mirror.predecessors_by_label(node_id, edge_label)

    def out_edge_labels(self, node_id: Hashable):
        return self._mirror.out_edge_labels(node_id)

    def in_edge_labels(self, node_id: Hashable):
        return self._mirror.in_edge_labels(node_id)

    def out_degree(self, node_id: Hashable) -> int:
        return self._mirror.out_degree(node_id)

    def in_degree(self, node_id: Hashable) -> int:
        return self._mirror.in_degree(node_id)

    def neighbour_ids(self, node_id: Hashable) -> frozenset[Hashable]:
        return self._mirror.neighbour_ids(node_id)

    def edges_between(self, wanted) -> Iterator[Edge]:
        # Delegate to the mirror: its per-process ranks are order-isomorphic
        # to the persisted ranks (nodes load in rank order), so the emission
        # order is identical while staying hash-seed independent.
        return self._mirror.edges_between(wanted)

    # ------------------------------------------------------------- lifecycle

    def clone(self) -> "PersistentStore":
        """Return an independent in-memory copy (registry snapshot fast path).

        Clones always land on a private ``:memory:`` database — snapshots
        are transient working copies; only the original remains bound to
        its file.  The SQLite side copies via the C-level backup API, the
        mirror via the indexed engine's dict-copy fast path.
        """
        other = PersistentStore.__new__(PersistentStore)
        other.path = None
        other._connection = sqlite3.connect(
            ":memory:", isolation_level=None, check_same_thread=False
        )
        self._connection.backup(other._connection)
        other._connection.execute("PRAGMA synchronous=OFF")
        other._connection.execute("PRAGMA journal_mode=MEMORY")
        other._mirror = self._mirror.clone()
        other._rank = dict(self._rank)
        other._next_rank = self._next_rank
        other._next_seq = self._next_seq
        other._csr_cache = self._csr_cache
        return other

    def validate(self) -> None:
        self._mirror.validate()
        node_count = self._connection.execute("SELECT COUNT(*) FROM nodes").fetchone()[0]
        if node_count != self._mirror.node_count():
            raise GraphError(
                f"persistent store drift: {node_count} nodes on disk, "
                f"{self._mirror.node_count()} in the mirror"
            )
        edge_count = self._connection.execute("SELECT COUNT(*) FROM edges").fetchone()[0]
        if edge_count != self._mirror.edge_count():
            raise GraphError(
                f"persistent store drift: {edge_count} edges on disk, "
                f"{self._mirror.edge_count()} in the mirror"
            )
        for node_id in self._mirror.node_ids():
            if node_id not in self._rank:
                raise GraphError(f"missing persisted rank for node {node_id!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PersistentStore(path={self.path!r}, nodes={self.node_count()}, "
            f"edges={self.edge_count()})"
        )


STORE_REGISTRY.setdefault(PersistentStore.backend, PersistentStore)
