"""Crash-safe service state: WAL journaling, checkpoints, and recovery.

:class:`PersistenceManager` is the glue between the durable primitives
(:mod:`repro.storage.wal`, :mod:`repro.storage.checkpoint`) and the live
service objects (:class:`~repro.service.registry.GraphRegistry`,
:class:`~repro.service.jobs.SessionManager`).  One instance owns one
``--data-dir`` and runs three protocols:

**Journaling (ack-implies-logged).**  After recovery the manager attaches
itself as the registry's and session manager's ``journal`` and as a
registry update listener.  Every state transition is then appended to the
WAL *before* the mutating call returns to the HTTP handler — an update and
the per-session :class:`ViolationDelta` records it produced land in one
``append_many`` inside the graph's lock, so a client that saw a 200 will
see the same state after ``kill -9`` + restart.

**Checkpointing.**  :meth:`checkpoint` captures each graph together with
its continuous sessions *under that graph's lock* (the pair is mutually
consistent by construction), writes one ``ckpt-<n>`` directory, atomically
swings ``MANIFEST.json`` at it, and only then truncates the WAL prefix and
prunes older checkpoints.  The cut LSN is read *before* capture, so any
record between cut and capture is re-delivered on replay and skipped by
the idempotence rules below.  ``checkpoint_every`` drives automatic
checkpoints from the update path; ``POST /admin/checkpoint`` forces one.

**Recovery.**  :meth:`recover` loads the manifest's checkpoint (catalogs,
graphs at their recorded versions with their retained snapshot windows,
sessions rebuilt from their durable documents) and replays the WAL suffix.
Replay is idempotent: a registration whose name already exists is skipped,
an ``update`` record at or below the graph's version is skipped, and a
replayed update routes through ``registry.apply_update`` so the (already
registered) session-manager listener recomputes each session's delta with
the same deterministic incremental kernel that produced it live.  Only
after replay does the manager attach its journal hooks — recovered state
is never re-logged.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro import obs
from repro.core.ngd import RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.errors import ServiceError
from repro.graph.io import (
    atomic_write_json,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_json_document,
    save_graph,
    update_from_list,
    update_to_list,
)
from repro.storage.checkpoint import DataDirectory, SegmentCache
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.jobs import ContinuousSession, SessionManager
    from repro.service.registry import GraphRegistry, RegisteredGraph, UpdateOutcome

__all__ = ["PersistenceManager"]

#: Default number of accepted updates between automatic checkpoints.
DEFAULT_CHECKPOINT_EVERY = 64


class PersistenceManager:
    """Owns one data directory's WAL, checkpoints, and recovery protocol."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        registry: "GraphRegistry",
        manager: "SessionManager",
        checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServiceError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.data = DataDirectory(data_dir)
        self.registry = registry
        self.manager = manager
        self.checkpoint_every = checkpoint_every
        self.segments = SegmentCache(self.data)
        #: Serialises WAL appends (listeners fire under per-graph locks, so
        #: two graphs' updates may journal concurrently) and excludes them
        #: from checkpoint truncation.
        self._wal_lock = threading.Lock()
        #: Serialises whole checkpoints (admin-triggered vs automatic).
        self._checkpoint_lock = threading.Lock()
        self._updates_since_checkpoint = 0
        self.recovered: dict = {"checkpoint": None, "replayed": 0}
        self.wal: Optional[WriteAheadLog] = None
        self.checkpoints = 0
        #: wall-clock time of the last completed checkpoint (None: none yet
        #: this process); ``GET /health`` reports its age
        self.last_checkpoint_at: Optional[float] = None

    # ------------------------------------------------------------------ boot

    def recover(self) -> dict:
        """Load checkpoint + replay WAL suffix; return a recovery summary.

        Must run before the service accepts connections and before any
        graph/catalog registration from the CLI; attaches the journal
        hooks on success, so everything that happens afterwards is logged.
        """
        # durable spool directories are useful during replay too (session
        # restores with execution="processes" warm their pools from them)
        recovery_started = time.monotonic()
        self.manager.spool_cache = self.segments
        manifest = self.data.read_manifest()
        cut_lsn = 0
        checkpoint_name: Optional[str] = None
        if manifest is not None:
            checkpoint_name = manifest.get("checkpoint")
            cut_lsn = int(manifest.get("cut_lsn") or 0)
            if checkpoint_name is not None:
                self._restore_checkpoint(checkpoint_name)
        self.wal = WriteAheadLog(self.data.wal_path, start_lsn=cut_lsn + 1)
        replayed = 0
        for record in self.wal.records():
            if record["lsn"] <= cut_lsn:
                # stale prefix from a crash between the manifest swing and
                # the WAL truncation — the checkpoint already covers it
                continue
            self._replay(record)
            replayed += 1
        # attach journal hooks only now: replayed state must not re-log
        self.registry.journal = self
        self.manager.journal = self
        self.registry.add_listener(self._journal_update)
        self.recovered = {
            "checkpoint": checkpoint_name,
            "replayed": replayed,
            "graphs": len(self.registry),
            "sessions": self.manager.session_count(),
        }
        elapsed = time.monotonic() - recovery_started
        self.recovered["seconds"] = round(elapsed, 6)
        if obs.enabled():
            obs.gauge_set("repro_recovery_seconds", None, elapsed)
            obs.counter_inc("repro_recovery_replayed_total", None, replayed)
        return self.recovered

    def close(self) -> None:
        """Release the WAL handle, segment directories, and data-dir lock."""
        if self.wal is not None:
            self.wal.close()
        self.segments.close()
        self.data.release()

    # -------------------------------------------------------------- journal

    def record_graph_registered(self, registered: "RegisteredGraph") -> None:
        graph = registered.graph
        self._append(
            {
                "type": "register_graph",
                "graph": registered.name,
                "store": graph.store_backend,
                "document": graph_to_dict(graph),
            }
        )

    def record_catalog_registered(self, name: str, rules: RuleSet) -> None:
        self._append({"type": "register_catalog", "catalog": name, "document": rules.to_dict()})

    def record_session_opened(self, session: "ContinuousSession") -> None:
        self._append({"type": "session_open", **session.durable_document()})

    def record_session_closed(self, session_id: str) -> None:
        self._append({"type": "session_close", "session": session_id})

    def _append(self, payload: dict) -> None:
        with self._wal_lock:
            self.wal.append(payload)

    def _journal_update(self, outcome: "UpdateOutcome") -> None:
        """Registry listener: log an update + the deltas it produced.

        Registered *after* the session manager's listener, so every
        session of the graph has already advanced to ``outcome.version``
        when this runs; the whole group lands under one fsync.  Runs
        inside the graph's lock — the ack the HTTP handler sends cannot
        overtake the log.
        """
        records = [
            {
                "type": "update",
                "graph": outcome.name,
                "version": outcome.version,
                "delta": update_to_list(outcome.delta),
            }
        ]
        for session in self.manager.sessions_for(outcome.name):
            delta = session.deltas.get(outcome.version)
            if session.current_version == outcome.version and delta is not None:
                records.append(
                    {
                        "type": "session_delta",
                        "session": session.session_id,
                        "version": outcome.version,
                        "delta": delta.to_dict(),
                    }
                )
        with self._wal_lock:
            self.wal.append_many(records)
        self._updates_since_checkpoint += 1

    # ----------------------------------------------------------- checkpoint

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if the update counter crossed ``checkpoint_every``.

        Called from the update handler *after* the graph lock is released;
        returns True when a checkpoint ran.
        """
        if self.checkpoint_every is None:
            return False
        if self._updates_since_checkpoint < self.checkpoint_every:
            return False
        self.checkpoint()
        return True

    def checkpoint(self) -> dict:
        """Write a full checkpoint, swing the manifest, truncate the WAL."""
        with self._checkpoint_lock, obs.span("storage.checkpoint") as ckpt_span:
            checkpoint_started = time.monotonic()
            with self._wal_lock:
                cut_lsn = self.wal.last_lsn
            name = self.data.next_checkpoint_name()
            directory = self.data.checkpoint_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            graphs: list[dict] = []
            for graph_name in self.registry.names():
                registered = self.registry.get(graph_name)
                with registered.lock:
                    # capture the graph AND its sessions under one lock
                    # acquisition: the pair is a consistent cut (sessions
                    # always sit exactly at the graph's version)
                    versions = registered.retained_versions() or [registered.version]
                    images: dict[str, str] = {}
                    for version in versions:
                        snapshot = (
                            registered.graph
                            if version == registered.version
                            else registered.snapshot_at(version)
                        )
                        filename = f"{graph_name}-v{version}.json"
                        save_graph(snapshot, directory / filename, atomic=True)
                        images[str(version)] = filename
                    sessions = [
                        session.durable_document()
                        for session in self.manager.sessions_for(graph_name)
                    ]
                    graphs.append(
                        {
                            "name": graph_name,
                            "version": registered.version,
                            "store": registered.graph.store_backend,
                            "images": images,
                            "sessions": sessions,
                        }
                    )
            with self.manager._catalog_lock:
                catalogs = {
                    name_: rules.to_dict() for name_, rules in self.manager.catalogs.items()
                }
            atomic_write_json(
                {"graphs": graphs, "catalogs": catalogs}, directory / "registry.json"
            )
            # the manifest rename is the commit point: before it, recovery
            # uses the previous checkpoint and the still-intact WAL; after
            # it, the WAL prefix is redundant and may be truncated
            self.data.write_manifest(name, cut_lsn)
            with self._wal_lock:
                self.wal.truncate_through(cut_lsn)
            self.data.prune_checkpoints(keep=name)
            self._updates_since_checkpoint = 0
            self.checkpoints += 1
            self.last_checkpoint_at = time.time()
            if obs.enabled():
                obs.counter_inc("repro_checkpoints_total")
                obs.histogram_observe(
                    "repro_checkpoint_seconds", None, time.monotonic() - checkpoint_started
                )
                ckpt_span.set(checkpoint=name, cut_lsn=cut_lsn, graphs=len(graphs))
            return {"checkpoint": name, "cut_lsn": cut_lsn, "graphs": len(graphs)}

    # ------------------------------------------------------------- recovery

    def _restore_checkpoint(self, name: str) -> None:
        directory = self.data.checkpoint_dir(name)
        document = load_json_document(directory / "registry.json")
        for catalog_name, rules_doc in sorted((document.get("catalogs") or {}).items()):
            self.manager.register_catalog(catalog_name, RuleSet.from_dict(rules_doc))
        for graph_doc in document.get("graphs") or []:
            store = graph_doc.get("store")
            snapshots = {
                int(version): load_graph(directory / filename, store=store)
                for version, filename in graph_doc["images"].items()
            }
            current = snapshots[graph_doc["version"]]
            self.registry.restore(
                graph_doc["name"], current, graph_doc["version"], snapshots=snapshots
            )
            for session_doc in graph_doc.get("sessions") or []:
                self._restore_session(session_doc)

    def _restore_session(self, document: dict) -> None:
        """Rebuild one continuous session from its durable document.

        The detector and compiled plans are reconstructed exactly the way
        ``SessionManager.create_session`` builds them — from the original
        request document against the graph's current snapshot — while the
        violation set and delta log come verbatim from the document.
        """
        from repro.detect.session import DetectionOptions, Detector
        from repro.service.jobs import ContinuousSession
        from repro.service.protocol import parse_detect_request

        request = parse_detect_request(document.get("request") or {})
        rules = self.manager.resolve_rules(request)
        registered = self.registry.get(document["graph"])
        processes = request.execution == "processes"
        pool = self.manager.executor_pool(request.processors) if processes else None
        with registered.lock:
            graph, _version = registered.snapshot()
            incremental = Detector(
                rules,
                engine="auto" if processes else "incremental",
                processors=request.processors if processes else None,
                options=DetectionOptions(
                    use_literal_pruning=request.use_literal_pruning,
                    execution=request.execution,
                ),
                executor_pool=pool,
            )
            plans = incremental.compile_plans(graph)
            session = ContinuousSession(
                session_id=document["session"],
                graph_name=document["graph"],
                rules=rules,
                detector=incremental,
                base_version=document["base_version"],
                violations=ViolationSet.from_dict(document["violations"]),
                plans=plans,
                plan_size=graph.total_size(),
                request_document=dict(document.get("request") or {}),
            )
            session.restore_progress(
                current_version=document["current_version"],
                deltas={
                    int(version): ViolationDelta.from_dict(delta)
                    for version, delta in (document.get("deltas") or {}).items()
                },
                squashed=(
                    ViolationDelta.from_dict(document["squashed"])
                    if document.get("squashed")
                    else None
                ),
                compacted_through=document.get("compacted_through"),
                plan_compilations=document.get("plan_compilations") or 1,
                plan_size=document.get("plan_size") or graph.total_size(),
            )
            self.manager.adopt_session(session)

    def _replay(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "register_graph":
            if record["graph"] in self.registry:
                return
            graph = graph_from_dict(record["document"], store=record.get("store"))
            self.registry.restore(record["graph"], graph, version=1)
        elif kind == "register_catalog":
            if record["catalog"] in self.manager.catalogs:
                return
            self.manager.register_catalog(record["catalog"], RuleSet.from_dict(record["document"]))
        elif kind == "update":
            registered = self.registry.get(record["graph"])
            if registered.version >= record["version"]:
                return  # the checkpoint already includes this update
            # routes through the registered session-manager listener, so
            # every session recomputes its delta with the same incremental
            # kernel that produced it live — deterministically identical
            self.registry.apply_update(record["graph"], update_from_list(record["delta"]))
        elif kind == "session_open":
            try:
                self._restore_session(record)
            except ServiceError as exc:
                if "already registered" not in str(exc):
                    raise
                # the checkpoint captured this session after its open
                # record was cut — nothing to do
        elif kind == "session_delta":
            # belt-and-braces: normally redundant (the update replay above
            # recomputed it); applies only if a session somehow sits one
            # version behind a graph the checkpoint already advanced
            try:
                session = self.manager.session(record["session"])
            except ServiceError:
                return
            if session.current_version == record["version"] - 1:
                session.advance(record["version"], ViolationDelta.from_dict(record["delta"]))
        elif kind == "session_close":
            try:
                self.manager.close_session(record["session"])
            except ServiceError:
                pass  # never checkpointed — the open record was truncated too
        # unknown record types are ignored: a newer writer's log must not
        # brick an older reader that can still serve the state it knows

    # ------------------------------------------------------------- reporting

    def info(self) -> dict:
        """Persistence block for ``GET /health``."""
        return {
            "data_dir": str(self.data.root),
            "wal_lsn": self.wal.last_lsn if self.wal is not None else 0,
            "checkpoint_every": self.checkpoint_every,
            "checkpoints": self.checkpoints,
            "updates_since_checkpoint": self._updates_since_checkpoint,
            "last_checkpoint_age_seconds": (
                round(time.time() - self.last_checkpoint_at, 3)
                if self.last_checkpoint_at is not None
                else None
            ),
            "recovered": self.recovered,
        }
