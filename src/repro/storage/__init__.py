"""Durable storage subsystem: persistent store, WAL, checkpoints, recovery.

Import layering: this package is imported by ``repro.graph`` (to register
the ``persistent`` engine), so the modules re-exported here must not
import the service layer.  The service-facing pieces —
:class:`~repro.storage.manager.PersistenceManager` and friends — live in
:mod:`repro.storage.manager`, which is resolved lazily to keep the import
graph acyclic.
"""

from repro.storage.persistent import PersistentStore
from repro.storage.wal import WalCorruption, WriteAheadLog

__all__ = [
    "PersistentStore",
    "WriteAheadLog",
    "WalCorruption",
    "PersistenceManager",
]


def __getattr__(name: str):
    if name == "PersistenceManager":
        from repro.storage.manager import PersistenceManager

        return PersistenceManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
