"""The 3-colourability reduction behind Theorem 5.

Theorem 5 shows that deciding whether ``ΔVio(Σ, G, ΔG) = ∅`` is
coNP-complete even for constant-size ``G`` and ``ΔG``, by reduction from the
complement of 3-colourability.  The reduction encodes an arbitrary undirected
graph ``H`` into

* a constant-size data graph ``G'`` containing a directed 3-clique of
  "colour" nodes,
* a single NGD whose pattern mirrors the *structure of H* (each vertex of H
  becomes a pattern variable, each undirected edge a pair of directed pattern
  edges) and whose conclusion is unsatisfiable (``x1.A = 3`` while every
  colour node carries ``A ≠ 3``), and
* a batch update of three edge insertions completing the clique.

A match of the pattern in the updated clique is exactly a proper 3-colouring
of H (adjacent pattern variables cannot map to the same colour node because
the clique has no self-loops), and every such match is a violation.  Hence
``ΔVio ≠ ∅`` iff H is 3-colourable.

This module implements the reduction and a brute-force 3-colourability
decision procedure so tests can confirm that the incremental detectors agree
with the ground truth on both positive and negative instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.ngd import NGD, RuleSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.graph.updates import BatchUpdate

__all__ = ["ColoringInstance", "is_three_colorable", "coloring_to_incremental_instance"]

_EDGE_LABEL = "adj"
_COLOR_LABEL = "color"


@dataclass(frozen=True)
class ColoringInstance:
    """An undirected graph given as a vertex count and an edge list."""

    num_vertices: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices) or u == v:
                raise ValueError(f"edge ({u}, {v}) is not valid for {self.num_vertices} vertices")


def is_three_colorable(instance: ColoringInstance) -> bool:
    """Brute-force 3-colourability (exponential; used on small instances)."""
    for colouring in itertools.product(range(3), repeat=instance.num_vertices):
        if all(colouring[u] != colouring[v] for u, v in instance.edges):
            return True
    return False


def coloring_to_incremental_instance(
    instance: ColoringInstance,
) -> tuple[Graph, RuleSet, BatchUpdate]:
    """Return ``(G, Σ, ΔG)`` such that ΔVio(Σ, G, ΔG) ≠ ∅ iff the instance is 3-colourable.

    ``G`` contains the three colour nodes with no edges; ``ΔG`` inserts the
    six directed edges of the 3-clique (both directions of each undirected
    clique edge); Σ holds the single NGD whose pattern encodes the input
    graph and whose conclusion ``x0.A = 3`` is violated by every match
    (colour nodes carry ``A ∈ {0, 1, 2}``).
    """
    graph = Graph("coloring-G")
    for colour in range(3):
        graph.add_node(f"c{colour}", _COLOR_LABEL, {"A": colour})

    delta = BatchUpdate()
    for a, b in itertools.permutations(range(3), 2):
        delta.insert(f"c{a}", f"c{b}", _EDGE_LABEL)

    nodes = [(f"x{i}", _COLOR_LABEL) for i in range(instance.num_vertices)]
    pattern_edges = []
    for u, v in instance.edges:
        pattern_edges.append((f"x{u}", f"x{v}", _EDGE_LABEL))
        pattern_edges.append((f"x{v}", f"x{u}", _EDGE_LABEL))
    pattern = Pattern.from_edges("Q_coloring", nodes=nodes, edges=pattern_edges)
    rule = NGD.from_text(pattern, "", "x0.A = 3", name="coloring_rule")
    return graph, RuleSet([rule], name="coloring"), delta
