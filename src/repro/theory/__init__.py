"""Executable encodings of the hardness reductions of Sections 4 and 5."""

from repro.theory.coloring import ColoringInstance, coloring_to_incremental_instance, is_three_colorable
from repro.theory.gssp import GSSPInstance, gssp_holds, gssp_to_ngds, gssp_witness_graph
from repro.theory.hilbert import DiophantineEquation, diophantine_to_ngd, has_small_solution

__all__ = [
    "ColoringInstance",
    "DiophantineEquation",
    "GSSPInstance",
    "coloring_to_incremental_instance",
    "diophantine_to_ngd",
    "gssp_holds",
    "gssp_to_ngds",
    "gssp_witness_graph",
    "has_small_solution",
    "is_three_colorable",
]
