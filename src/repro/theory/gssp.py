"""The generalized subset-sum encoding behind the Σp2 lower bound.

Theorem 1's hardness proof reduces the *generalized subset sum problem*
(GSSP) to NGD satisfiability: given integer vectors ``u1``, ``u2`` and an
integer ``w``, decide whether ``∃ v1 ∀ v2 : u1·v1 + u2·v2 ≠ w`` with ``v1``,
``v2`` Boolean vectors.

This module provides both sides of that reduction in executable form:

* :func:`gssp_holds` — a brute-force decision procedure for GSSP (exponential,
  used on small instances only);
* :func:`gssp_to_ngds` — the encoding of a GSSP instance as a set of NGDs
  whose satisfiability matches the GSSP answer, following the structure of
  the proof (one pattern whose A-attributed nodes carry the existential
  choices, wildcard nodes carrying the universal choices, and an arithmetic
  literal checking the linear form against ``w``).

They are used by the test-suite both to sanity-check the satisfiability
checker on adversarial inputs and to document the reduction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.ngd import NGD, RuleSet
from repro.expr.expressions import Expression, const, var
from repro.expr.literals import Comparison, Literal, LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern

__all__ = ["GSSPInstance", "gssp_holds", "gssp_to_ngds", "gssp_witness_graph"]


@dataclass(frozen=True)
class GSSPInstance:
    """A generalized subset-sum instance (u1, u2, w)."""

    u1: tuple[int, ...]
    u2: tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        if not self.u1 and not self.u2:
            raise ValueError("a GSSP instance needs at least one coefficient")


def gssp_holds(instance: GSSPInstance) -> bool:
    """Brute-force ``∃ v1 ∀ v2 : u1·v1 + u2·v2 ≠ w`` (exponential; small instances only)."""
    for v1 in itertools.product((0, 1), repeat=len(instance.u1)):
        partial = sum(coefficient * choice for coefficient, choice in zip(instance.u1, v1))
        if all(
            partial + sum(c * choice for c, choice in zip(instance.u2, v2)) != instance.target
            for v2 in itertools.product((0, 1), repeat=len(instance.u2))
        ):
            return True
    return False


def gssp_to_ngds(instance: GSSPInstance) -> RuleSet:
    """Encode a GSSP instance as NGDs, following the structure of Theorem 1's reduction.

    The encoding, evaluated over the witness graphs built by
    :func:`gssp_witness_graph` (which carry *both* the 0- and the 1-valued
    node for every universal position):

    * ``boolean_choices`` forces the ``A`` attribute of every existential node
      ``e_i`` to be Boolean — the ∃ choice;
    * ``universal_values`` keeps the ``B`` attributes of the universal nodes
      Boolean;
    * ``gssp_check`` uses one pattern variable per universal position that can
      match either the 0-node or the 1-node of that position, so its literal
      ``u1·A + u2·B ≠ w`` must hold for **every** combination of universal
      values — the ∀ quantifier of GSSP.

    A witness graph for an existential choice ``v1`` then satisfies the rule
    set iff ``v1`` wins the GSSP game, which is what the tests exercise.
    """
    m, n = len(instance.u1), len(instance.u2)
    existential_nodes = [(f"e{i}", "choice") for i in range(m)]
    universal_zero = [(f"z{j}", f"u{j}") for j in range(n)]
    universal_one = [(f"o{j}", f"u{j}") for j in range(n)]

    base_pattern = Pattern.from_edges("Q_gssp", nodes=existential_nodes + universal_zero + universal_one)

    boolean_literals = []
    for i in range(m):
        boolean_literals.append(Literal(var(f"e{i}", "A") * (var(f"e{i}", "A") - const(1)), Comparison.EQ, const(0)))
    # A·(A-1) = 0 is quadratic; the linear encoding uses 0 ≤ A ≤ 1 instead, which the
    # bounded integer domain turns into the same Boolean choice.
    linear_boolean = LiteralSet(
        [Literal(var(f"e{i}", "A"), Comparison.GE, const(0)) for i in range(m)]
        + [Literal(var(f"e{i}", "A"), Comparison.LE, const(1)) for i in range(m)]
    )
    del boolean_literals

    universal_fixing = LiteralSet(
        [Literal(var(f"z{j}", "B"), Comparison.GE, const(0)) for j in range(n)]
        + [Literal(var(f"z{j}", "B"), Comparison.LE, const(1)) for j in range(n)]
        + [Literal(var(f"o{j}", "B"), Comparison.GE, const(0)) for j in range(n)]
        + [Literal(var(f"o{j}", "B"), Comparison.LE, const(1)) for j in range(n)]
    )

    # wildcard pattern matching one node per universal position — either the 0-node or the 1-node
    wildcard_nodes = [(f"w{j}", f"u{j}") for j in range(n)]
    check_pattern = Pattern.from_edges(
        "Q_gssp_check", nodes=existential_nodes + wildcard_nodes
    )
    linear_form: Expression = const(0)
    for i, coefficient in enumerate(instance.u1):
        linear_form = linear_form + const(coefficient) * var(f"e{i}", "A")
    for j, coefficient in enumerate(instance.u2):
        linear_form = linear_form + const(coefficient) * var(f"w{j}", "B")
    check_literal = Literal(linear_form, Comparison.NE, const(instance.target))

    rules = [
        NGD(base_pattern, conclusion=linear_boolean, name="boolean_choices"),
        NGD(base_pattern, conclusion=universal_fixing, name="universal_values"),
        NGD(check_pattern, conclusion=LiteralSet.of(check_literal), name="gssp_check"),
    ]
    return RuleSet(rules, name=f"gssp({instance.u1},{instance.u2},{instance.target})")


def gssp_witness_graph(instance: GSSPInstance, v1: tuple[int, ...]) -> Graph:
    """Materialise the model corresponding to an existential choice ``v1``.

    Useful in tests: when :func:`gssp_holds` says a witness ``v1`` exists,
    the graph built here satisfies the encoded NGDs; when GSSP fails, every
    such graph violates the ``gssp_check`` rule for some wildcard match.
    """
    graph = Graph("gssp-witness")
    for i, choice in enumerate(v1):
        graph.add_node(f"e{i}", "choice", {"A": int(choice)})
    for j in range(len(instance.u2)):
        graph.add_node(f"z{j}", f"u{j}", {"B": 0})
        graph.add_node(f"o{j}", f"u{j}", {"B": 1})
    return graph
