"""Diophantine encodings and the undecidability boundary (Theorem 3).

Theorem 3 shows that extending NGDs with non-linear arithmetic (degree ≥ 2)
makes satisfiability and implication undecidable, by reduction from Hilbert's
10th problem: deciding whether a polynomial Diophantine equation has an
integer solution.

This module provides the executable side of that boundary:

* :class:`DiophantineEquation` — a sparse polynomial equation ``Σ a_i · Π x_j^{e_ij} = 0``;
* :func:`diophantine_to_ngd` — the encoding of an equation as a *non-linear*
  NGD (one pattern node per variable, the polynomial written with the
  extended ``e × e`` grammar).  Constructing it succeeds only with
  ``allow_nonlinear=True``, and feeding it to the satisfiability checker
  raises :class:`~repro.errors.SatisfiabilityError` — which is precisely the
  behaviour the undecidability result mandates for an honest implementation;
* :func:`has_small_solution` — a bounded brute-force search used by tests to
  show that *particular* small equations do or do not have solutions, while
  the general problem remains out of reach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.ngd import NGD
from repro.expr.expressions import Expression, const, var
from repro.expr.literals import Comparison, Literal, LiteralSet
from repro.graph.pattern import Pattern

__all__ = ["DiophantineEquation", "diophantine_to_ngd", "has_small_solution"]


@dataclass(frozen=True)
class DiophantineEquation:
    """``Σ_i coefficient_i · Π_j x_j^{exponents_i[j]} = 0`` over integer variables x_0..x_{m-1}."""

    num_variables: int
    terms: tuple[tuple[int, tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        for coefficient, exponents in self.terms:
            if len(exponents) != self.num_variables:
                raise ValueError("every term needs one exponent per variable")
            if any(exponent < 0 for exponent in exponents):
                raise ValueError("exponents must be non-negative")

    def evaluate(self, values: tuple[int, ...]) -> int:
        """Evaluate the polynomial at integer point ``values``."""
        total = 0
        for coefficient, exponents in self.terms:
            product = coefficient
            for value, exponent in zip(values, exponents):
                product *= value**exponent
            total += product
        return total

    def degree(self) -> int:
        """Return the total degree of the polynomial."""
        return max((sum(exponents) for _, exponents in self.terms), default=0)


def has_small_solution(equation: DiophantineEquation, bound: int = 10) -> bool:
    """Brute-force search for an integer solution with every |x_j| ≤ ``bound``."""
    domain = range(-bound, bound + 1)
    return any(
        equation.evaluate(point) == 0
        for point in itertools.product(domain, repeat=equation.num_variables)
    )


def diophantine_to_ngd(equation: DiophantineEquation) -> NGD:
    """Encode a Diophantine equation as a non-linear NGD.

    The pattern has one node per variable (labelled ``var``); the conclusion
    asserts the polynomial equals zero, written with the extended (non-linear)
    expression grammar.  The resulting rule is accepted for *validation* — a
    concrete graph either satisfies the equation or not — but is rejected by
    the satisfiability/implication checkers, reflecting Theorem 3.
    """
    nodes = [(f"x{j}", "var") for j in range(equation.num_variables)]
    pattern = Pattern.from_edges("Q_diophantine", nodes=nodes)

    polynomial: Expression = const(0)
    for coefficient, exponents in equation.terms:
        term: Expression = const(coefficient)
        for j, exponent in enumerate(exponents):
            for _ in range(exponent):
                term = term * var(f"x{j}", "val")
        polynomial = polynomial + term

    literal = Literal(polynomial, Comparison.EQ, const(0))
    return NGD(
        pattern,
        conclusion=LiteralSet.of(literal),
        name="diophantine",
        allow_nonlinear=True,
    )
