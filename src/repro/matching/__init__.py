"""Subgraph homomorphism matching: batch (Matchn) and update-driven (IncMatch)."""

from repro.matching.candidates import MatchStatistics, candidate_nodes, node_satisfies_unary_premise
from repro.matching.incmatch import IncrementalMatcher, UpdatePivot, find_update_pivots
from repro.matching.matchn import (
    HomomorphismMatcher,
    assignment_for_match,
    match_violates_dependency,
)

__all__ = [
    "HomomorphismMatcher",
    "IncrementalMatcher",
    "MatchStatistics",
    "UpdatePivot",
    "assignment_for_match",
    "candidate_nodes",
    "find_update_pivots",
    "match_violates_dependency",
    "node_satisfies_unary_premise",
]
