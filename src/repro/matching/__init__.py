"""Subgraph homomorphism matching: compiled plans, batch (Matchn) and update-driven (IncMatch)."""

from repro.matching.adaptive import (
    AdaptiveController,
    CardinalityHistory,
    adaptive_enabled,
    resolve_adaptive,
)
from repro.matching.candidates import MatchStatistics, candidate_nodes, node_satisfies_unary_premise
from repro.matching.incmatch import IncrementalMatcher, UpdatePivot, find_update_pivots
from repro.matching.matchn import (
    HomomorphismMatcher,
    assignment_for_match,
    match_violates_dependency,
)
from repro.matching.plan import (
    GraphStatistics,
    MatchPlan,
    PlanStep,
    compile_plan,
    compile_plans,
    format_plan,
    planner_enabled,
)

__all__ = [
    "AdaptiveController",
    "CardinalityHistory",
    "GraphStatistics",
    "HomomorphismMatcher",
    "IncrementalMatcher",
    "MatchPlan",
    "MatchStatistics",
    "PlanStep",
    "UpdatePivot",
    "adaptive_enabled",
    "assignment_for_match",
    "candidate_nodes",
    "compile_plan",
    "compile_plans",
    "find_update_pivots",
    "format_plan",
    "match_violates_dependency",
    "node_satisfies_unary_premise",
    "planner_enabled",
    "resolve_adaptive",
]
