"""The generic backtracking homomorphism matcher ``Matchn`` / ``SubMatchn``.

Section 6.2 of the paper describes the framework most subgraph matching
algorithms follow: compute candidate sets ``C(u)``, then recursively expand a
partial solution ``M`` one pattern node at a time, checking edge consistency
against the already-matched nodes, and backtracking when a branch dies.

:class:`HomomorphismMatcher` implements that framework for homomorphism
semantics (two pattern variables may map to the same data node), with two
extensions the NGD algorithms need:

* *literal-driven pruning* — premise literals are evaluated as soon as all
  their variables are bound, and conclusion literals when the conclusion is a
  single literal (Section 6.2, step (3));
* *seeded search* — a partial solution can be supplied up front, which is how
  update pivots drive incremental matching (``IncMatch``).

The matcher is a *plan executor*: hand it a compiled
:class:`~repro.matching.plan.MatchPlan` and it follows the plan's cost-based
variable order, per-step candidate strategies, and pre-resolved literal
schedule.  Without a plan it falls back to the static pipeline
(``Pattern.matching_order`` plus per-expansion literal scans), which is also
what ``REPRO_MATCH_PLANNER=off`` selects end to end.

The matcher yields matches lazily as ``{variable: node_id}`` dictionaries.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from typing import TYPE_CHECKING, Optional

from repro.expr.expressions import Assignment
from repro.expr.literals import LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.matching.candidates import MatchStatistics, candidate_nodes, node_satisfies_unary_premise

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.matching.adaptive import AdaptiveController
    from repro.matching.plan import MatchPlan, PlanStep

__all__ = ["HomomorphismMatcher", "assignment_for_match", "match_violates_dependency"]


def assignment_for_match(
    graph: Graph,
    match: Mapping[str, Hashable],
    literals_variables: frozenset[tuple[str, str]],
) -> Assignment:
    """Build the attribute assignment a literal set needs from a match.

    Only the ``(variable, attribute)`` pairs actually referenced by literals
    are looked up; attributes the node does not carry are simply absent from
    the assignment (the literal then fails, per the paper's semantics).
    """
    assignment: dict[tuple[str, str], object] = {}
    for variable, attribute in literals_variables:
        node_id = match.get(variable)
        if node_id is None:
            continue
        node = graph.node(node_id)
        if node.has_attribute(attribute):
            assignment[(variable, attribute)] = node.attribute(attribute)
    return assignment


def match_violates_dependency(
    graph: Graph,
    match: Mapping[str, Hashable],
    premise: LiteralSet,
    conclusion: LiteralSet,
    stats: Optional[MatchStatistics] = None,
) -> bool:
    """Return True when the match satisfies the premise but not the conclusion."""
    if stats is not None:
        stats.literal_evaluations += len(premise) + len(conclusion)
    needed = premise.variables() | conclusion.variables()
    assignment = assignment_for_match(graph, match, needed)
    if not premise.satisfied_by(assignment):
        return False
    return not conclusion.satisfied_by(assignment)


class HomomorphismMatcher:
    """Backtracking homomorphism search with literal-driven pruning."""

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        premise: Optional[LiteralSet] = None,
        conclusion: Optional[LiteralSet] = None,
        use_literal_pruning: bool = True,
        stats: Optional[MatchStatistics] = None,
        plan: Optional["MatchPlan"] = None,
        adaptive: Optional["AdaptiveController"] = None,
        compiled: Optional[bool] = None,
    ) -> None:
        self.graph = graph
        self.pattern = pattern
        self.premise = premise if premise is not None else LiteralSet()
        self.conclusion = conclusion if conclusion is not None else LiteralSet()
        self.use_literal_pruning = use_literal_pruning
        self.stats = stats if stats is not None else MatchStatistics()
        self.plan = plan
        self.adaptive = adaptive if plan is not None else None
        # compiled evaluation executes the plan's closure-compiled literal
        # schedule; it requires a plan whose rule carries exactly this
        # matcher's premise and conclusion (always true for the kernels,
        # checked here so ad-hoc matcher constructions stay correct)
        from repro.matching.compiled import resolve_compiled

        self.compiled = (
            plan is not None
            and resolve_compiled(compiled)
            and plan.rule.premise == self.premise
            and plan.rule.conclusion == self.conclusion
        )

    # --------------------------------------------------------------- matching

    def matches(self, seed: Optional[Mapping[str, Hashable]] = None) -> Iterator[dict[str, Hashable]]:
        """Yield every match of the pattern, optionally extending a seed partial solution.

        The seed must be label-consistent; edge consistency between seed
        variables is verified before the search starts, so an inconsistent
        seed simply yields nothing.
        """
        partial: dict[str, Hashable] = dict(seed or {})
        for variable, node_id in partial.items():
            if not self.graph.has_node(node_id):
                return
            if not self.pattern.node(variable).matches_label(self.graph.node(node_id).label):
                return
        if not self._seed_edges_consistent(partial):
            return
        if self.plan is not None:
            order = self.plan.order_for_seed(tuple(partial.keys()))
            schedule = self.plan.schedule_for(order)
            if self.compiled:
                compiled_schedule = self.plan.compiled_for(order)
                # slot d is position d of the order; the seed variables are
                # the order's prefix (order_for_seed guarantees it), so the
                # seed fills the slot prefix directly
                slots: list = [None] * len(order)
                for index in range(len(partial)):
                    slots[index] = self.graph.node(partial[order[index]]).attributes
                yield from self._expand_compiled(
                    partial, order, schedule, len(partial), compiled_schedule, slots
                )
                return
            yield from self._expand_plan(partial, order, schedule, len(partial))
            return
        order = self.pattern.matching_order(seed=list(partial.keys()))
        remaining = [variable for variable in order if variable not in partial]
        yield from self._expand(partial, remaining)

    def violations(self, seed: Optional[Mapping[str, Hashable]] = None) -> Iterator[dict[str, Hashable]]:
        """Yield the matches that violate ``premise → conclusion``."""
        if self.compiled:
            compiled_schedule = self.plan.compiled_for(self.plan.order)
            for match in self.matches(seed=seed):
                if compiled_schedule.violates_mapping(self.graph, match, self.stats):
                    yield match
            return
        for match in self.matches(seed=seed):
            if match_violates_dependency(self.graph, match, self.premise, self.conclusion, self.stats):
                yield match

    # ------------------------------------------------------------- internals

    def _seed_edges_consistent(self, partial: Mapping[str, Hashable]) -> bool:
        for edge in self.pattern.edges():
            if edge.source in partial and edge.target in partial:
                self.stats.edge_checks += 1
                if not self.graph.has_edge(partial[edge.source], partial[edge.target], edge.label):
                    return False
        return True

    def _expand_plan(
        self,
        partial: dict[str, Hashable],
        order: tuple[str, ...],
        schedule: tuple["PlanStep", ...],
        depth: int,
    ) -> Iterator[dict[str, Hashable]]:
        """Plan-mode expansion: candidates, residual checks and literals per the schedule.

        The step's anchored intersection already enforces every pattern edge
        between the new variable and the bound prefix, so the only residual
        structural checks are self-loop edges; premise literals fire exactly
        once, at the depth the plan scheduled them.

        With an adaptive controller attached, each recursion level first asks
        it whether the observed cardinalities have drifted enough to re-order
        the unbound suffix; a revised order resolves a fresh schedule (same
        bound prefix, so literals already fired stay fired exactly once) and
        the subtree continues under it.
        """
        from repro.matching.plan import step_candidates

        if depth >= len(schedule):
            self.stats.matches_emitted += 1
            yield dict(partial)
            return
        adaptive = self.adaptive
        if adaptive is not None:
            revised = adaptive.order_for(order, depth)
            if revised is not order and revised != order:
                order = revised
                schedule = self.plan.schedule_for(order)
        step = schedule[depth]
        graph = self.graph
        candidates, _ = step_candidates(
            graph, self.plan, step, partial, self.stats, self.use_literal_pruning
        )
        if adaptive is not None:
            adaptive.observe(step, len(candidates))
        for candidate in candidates:
            self.stats.expansions += 1
            consistent = True
            for label in step.self_loops:
                self.stats.edge_checks += 1
                if not graph.has_edge(candidate, candidate, label):
                    consistent = False
                    break
            if not consistent:
                continue
            partial[step.variable] = candidate
            if self._pruned_by_schedule(step, partial):
                del partial[step.variable]
                continue
            yield from self._expand_plan(partial, order, schedule, depth + 1)
            del partial[step.variable]

    def _expand_compiled(
        self,
        partial: dict[str, Hashable],
        order: tuple[str, ...],
        schedule: tuple["PlanStep", ...],
        depth: int,
        compiled_schedule,
        slots: list,
    ) -> Iterator[dict[str, Hashable]]:
        """Plan-mode expansion running the closure-compiled literal schedule.

        Mirrors :meth:`_expand_plan` step for step — candidate strategy,
        adaptive revision, self-loop checks, counter billing — but the
        scheduled literals run as single closure calls over the slot list
        instead of assignment-dict rebuilds and AST walks.  An adaptive
        suffix replan recompiles only the revised order (memoised on the
        plan); the bound-slot prefix stays valid because slot ``d`` is
        always position ``d``.
        """
        from repro.matching.plan import step_candidates

        if depth >= len(schedule):
            self.stats.matches_emitted += 1
            yield dict(partial)
            return
        adaptive = self.adaptive
        if adaptive is not None:
            revised = adaptive.order_for(order, depth)
            if revised is not order and revised != order:
                order = revised
                schedule = self.plan.schedule_for(order)
                compiled_schedule = self.plan.compiled_for(order)
        step = schedule[depth]
        entry = compiled_schedule.steps[depth]
        graph = self.graph
        stats = self.stats
        candidates, _ = step_candidates(
            graph, self.plan, step, partial, stats, self.use_literal_pruning, entry
        )
        if adaptive is not None:
            adaptive.observe(step, len(candidates))
        prune = self.use_literal_pruning
        for candidate in candidates:
            stats.expansions += 1
            consistent = True
            for label in step.self_loops:
                stats.edge_checks += 1
                if not graph.has_edge(candidate, candidate, label):
                    consistent = False
                    break
            if not consistent:
                continue
            partial[step.variable] = candidate
            slots[depth] = graph.node(candidate).attributes
            if prune and entry.pruned(slots, stats):
                del partial[step.variable]
                continue
            yield from self._expand_compiled(
                partial, order, schedule, depth + 1, compiled_schedule, slots
            )
            del partial[step.variable]

    def _pruned_by_schedule(self, step: "PlanStep", partial: Mapping[str, Hashable]) -> bool:
        """Apply the plan's literal schedule after binding ``step.variable``."""
        if not self.use_literal_pruning:
            return False
        for literal_index in step.premise_checks:
            literal = self.plan.premise_literal(literal_index)
            self.stats.literal_evaluations += 1
            assignment = assignment_for_match(self.graph, partial, literal.variables())
            if not literal.holds_for(assignment):
                return True
        if step.check_conclusion and len(self.conclusion) == 1:
            literal = self.conclusion.literals()[0]
            self.stats.literal_evaluations += 1
            assignment = assignment_for_match(self.graph, partial, literal.variables())
            # assignment keys ⊆ literal.variables() by construction, so the
            # fully-bound test is a length comparison on the memoised frozenset
            if len(assignment) == len(literal.variables()) and literal.holds_for(assignment):
                return True
        return False

    def _expand(
        self, partial: dict[str, Hashable], remaining: list[str]
    ) -> Iterator[dict[str, Hashable]]:
        if not remaining:
            self.stats.matches_emitted += 1
            yield dict(partial)
            return
        variable = remaining[0]
        for candidate in self._candidates_for(variable, partial):
            self.stats.expansions += 1
            if not self._consistent_with_partial(variable, candidate, partial):
                continue
            partial[variable] = candidate
            if self._pruned_by_literals(variable, partial):
                del partial[variable]
                continue
            yield from self._expand(partial, remaining[1:])
            del partial[variable]

    def _candidates_for(self, variable: str, partial: Mapping[str, Hashable]) -> list[Hashable]:
        """Return candidates for ``variable``, preferring expansion from matched neighbours.

        Anchored candidates come from the store's label-filtered adjacency
        index (O(result) on the indexed engine, not O(degree)); the returned
        list is ordered by the store's insertion rank, which is deterministic
        across runs and O(1) per key (unlike the old ``sorted(key=repr)``).

        Accounting matches :func:`~repro.matching.candidates.candidate_nodes`
        exactly: one ``candidates_examined`` per node drawn from the scanned
        index (here the smallest anchored adjacency view), *before* label and
        literal filtering — the parallel benchmarks bill these counters to
        worker clocks, so the two paths must count in the same unit.
        """
        graph = self.graph
        pattern_node = self.pattern.node(variable)
        views = []
        for edge in self.pattern.out_edges(variable):
            if edge.target in partial:
                views.append(graph.predecessors_by_label(partial[edge.target], edge.label))
        for edge in self.pattern.in_edges(variable):
            if edge.source in partial:
                views.append(graph.successors_by_label(partial[edge.source], edge.label))
        if views:
            base_index = min(range(len(views)), key=lambda i: len(views[i]))
            base = views[base_index]
            others = [view for i, view in enumerate(views) if i != base_index]
            candidates = []
            for node_id in base:
                self.stats.candidates_examined += 1
                if others and not all(node_id in view for view in others):
                    continue
                if not pattern_node.matches_label(graph.node(node_id).label):
                    continue
                if (
                    self.use_literal_pruning
                    and self.premise
                    and not node_satisfies_unary_premise(graph, node_id, variable, self.premise, self.stats)
                ):
                    continue
                candidates.append(node_id)
        else:
            candidates = candidate_nodes(
                graph,
                self.pattern,
                variable,
                premise=self.premise if self.use_literal_pruning else None,
                use_literal_pruning=self.use_literal_pruning,
                stats=self.stats,
            )
        candidates.sort(key=graph.node_rank)
        return candidates

    def _consistent_with_partial(
        self, variable: str, candidate: Hashable, partial: Mapping[str, Hashable]
    ) -> bool:
        """Check every pattern edge between ``variable`` and already-matched variables."""
        for edge in self.pattern.out_edges(variable):
            if edge.target in partial:
                self.stats.edge_checks += 1
                if not self.graph.has_edge(candidate, partial[edge.target], edge.label):
                    return False
        for edge in self.pattern.in_edges(variable):
            if edge.source in partial:
                self.stats.edge_checks += 1
                if not self.graph.has_edge(partial[edge.source], candidate, edge.label):
                    return False
        return True

    def _pruned_by_literals(self, variable: str, partial: Mapping[str, Hashable]) -> bool:
        """Apply literal-driven pruning after binding ``variable``.

        Premise literals whose variables are all bound must hold, otherwise
        the branch cannot satisfy X.  When the conclusion is a single literal,
        a fully-bound conclusion that already holds cannot become a violation,
        so the branch is pruned too (Section 6.2, step (3)).
        """
        if not self.use_literal_pruning:
            return False
        bound = frozenset(partial.keys())
        for literal in self.premise:
            mentioned = literal.pattern_variables()
            if variable in mentioned and mentioned <= bound:
                self.stats.literal_evaluations += 1
                assignment = assignment_for_match(self.graph, partial, literal.variables())
                if not literal.holds_for(assignment):
                    return True
        if len(self.conclusion) == 1:
            literal = self.conclusion.literals()[0]
            mentioned = literal.pattern_variables()
            if variable in mentioned and mentioned <= bound:
                self.stats.literal_evaluations += 1
                assignment = assignment_for_match(self.graph, partial, literal.variables())
                # assignment keys ⊆ literal.variables() by construction
                if len(assignment) == len(literal.variables()) and literal.holds_for(assignment):
                    return True
        return False
