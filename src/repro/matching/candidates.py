"""Candidate computation and filtering for homomorphism matching.

Backtracking subgraph matchers (the ``Matchn`` framework of Section 6.2)
start by computing, for each pattern node ``u``, a candidate set ``C(u)`` of
data nodes that could possibly match ``u``.  For homomorphism semantics the
necessary conditions are:

* label compatibility (wildcard pattern labels match anything);
* for every pattern edge leaving/entering ``u``, the data node has at least
  one outgoing/incoming edge with that label (a cheap degree-signature check);
* single-variable literals of the premise ``X`` that mention only ``u`` must
  be satisfiable by the node's attributes (literal-driven pruning, Section
  6.2, step (3)).

The last filter is optional (``use_literal_pruning``) so the ablation bench
can quantify its effect.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Optional

from repro.expr.literals import LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern

__all__ = [
    "STEP_COUNT_PREFIX",
    "MatchStatistics",
    "candidate_nodes",
    "node_satisfies_unary_premise",
]

#: ``MatchStatistics.extra`` key prefix for per-(rule, step, strategy)
#: candidate-scan counts.  The match executor's candidate loop is far too hot
#: for per-call registry traffic (label dicts + sorted key construction), so
#: ``step_candidates`` accumulates plain-dict deltas under
#: ``"step_candidates\x1f<rule>\x1f<step>\x1f<strategy>"`` keys and the
#: detection session flushes them to ``repro_match_candidates_examined`` once
#: per run (:func:`repro.detect.instrument.flush_step_counts`).  ``extra``
#: merges additively across threads and worker processes, so the flush sees
#: the whole run in every execution mode.
STEP_COUNT_PREFIX = "step_candidates\x1f"


@dataclass
class MatchStatistics:
    """Operation counters shared by the matchers.

    The simulated cluster charges these counters to per-worker clocks, so the
    parallel benchmarks measure algorithmic work rather than Python overhead.
    """

    candidates_examined: int = 0
    expansions: int = 0
    edge_checks: int = 0
    literal_evaluations: int = 0
    matches_emitted: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def total_operations(self) -> int:
        """Return the total work units accounted so far."""
        return (
            self.candidates_examined
            + self.expansions
            + self.edge_checks
            + self.literal_evaluations
            + self.matches_emitted
        )

    def merge(self, other: "MatchStatistics") -> None:
        """Accumulate another counter into this one."""
        self.candidates_examined += other.candidates_examined
        self.expansions += other.expansions
        self.edge_checks += other.edge_checks
        self.literal_evaluations += other.literal_evaluations
        self.matches_emitted += other.matches_emitted
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value


def node_satisfies_unary_premise(
    graph: Graph,
    node_id: Hashable,
    variable: str,
    premise: LiteralSet,
    stats: Optional[MatchStatistics] = None,
) -> bool:
    """Return False when a premise literal mentioning only ``variable`` rules the node out.

    A literal that mentions exactly one pattern variable can be evaluated as
    soon as that variable is bound; if it evaluates to false (or needs an
    attribute the node lacks) no extension of the binding can satisfy ``X``,
    so the candidate cannot produce a violation.
    """
    node = graph.node(node_id)
    for literal in premise:
        mentioned = literal.pattern_variables()
        if len(mentioned) != 1 or variable not in mentioned:
            continue
        pairs = literal.variables()
        assignment = {
            pair: node.attribute(pair[1]) for pair in pairs if node.has_attribute(pair[1])
        }
        if stats is not None:
            stats.literal_evaluations += 1
        # assignment keys ⊆ pairs by construction, so completeness is a
        # length comparison (pairs is the literal's memoised frozenset)
        if len(assignment) != len(pairs) or not literal.holds_for(assignment):
            return False
    return True


def candidate_nodes(
    graph: Graph,
    pattern: Pattern,
    variable: str,
    premise: Optional[LiteralSet] = None,
    use_literal_pruning: bool = True,
    stats: Optional[MatchStatistics] = None,
) -> list[Hashable]:
    """Return the candidate set ``C(variable)`` for matching ``pattern`` in ``graph``."""
    pattern_node = pattern.node(variable)
    out_labels = [edge.label for edge in pattern.out_edges(variable)]
    in_labels = [edge.label for edge in pattern.in_edges(variable)]
    candidates: list[Hashable] = []
    for node_id in graph.nodes_with_label(pattern_node.label):
        if stats is not None:
            stats.candidates_examined += 1
        if out_labels:
            available = graph.out_edge_labels(node_id)
            if not all(label in available for label in out_labels):
                continue
        if in_labels:
            available = graph.in_edge_labels(node_id)
            if not all(label in available for label in in_labels):
                continue
        if (
            use_literal_pruning
            and premise is not None
            and not node_satisfies_unary_premise(graph, node_id, variable, premise, stats)
        ):
            continue
        candidates.append(node_id)
    # rank order makes every consumer (PDect work-unit creation included)
    # deterministic across runs and identical on every storage backend
    candidates.sort(key=graph.node_rank)
    return candidates
