"""Closure-compiled literal schedules: the compiled evaluation layer.

Every candidate a kernel examines under the interpreted pipeline pays an
AST tax: each scheduled literal rebuilds an ``{(variable, attribute):
value}`` assignment dict, walks the :class:`~repro.expr.expressions.
Expression` tree through virtual ``evaluate`` calls, and dispatches the
comparison through :meth:`~repro.expr.literals.Comparison.holds`.  This
module compiles that work out of the search loop, once per ``(rule,
order)``:

* pattern variables map to *slot indices* in plan order, so a partial
  match becomes a flat list of attribute mappings (``slots[d]`` is the
  ``node.attributes`` of the variable bound at depth ``d``) instead of a
  dict keyed by variable name;
* attribute references are pre-resolved to ``(slot, key)`` reads;
* expressions are constant-folded and emitted as nested Python closures
  with the comparison operator (``operator.eq`` & co.) specialised in, so
  checking a literal is a single ``check(slots)`` call with zero AST
  traversal;
* the per-depth "all conclusion variables bound" test the interpreted
  matcher performs as ``set(assignment) == set(literal.variables())`` is
  free: a missing attribute raises a pre-allocated
  :class:`~repro.errors.EvaluationError` inside the closure, which the
  literal wrapper turns into ``False`` — exactly the interpreted verdict.

A compiled check returns ``True`` iff every referenced attribute is
present *and* evaluation raises nothing *and* the comparison holds —
the same three-way semantics as ``Literal.holds_for`` over a complete
assignment, which lets one closure serve premise checks (prune on
``False``) and conclusion checks (prune on ``True``) alike.

Closures do not pickle.  :class:`~repro.matching.plan.MatchPlan` therefore
excludes its compiled memo from ``__getstate__``; ``spawn``-style worker
processes recompile lazily from the plan document they already receive,
``fork`` workers inherit the parent's closures for free.

The kill switch is ``REPRO_COMPILED_EVAL=off`` (or
``DetectionOptions(compiled=False)``), which restores the interpreted
path byte-identically — verdicts *and* :class:`~repro.matching.candidates.
MatchStatistics` accounting; the parity suite (``tests/test_compiled_eval
.py``) holds both paths to that.

This module also hosts the sorted-rank candidate intersection for the
anchored strategy on :class:`~repro.graph.store.CsrStore`: the store's
label-filtered adjacency views are ascending ``array('q')`` rank slices,
so the intersection is a linear merge with per-view bisect cursors
instead of repeated hash probes — and the output is already in rank
order, skipping the final sort.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Optional

from repro import obs
from repro.errors import EvaluationError
from repro.expr.expressions import (
    AbsoluteValue,
    Add,
    Divide,
    Expression,
    Multiply,
    Negate,
    Subtract,
    TermExpression,
)
from repro.expr.literals import COMPARISON_OPS, Literal
from repro.expr.terms import Constant

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.matching.candidates import MatchStatistics
    from repro.matching.plan import MatchPlan, PlanStep

__all__ = [
    "COMPILED_ENV",
    "compiled_enabled",
    "resolve_compiled",
    "CompiledStep",
    "CompiledSchedule",
    "compile_literal",
    "csr_sorted_intersection",
]

#: Environment switch for compiled evaluation; any of ``off``/``0``/
#: ``false``/``no`` (case-insensitive) restores the interpreted literal
#: path end to end.  Next to ``REPRO_MATCH_PLANNER`` in spirit: the
#: interpreted path stays the parity oracle.
COMPILED_ENV = "REPRO_COMPILED_EVAL"


def compiled_enabled() -> bool:
    """Return True unless ``REPRO_COMPILED_EVAL`` disables compiled evaluation."""
    return os.environ.get(COMPILED_ENV, "on").strip().lower() not in ("off", "0", "false", "no")


def resolve_compiled(compiled: Optional[bool]) -> bool:
    """Resolve an explicit override (``DetectionOptions.compiled``) against the env switch."""
    if compiled is not None:
        return compiled
    return compiled_enabled()


# -------------------------------------------------------- expression compiler

#: Sentinel distinguishing "attribute absent" from any stored value.
_MISSING = object()

#: One pre-allocated exception per closure beats building a formatted
#: message on every miss; the wrapper catches it immediately, so identity
#: and traceback freshness do not matter.
def _missing_error(term) -> EvaluationError:
    return EvaluationError(f"no value for {term} in the assignment")


def _compile_expression(expression: Expression, slot_of, direct: bool) -> Callable:
    """Emit a closure computing ``expression`` over a slot list.

    ``slot_of`` maps pattern variables to slot indices.  With ``direct``
    the emitted leaf reads treat the environment as a single node's
    attribute mapping (the unary-filter form); otherwise the environment
    is the slot list and leaves read ``env[slot][key]``.

    Constant subtrees are folded here — a fold that raises propagates to
    :func:`compile_literal`, which poisons the literal to a constant
    verdict (the interpreted evaluator would raise identically on every
    assignment).  Arithmetic mirrors the ``evaluate`` methods exactly:
    ints stay ints, ``Divide`` goes through :class:`fractions.Fraction`
    and raises on a zero denominator.
    """
    if not expression.variables():
        value = expression.evaluate({})
        return lambda env: value
    if isinstance(expression, TermExpression):
        term = expression.term
        if isinstance(term, Constant):  # pragma: no cover - caught by the fold above
            value = term.value
            return lambda env: value
        key = term.attribute
        error = _missing_error(term)
        if direct:
            def read_direct(env, _key=key, _error=error):
                value = env.get(_key, _MISSING)
                if value is _MISSING:
                    raise _error
                return value
            return read_direct
        slot = slot_of[term.variable]
        def read(env, _slot=slot, _key=key, _error=error):
            value = env[_slot].get(_key, _MISSING)
            if value is _MISSING:
                raise _error
            return value
        return read
    if isinstance(expression, Add):
        left = _compile_expression(expression.left, slot_of, direct)
        right = _compile_expression(expression.right, slot_of, direct)
        return lambda env: left(env) + right(env)
    if isinstance(expression, Subtract):
        left = _compile_expression(expression.left, slot_of, direct)
        right = _compile_expression(expression.right, slot_of, direct)
        return lambda env: left(env) - right(env)
    if isinstance(expression, Multiply):
        left = _compile_expression(expression.left, slot_of, direct)
        right = _compile_expression(expression.right, slot_of, direct)
        return lambda env: left(env) * right(env)
    if isinstance(expression, Divide):
        left = _compile_expression(expression.left, slot_of, direct)
        right = _compile_expression(expression.right, slot_of, direct)
        error = EvaluationError(f"division by zero while evaluating {expression}")
        def divide(env, _error=error):
            numerator = left(env)
            denominator = right(env)
            if denominator == 0:
                raise _error
            return Fraction(numerator) / Fraction(denominator)
        return divide
    if isinstance(expression, AbsoluteValue):
        operand = _compile_expression(expression.operand, slot_of, direct)
        return lambda env: abs(operand(env))
    if isinstance(expression, Negate):
        operand = _compile_expression(expression.operand, slot_of, direct)
        return lambda env: -operand(env)
    # unknown Expression subclass: fall back to the interpreted evaluator
    # over an assignment reconstructed from the slots — semantics are
    # preserved (missing attributes raise inside evaluate) at interpreted
    # speed for this subtree only
    items = tuple(
        (pair, (None if direct else slot_of[pair[0]]), pair[1])
        for pair in sorted(expression.variables())
    )
    def fallback(env):
        assignment = {}
        for pair, slot, key in items:
            attrs = env if slot is None else env[slot]
            value = attrs.get(key, _MISSING)
            if value is not _MISSING:
                assignment[pair] = value
        return expression.evaluate(assignment)
    return fallback


def _constant_check(verdict: bool) -> Callable:
    return (lambda env: True) if verdict else (lambda env: False)


def compile_literal(literal: Literal, slot_of, direct: bool = False) -> Callable:
    """Compile ``literal`` into ``check(env) -> bool``.

    The returned closure is ``True`` iff every referenced attribute is
    present, evaluation raises neither :class:`EvaluationError` nor
    ``TypeError`` (dirty data), and the comparison holds — i.e. exactly
    ``literal.holds_for(assignment)`` over the assignment the interpreted
    matcher would have built, including its implicit completeness test.
    """
    op = COMPARISON_OPS[literal.comparison]
    try:
        left = _compile_expression(literal.left, slot_of, direct)
        right = _compile_expression(literal.right, slot_of, direct)
    except (EvaluationError, TypeError):
        # a constant subtree that cannot evaluate (e.g. division by the
        # constant zero): the interpreted evaluator raises on every
        # assignment, so the literal never holds
        return _constant_check(False)
    if not literal.variables():
        try:
            return _constant_check(bool(op(left(()), right(()))))
        except (EvaluationError, TypeError):
            return _constant_check(False)
    # Exceptions other than EvaluationError/TypeError (e.g. ValueError from
    # Fraction('text')) escape the interpreted evaluator too — but only when
    # the assignment is *complete*; the kernels skip incomplete literals
    # before ever evaluating, while the closures discover missing attributes
    # lazily and could trip over dirty data first.  On a foreign exception,
    # replay in exact kernel order: incomplete -> False, complete -> re-raise
    # whatever ``holds_for`` raises.  The hot path pays nothing for this.
    items = tuple(
        (pair, (None if direct else slot_of[pair[0]]), pair[1])
        for pair in sorted(literal.variables())
    )
    def slow(env, _literal=literal, _items=items):
        assignment = {}
        for pair, slot, key in _items:
            attrs = env if slot is None else env[slot]
            value = attrs.get(key, _MISSING)
            if value is _MISSING:
                return False
            assignment[pair] = value
        return _literal.holds_for(assignment)
    def check(env, _op=op, _left=left, _right=right, _slow=slow):
        try:
            return bool(_op(_left(env), _right(env)))
        except (EvaluationError, TypeError):
            return False
        except Exception:
            return _slow(env)
    return check


# ----------------------------------------------------------- compiled schedule


class CompiledStep:
    """The compiled literal schedule of one plan step.

    ``unary_checks`` run during candidate filtering over a single node's
    attribute mapping, parallel (in order) to ``PlanStep.unary_premise``;
    ``premise_checks`` run after the step's variable binds, parallel to
    ``PlanStep.premise_checks``; ``conclusion_check`` is present exactly
    when the interpreted matcher would test the fully-bound single-literal
    conclusion at this depth.
    """

    __slots__ = ("unary_checks", "premise_checks", "conclusion_check")

    def __init__(self, unary_checks, premise_checks, conclusion_check) -> None:
        self.unary_checks = unary_checks
        self.premise_checks = premise_checks
        self.conclusion_check = conclusion_check

    def pruned(self, slots, stats: "MatchStatistics") -> bool:
        """Apply the step's bound-literal schedule; mirror of the interpreted path.

        Billing is identical to ``_pruned_by_schedule``: one
        ``literal_evaluations`` per check actually reached, short-circuit
        on the first pruning verdict.
        """
        for check in self.premise_checks:
            stats.literal_evaluations += 1
            if not check(slots):
                return True
        conclusion = self.conclusion_check
        if conclusion is not None:
            stats.literal_evaluations += 1
            if conclusion(slots):
                return True
        return False


class CompiledSchedule:
    """One rule's fully compiled execution schedule for a fixed variable order."""

    __slots__ = ("order", "slot_of", "steps", "premise_all", "conclusion_all", "_flat_bill", "_needed")

    def __init__(self, order, slot_of, steps, premise_all, conclusion_all, needed) -> None:
        self.order = order
        self.slot_of = slot_of
        self.steps = steps
        self.premise_all = premise_all
        self.conclusion_all = conclusion_all
        self._flat_bill = len(premise_all) + len(conclusion_all)
        self._needed = needed

    @classmethod
    def build(cls, plan: "MatchPlan", order, schedule) -> "CompiledSchedule":
        """Compile the literal schedule of ``plan`` resolved for ``order``."""
        rule = plan.rule
        slot_of = {variable: index for index, variable in enumerate(order)}
        conclusion_literals = rule.conclusion.literals()
        single_conclusion = (
            compile_literal(conclusion_literals[0], slot_of)
            if len(conclusion_literals) == 1
            else None
        )
        steps = []
        for step in schedule:
            unary = tuple(
                compile_literal(plan.premise_literal(index), slot_of, direct=True)
                for index in step.unary_premise
            )
            checks = tuple(
                compile_literal(plan.premise_literal(index), slot_of)
                for index in step.premise_checks
            )
            steps.append(
                CompiledStep(unary, checks, single_conclusion if step.check_conclusion else None)
            )
        premise_all = tuple(
            compile_literal(literal, slot_of) for literal in rule.premise.literals()
        )
        conclusion_all = tuple(
            compile_literal(literal, slot_of) for literal in conclusion_literals
        )
        needed = tuple(
            (slot_of[variable], variable)
            for variable in sorted(
                rule.premise.pattern_variables() | rule.conclusion.pattern_variables(),
                key=slot_of.__getitem__,
            )
        )
        if obs.enabled():
            obs.counter_inc("repro_compiled_schedules_total", {"rule": rule.name})
        return cls(tuple(order), slot_of, tuple(steps), premise_all, conclusion_all, needed)

    def violates(self, slots, stats: "MatchStatistics") -> bool:
        """Dependency check over a complete slot list; mirror of ``match_violates_dependency``.

        Billing matches the interpreted helper exactly: a flat
        ``len(premise) + len(conclusion)`` charged up front regardless of
        where the conjunctions short-circuit.
        """
        stats.literal_evaluations += self._flat_bill
        for check in self.premise_all:
            if not check(slots):
                return False
        for check in self.conclusion_all:
            if not check(slots):
                return True
        return False

    def violates_mapping(self, graph, match, stats: "MatchStatistics") -> bool:
        """Dependency check over a ``{variable: node_id}`` match dict."""
        slots = [None] * len(self.order)
        node = graph.node
        for slot, variable in self._needed:
            slots[slot] = node(match[variable]).attributes
        return self.violates(slots, stats)


# --------------------------------------------------- sorted-rank intersection


def csr_sorted_intersection(base, others) -> Optional[list]:
    """Intersect CSR adjacency views by merging their sorted rank slices.

    ``base`` is the smallest view; every view must be a
    :class:`~repro.graph.store._CsrNeighboursView` (the caller has already
    checked).  Returns node ids in ascending rank order — the exact order
    ``sort(key=graph.node_rank)`` would produce — or None when any view
    cannot expose a rank slice, in which case the caller falls back to
    hash-probe membership.

    Each non-base slice keeps a monotone cursor: the base ranks arrive
    ascending, so every ``bisect_left`` restricts itself to the unseen
    tail and the whole intersection is a linear merge (galloping via
    bisect) rather than |base| × |others| hash probes.
    """
    from bisect import bisect_left

    try:
        base_ranks, base_start, base_stop, ids = base.rank_slice()
        other_slices = [view.rank_slice() for view in others]
    except AttributeError:  # pragma: no cover - non-CSR view slipped through
        return None
    cursors = [start for _, start, _, _ in other_slices]
    survivors: list = []
    append = survivors.append
    for position in range(base_start, base_stop):
        rank = base_ranks[position]
        member = True
        for index, (ranks, _, stop, _) in enumerate(other_slices):
            cursor = bisect_left(ranks, rank, cursors[index], stop)
            cursors[index] = cursor
            if cursor >= stop or ranks[cursor] != rank:
                member = False
                break
        if member:
            append(ids[rank])
    return survivors
