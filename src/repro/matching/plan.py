"""Cost-based match planning: compile an NGD into an immutable :class:`MatchPlan`.

The ``Matchn`` framework (paper, Section 6.2) leaves two degrees of freedom
open: the order in which pattern variables are matched, and how the candidate
set of each variable is generated.  The original matcher fixed both
statically — ``Pattern.matching_order`` (pure connectivity, blind to the data)
plus per-call filtering that re-derived the same literal subsets on every
expansion.  This module separates *planning* from *execution*:

* :class:`GraphStatistics` snapshots the store statistics the cost model
  reads: label cardinalities (``len(nodes_with_label(l))`` — O(1) on the
  indexed engines) and per-edge-label average fan-out;
* :func:`compile_plan` chooses a variable order greedily by estimated
  candidate cardinality — start from the rarest label, then repeatedly bind
  the frontier variable whose anchored candidate set is estimated smallest —
  and resolves, per step, the candidate *strategy* (``scan`` over the label
  index vs ``anchored`` intersection of label-filtered adjacency views,
  smallest set first) and the *literal schedule* (which premise literals
  fire at which binding depth, replacing the per-expansion ``frozenset``
  scans the old matcher performed);
* :class:`MatchPlan` is the immutable result.  ``schedule_for(order)``
  resolves a step schedule for any variable order (seeded orders included),
  so one plan serves batch search, pivot-seeded incremental search, and the
  parallel work-unit kernels alike; resolved schedules are memoised.

Executors (``HomomorphismMatcher``, ``expand_work_unit`` and the four
detection kernels) take a plan and run it; without one they fall back to the
pre-plan behaviour.  The process-wide switch is the ``REPRO_MATCH_PLANNER``
environment variable (``off`` restores the static pipeline end to end, which
the parity suite uses as the oracle).

Cost accounting is uniform across strategies: every node drawn from an index
and examined is billed one ``candidates_examined``, each adjacency membership
probe one ``edge_checks``, each literal evaluation one
``literal_evaluations`` — the same unit scheme as the static pipeline, so
planned and static runs are directly comparable through
``MatchStatistics.total_operations()``.
"""

from __future__ import annotations

import os
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.core.ngd import NGD
from repro.expr.literals import Literal
from repro.graph.graph import WILDCARD, Graph
from repro.graph.store import _CsrNeighboursView
from repro.matching.candidates import STEP_COUNT_PREFIX, MatchStatistics
from repro.matching.compiled import (
    CompiledSchedule,
    CompiledStep,
    compiled_enabled,
    csr_sorted_intersection,
    resolve_compiled,
)

__all__ = [
    "PLANNER_ENV",
    "planner_enabled",
    "GraphStatistics",
    "Anchor",
    "PlanStep",
    "MatchPlan",
    "compile_plan",
    "compile_plans",
    "step_candidates",
    "format_plan",
    "plans_to_document",
    "plans_from_document",
    "save_plans",
    "load_plans",
]

#: Environment switch for the compile-then-execute pipeline; any of
#: ``off``/``0``/``false``/``no`` (case-insensitive) restores the static
#: pre-plan matcher end to end.
PLANNER_ENV = "REPRO_MATCH_PLANNER"


def planner_enabled() -> bool:
    """Return True unless ``REPRO_MATCH_PLANNER`` disables the planner."""
    return os.environ.get(PLANNER_ENV, "on").strip().lower() not in ("off", "0", "false", "no")


# ------------------------------------------------------------------ statistics


@dataclass(frozen=True)
class GraphStatistics:
    """The store statistics the plan cost model reads, snapshotted once.

    Label cardinalities come straight from the label index
    (``len(nodes_with_label(l))``); edge-label counts from one pass over E.
    Both are pure functions of the graph content, independent of the storage
    backend, so the same graph compiles to the same plan on every engine.

    ``source_pairs`` / ``target_pairs`` record per-(node-label, edge-label)
    co-occurrence: how many ``edge_label`` edges *leave* (resp. *enter*)
    nodes of each label.  They sharpen the anchored-fan estimate for
    correlated hub patterns — a graph-wide ``average_fan`` dilutes a hub
    label's true fan-out across every node — and are gathered in the same
    O(|E|) pass.  Both stay optional so statistics snapshots persisted by
    older plan documents keep producing exactly their old estimates.
    """

    node_count: int
    edge_count: int
    label_counts: Mapping[str, int]
    edge_label_counts: Mapping[str, int]
    source_pairs: Optional[Mapping[str, Mapping[str, int]]] = None
    target_pairs: Optional[Mapping[str, Mapping[str, int]]] = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphStatistics":
        """Snapshot the statistics of ``graph`` (one O(|E|) pass)."""
        label_counts = {
            label: len(graph.nodes_with_label(label)) for label in sorted(graph.labels())
        }
        edge_label_counts: dict[str, int] = {}
        source_pairs: dict[str, dict[str, int]] = {}
        target_pairs: dict[str, dict[str, int]] = {}
        for edge in graph.edges():
            edge_label_counts[edge.label] = edge_label_counts.get(edge.label, 0) + 1
            source_label = graph.node(edge.source).label
            target_label = graph.node(edge.target).label
            by_edge = source_pairs.setdefault(source_label, {})
            by_edge[edge.label] = by_edge.get(edge.label, 0) + 1
            by_edge = target_pairs.setdefault(target_label, {})
            by_edge[edge.label] = by_edge.get(edge.label, 0) + 1
        return cls(
            node_count=graph.node_count(),
            edge_count=graph.edge_count(),
            label_counts=label_counts,
            edge_label_counts=edge_label_counts,
            source_pairs=source_pairs,
            target_pairs=target_pairs,
        )

    def to_dict(self) -> dict:
        """Return the JSON form used by plan persistence (exact values)."""
        document = {
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "label_counts": dict(self.label_counts),
            "edge_label_counts": dict(self.edge_label_counts),
        }
        if self.source_pairs is not None:
            document["source_pairs"] = {
                label: dict(pairs) for label, pairs in self.source_pairs.items()
            }
        if self.target_pairs is not None:
            document["target_pairs"] = {
                label: dict(pairs) for label, pairs in self.target_pairs.items()
            }
        return document

    @classmethod
    def from_dict(cls, document: Mapping) -> "GraphStatistics":
        """Rebuild a statistics snapshot from :meth:`to_dict` output.

        Documents written before co-occurrence statistics existed simply
        lack the keys; the rebuilt snapshot then falls back to the
        ``average_fan`` estimates it was compiled with.
        """
        source_pairs = document.get("source_pairs")
        target_pairs = document.get("target_pairs")
        return cls(
            node_count=int(document["node_count"]),
            edge_count=int(document["edge_count"]),
            label_counts=dict(document["label_counts"]),
            edge_label_counts=dict(document["edge_label_counts"]),
            source_pairs={label: dict(pairs) for label, pairs in source_pairs.items()}
            if source_pairs is not None
            else None,
            target_pairs={label: dict(pairs) for label, pairs in target_pairs.items()}
            if target_pairs is not None
            else None,
        )

    def label_cardinality(self, label: str) -> int:
        """Return |{v : L(v) = label}| (the wildcard matches every node)."""
        if label == WILDCARD:
            return self.node_count
        return self.label_counts.get(label, 0)

    def average_fan(self, edge_label: str) -> float:
        """Return the expected number of ``edge_label`` neighbours of one node."""
        if self.node_count == 0:
            return 0.0
        return self.edge_label_counts.get(edge_label, 0) / self.node_count

    def anchored_fan(
        self, anchor_label: str, edge_label: str, direction: str, candidate_label: str
    ) -> float:
        """Estimate the ``edge_label`` fan from one ``anchor_label`` node.

        Uses the co-occurrence counts when available: only edges whose
        source *and* target labels are compatible with the pattern edge can
        contribute, and the compatible count is spread over the anchor
        label's population rather than the whole node set.  ``direction``
        follows :class:`Anchor` semantics: ``"succ"`` means the data edge
        runs anchor → candidate, ``"pred"`` candidate → anchor.
        """
        if self.source_pairs is None or self.target_pairs is None:
            return self.average_fan(edge_label)
        total = self.edge_label_counts.get(edge_label, 0)
        if direction == "succ":
            source_label, target_label = anchor_label, candidate_label
        else:
            source_label, target_label = candidate_label, anchor_label
        if source_label == WILDCARD:
            from_source = total
        else:
            from_source = self.source_pairs.get(source_label, {}).get(edge_label, 0)
        if target_label == WILDCARD:
            into_target = total
        else:
            into_target = self.target_pairs.get(target_label, {}).get(edge_label, 0)
        return min(from_source, into_target) / max(self.label_cardinality(anchor_label), 1)


# ----------------------------------------------------------------- plan model


@dataclass(frozen=True)
class Anchor:
    """One already-bound pattern neighbour constraining a step's candidates.

    ``direction`` names the adjacency view of the *anchor's* data node that
    serves the candidates: ``"succ"`` for a pattern edge anchor → step
    variable (candidates ⊆ ``successors_by_label(h(anchor), edge_label)``),
    ``"pred"`` for step variable → anchor (candidates ⊆
    ``predecessors_by_label``).
    """

    variable: str
    edge_label: str
    direction: str

    def view(self, graph: Graph, anchor_node: Hashable):
        """Return the label-filtered adjacency view this anchor contributes."""
        if self.direction == "succ":
            return graph.successors_by_label(anchor_node, self.edge_label)
        return graph.predecessors_by_label(anchor_node, self.edge_label)


@dataclass(frozen=True)
class PlanStep:
    """One variable binding of a compiled schedule.

    ``strategy`` is ``"scan"`` (enumerate the label index, filtered by the
    degree signature) or ``"anchored"`` (intersect the anchors' label-filtered
    adjacency views, smallest set first).  The literal schedule is
    pre-resolved: ``unary_premise`` holds indices (into the rule's premise
    literal tuple) evaluated during candidate filtering, ``premise_checks``
    the multi-variable premise literals that become fully bound when this
    variable binds, and ``check_conclusion`` marks the step at which a
    single-literal conclusion is fully bound (a bound conclusion that already
    holds cannot become a violation, so the branch is pruned — Section 6.2,
    step (3)).
    """

    variable: str
    label: str
    strategy: str
    anchors: tuple[Anchor, ...]
    self_loops: tuple[str, ...]
    out_labels: tuple[str, ...]
    in_labels: tuple[str, ...]
    unary_premise: tuple[int, ...]
    premise_checks: tuple[int, ...]
    check_conclusion: bool
    estimated_candidates: float

    def to_dict(self) -> dict:
        """Return the JSON form used by ``repro-detect explain --format json``."""
        return {
            "variable": self.variable,
            "label": self.label,
            "strategy": self.strategy,
            "anchors": [
                {"variable": a.variable, "edge_label": a.edge_label, "direction": a.direction}
                for a in self.anchors
            ],
            "estimated_candidates": round(self.estimated_candidates, 3),
            "unary_premise_literals": list(self.unary_premise),
            "premise_literals": list(self.premise_checks),
            "checks_conclusion": self.check_conclusion,
        }


class MatchPlan:
    """An immutable compiled execution plan for one NGD over one graph snapshot.

    The root schedule (``steps`` / ``order``) drives batch search; seeded
    searches (update pivots) ask :meth:`order_for_seed` for a cost-based
    order beginning with the seed variables and :meth:`schedule_for` for the
    matching step schedule.  Schedules are pure functions of
    ``(statistics, rule, order, observed)``; the internal memo tables only
    cache their results, so a plan can be shared freely across threads and
    kernels.

    ``observed`` optionally carries the history-informed cardinality priors
    the plan was compiled with (``{(variable, strategy): mean}``) — purely a
    cost-model input; it never changes which matches a plan finds.
    """

    __slots__ = (
        "rule",
        "statistics",
        "steps",
        "observed",
        "_premise_literals",
        "_schedules",
        "_seed_orders",
        "_compiled",
    )

    def __init__(
        self,
        rule: NGD,
        statistics: GraphStatistics,
        steps: tuple[PlanStep, ...],
        observed: Optional[Mapping[tuple[str, str], float]] = None,
    ) -> None:
        self.rule = rule
        self.statistics = statistics
        self.steps = steps
        self.observed: Optional[dict[tuple[str, str], float]] = (
            dict(observed) if observed else None
        )
        self._premise_literals: tuple[Literal, ...] = rule.premise.literals()
        self._schedules: dict[tuple[str, ...], tuple[PlanStep, ...]] = {self.order: steps}
        self._seed_orders: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._compiled: dict[tuple[str, ...], CompiledSchedule] = {}

    @property
    def order(self) -> tuple[str, ...]:
        """Return the cost-based root variable order."""
        return tuple(step.variable for step in self.steps)

    def premise_literal(self, index: int) -> Literal:
        """Return the premise literal a schedule index refers to."""
        return self._premise_literals[index]

    def order_for_seed(self, seed: Sequence[str]) -> tuple[str, ...]:
        """Return a cost-based order starting with ``seed`` (in the given order)."""
        key = tuple(seed)
        if not key:
            return self.order
        cached = self._seed_orders.get(key)
        if cached is None:
            cached = _greedy_order(self.statistics, self.rule.pattern, key, self.observed)
            self._seed_orders[key] = cached
        return cached

    def schedule_for(self, order: tuple[str, ...]) -> tuple[PlanStep, ...]:
        """Return the step schedule for an arbitrary complete variable order.

        Step ``d`` is compiled against the bound prefix ``order[:d]``, so the
        same schedule serves every work unit following ``order`` regardless
        of how many leading variables its seed already bound.
        """
        cached = self._schedules.get(order)
        if cached is None:
            cached = _steps_for_order(self.statistics, self.rule, order, self.observed)
            self._schedules[order] = cached
        return cached

    def compiled_for(self, order: tuple[str, ...]) -> CompiledSchedule:
        """Return the closure-compiled schedule for ``order`` (memoised).

        Compiled schedules are pure functions of ``(rule, order,
        schedule)``; an adaptive suffix replan therefore recompiles only
        the revised order it introduces — every other memo entry stays
        valid, and the bound-prefix slots of in-flight work units stay
        valid too because slot ``d`` is always position ``d`` of the
        order.
        """
        cached = self._compiled.get(order)
        if cached is None:
            cached = CompiledSchedule.build(self, order, self.schedule_for(order))
            self._compiled[order] = cached
        return cached

    def __getstate__(self):
        # the compiled memo holds closures, which do not pickle: spawn
        # workers rebuild plans from the persisted plan document and
        # recompile lazily on first use; fork workers inherit this object
        # (closures included) without pickling
        return (self.rule, self.statistics, self.steps, self.observed)

    def __setstate__(self, state) -> None:
        rule, statistics, steps, observed = state
        MatchPlan.__init__(self, rule, statistics, steps, observed)

    def revised_order(
        self,
        order: tuple[str, ...],
        depth: int,
        observed: Mapping[tuple[str, str], float],
    ) -> tuple[str, ...]:
        """Re-order the unbound suffix of ``order`` using observed cardinalities.

        The bound prefix ``order[:depth]`` is kept verbatim (those variables
        are already matched in-flight); the remaining variables are
        re-greedily ordered with ``observed`` means standing in for the
        compile-time estimates.  The adaptive controller calls this when a
        step's measured candidate counts drift past the threshold.
        """
        return _greedy_order(self.statistics, self.rule.pattern, tuple(order[:depth]), observed)

    def estimated_unit_cost(self, depth: int) -> float:
        """Return the estimated subtree size of a work unit bound to ``depth`` variables.

        The product of the remaining steps' candidate estimates — the
        quantity PDect's seed placement balances across processors.
        """
        return self.remaining_cost(self.order, depth)

    def remaining_cost(self, order: tuple[str, ...], depth: int) -> float:
        """Return the remaining-subtree estimate of a unit following ``order``.

        The product of the candidate estimates of the steps not yet bound —
        the plan-guided workload measure :func:`~repro.detect.parallel.
        balancing.should_split_planned` tests and the executors balance on.
        Seeded (pivot) orders resolve through the memoised schedule, so the
        estimate is exact for incremental work units too.
        """
        steps = self.steps if order == self.order else self.schedule_for(order)
        cost = 1.0
        for step in steps[depth:]:
            cost *= max(step.estimated_candidates, 1.0)
            if cost > 1e18:
                return 1e18
        return cost

    def to_dict(self) -> dict:
        """Return the JSON description used by ``repro-detect explain``.

        The document also carries the exact ``statistics`` snapshot, which
        makes it a complete persistent form: :meth:`from_dict` rebuilds an
        identical plan from it (schedules are pure functions of
        ``(statistics, rule, order, observed)``, so only those are stored).
        """
        document = {
            "rule": self.rule.name,
            "order": list(self.order),
            "estimated_cost": round(self.estimated_unit_cost(0), 3),
            "steps": [step.to_dict() for step in self.steps],
            "statistics": self.statistics.to_dict(),
        }
        if self.observed:
            document["observed"] = [
                [variable, strategy, self.observed[(variable, strategy)]]
                for variable, strategy in sorted(self.observed)
            ]
        return document

    @classmethod
    def from_dict(cls, document: Mapping, rule: NGD) -> "MatchPlan":
        """Rebuild a plan from :meth:`to_dict` output and its rule.

        The stored variable order is authoritative (a persisted plan keeps
        executing the order it was compiled with, even if the compiler
        heuristic changes later); the step schedule is recompiled from the
        stored statistics, which is exact and costs no graph pass.
        """
        from repro.errors import SerializationError

        if document.get("rule") != rule.name:
            raise SerializationError(
                f"plan document is for rule {document.get('rule')!r}, not {rule.name!r}"
            )
        statistics = GraphStatistics.from_dict(document["statistics"])
        order = tuple(document["order"])
        if len(order) != len(rule.pattern.variables) or set(order) != set(
            rule.pattern.variables
        ):
            raise SerializationError(
                f"plan order {list(order)} is not a permutation of the "
                f"variables of {rule.name!r}"
            )
        observed = {
            (str(variable), str(strategy)): float(mean)
            for variable, strategy, mean in document.get("observed", [])
        } or None
        return cls(
            rule, statistics, _steps_for_order(statistics, rule, order, observed), observed
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MatchPlan({self.rule.name!r}, order={list(self.order)})"


# ------------------------------------------------------------------- compiler


def _anchors_for(pattern, variable: str, bound: set) -> tuple[Anchor, ...]:
    """Return every pattern edge linking ``variable`` to a bound variable."""
    anchors: list[Anchor] = []
    for edge in pattern.out_edges(variable):
        if edge.target in bound and edge.target != variable:
            anchors.append(Anchor(edge.target, edge.label, "pred"))
    for edge in pattern.in_edges(variable):
        if edge.source in bound and edge.source != variable:
            anchors.append(Anchor(edge.source, edge.label, "succ"))
    return tuple(anchors)


def _estimate(
    stats: GraphStatistics,
    pattern,
    variable: str,
    anchors: tuple[Anchor, ...],
    observed: Optional[Mapping[tuple[str, str], float]] = None,
) -> float:
    """Estimate |C(variable)| given the bound anchors.

    An unanchored variable scans its label bucket; an anchored one reads the
    smallest label-filtered adjacency view, whose expected size is the
    anchored co-occurrence fan — the intersection can only be smaller, so the
    minimum over the anchors (capped by the label cardinality) is an
    upper-bound estimate consistent across anchors.

    ``observed`` optionally overrides the model with measured candidate
    means keyed ``(variable, strategy)`` — how adaptive replanning and the
    persisted cardinality history inject what an actual run saw.
    """
    strategy = "anchored" if anchors else "scan"
    if observed is not None:
        prior = observed.get((variable, strategy))
        if prior is not None:
            return max(float(prior), 0.0)
    candidate_label = pattern.node(variable).label
    label_cardinality = float(stats.label_cardinality(candidate_label))
    if not anchors:
        return label_cardinality
    fan = min(
        stats.anchored_fan(
            pattern.node(anchor.variable).label,
            anchor.edge_label,
            anchor.direction,
            candidate_label,
        )
        for anchor in anchors
    )
    return min(label_cardinality, fan)


def _greedy_order(
    stats: GraphStatistics,
    pattern,
    seed: Sequence[str] = (),
    observed: Optional[Mapping[tuple[str, str], float]] = None,
) -> tuple[str, ...]:
    """Choose a variable order greedily by estimated candidate cardinality.

    Ties break on pattern-variable declaration index, so the order is a
    deterministic pure function of (statistics, pattern, seed, observed) and
    identical on every storage backend.
    """
    variables = pattern.variables
    index = {variable: position for position, variable in enumerate(variables)}
    order: list[str] = []
    bound: set = set()
    for variable in seed:
        if variable not in bound:
            order.append(variable)
            bound.add(variable)
    while len(order) < len(variables):
        frontier = [
            variable
            for variable in variables
            if variable not in bound and _anchors_for(pattern, variable, bound)
        ]
        pool = frontier if frontier else [v for v in variables if v not in bound]
        best = min(
            pool,
            key=lambda v: (
                _estimate(stats, pattern, v, _anchors_for(pattern, v, bound), observed),
                index[v],
            ),
        )
        order.append(best)
        bound.add(best)
    return tuple(order)


def _steps_for_order(
    stats: GraphStatistics,
    rule: NGD,
    order: tuple[str, ...],
    observed: Optional[Mapping[tuple[str, str], float]] = None,
) -> tuple[PlanStep, ...]:
    """Compile the per-step strategies and literal schedule for a fixed order."""
    pattern = rule.pattern
    premise_literals = rule.premise.literals()
    conclusion_literals = rule.conclusion.literals()
    single_conclusion = conclusion_literals[0] if len(conclusion_literals) == 1 else None

    scheduled: set[int] = set()
    conclusion_done = False
    steps: list[PlanStep] = []
    bound: set = set()
    for variable in order:
        anchors = _anchors_for(pattern, variable, bound)
        self_loops = tuple(
            edge.label for edge in pattern.out_edges(variable) if edge.target == variable
        )
        unary: list[int] = []
        checks: list[int] = []
        now_bound = bound | {variable}
        for literal_index, literal in enumerate(premise_literals):
            if literal_index in scheduled:
                continue
            mentioned = literal.pattern_variables()
            if not (mentioned <= now_bound):
                continue
            scheduled.add(literal_index)
            if mentioned == frozenset({variable}):
                unary.append(literal_index)
            else:
                checks.append(literal_index)
        check_conclusion = False
        if single_conclusion is not None and not conclusion_done:
            if single_conclusion.pattern_variables() <= now_bound:
                check_conclusion = True
                conclusion_done = True
        steps.append(
            PlanStep(
                variable=variable,
                label=pattern.node(variable).label,
                strategy="anchored" if anchors else "scan",
                anchors=anchors,
                self_loops=self_loops,
                out_labels=tuple(edge.label for edge in pattern.out_edges(variable)),
                in_labels=tuple(edge.label for edge in pattern.in_edges(variable)),
                unary_premise=tuple(unary),
                premise_checks=tuple(checks),
                check_conclusion=check_conclusion,
                estimated_candidates=_estimate(stats, pattern, variable, anchors, observed),
            )
        )
        bound = now_bound
    return tuple(steps)


def compile_plan(
    graph: Graph,
    rule: NGD,
    statistics: Optional[GraphStatistics] = None,
    observed: Optional[Mapping[tuple[str, str], float]] = None,
) -> MatchPlan:
    """Compile one NGD into a :class:`MatchPlan` against ``graph``'s statistics.

    ``observed`` optionally injects measured per-step candidate means (from
    a :class:`~repro.matching.adaptive.CardinalityHistory`) as priors over
    the statistical estimates.
    """
    stats = statistics if statistics is not None else GraphStatistics.from_graph(graph)
    order = _greedy_order(stats, rule.pattern, observed=observed)
    return MatchPlan(rule, stats, _steps_for_order(stats, rule, order, observed), observed)


def compile_plans(graph: Graph, rules, history=None, compiled=None) -> tuple[MatchPlan, ...]:
    """Compile every rule of an iterable/RuleSet, sharing one statistics pass.

    ``history`` is duck-typed: anything with ``priors_for(rule_name, stats)``
    returning an observed-cardinality mapping (or None) works — the adaptive
    module's :class:`~repro.matching.adaptive.CardinalityHistory` in practice.

    ``compiled`` (None: the ``REPRO_COMPILED_EVAL`` switch) also builds each
    plan's root :class:`CompiledSchedule` eagerly, so closure compilation is
    billed here — inside the session's ``detect.compile_plans`` span — rather
    than inside the first expansion of the search.
    """
    stats = GraphStatistics.from_graph(graph)
    plans = []
    for rule in rules:
        observed = history.priors_for(rule.name, stats) if history is not None else None
        plans.append(compile_plan(graph, rule, statistics=stats, observed=observed))
    if resolve_compiled(compiled):
        for plan in plans:
            plan.compiled_for(plan.order)
    return tuple(plans)


# ---------------------------------------------------------------- persistence


def plans_to_document(plans: Sequence[MatchPlan], history=None) -> dict:
    """Return the JSON document for a compiled plan set.

    Saved next to rule catalogs (``save_plans``) so worker processes and
    service restarts skip recompilation; also the wire form the process
    executor ships to ``spawn``-style workers.  ``history`` optionally
    embeds a cardinality-history document (anything with ``to_document()``,
    or a plain mapping) under the top-level ``"history"`` key; readers that
    predate it ignore the key.
    """
    document = {
        "format": "repro-match-plans",
        "plans": [plan.to_dict() for plan in plans],
    }
    if history is not None:
        document["history"] = (
            history.to_document() if hasattr(history, "to_document") else dict(history)
        )
    return document


def plans_from_document(document: Mapping, rules) -> tuple[MatchPlan, ...]:
    """Rebuild a plan set from :func:`plans_to_document` output.

    ``rules`` must carry the same rules, in the same order, as the set the
    document was compiled from (matched by rule name, checked per plan).
    """
    from repro.errors import SerializationError

    if not isinstance(document, Mapping) or document.get("format") != "repro-match-plans":
        raise SerializationError("not a match-plan document (missing repro-match-plans format tag)")
    entries = document.get("plans")
    rule_list = list(rules)
    if not isinstance(entries, list) or len(entries) != len(rule_list):
        raise SerializationError(
            f"plan document has {len(entries) if isinstance(entries, list) else '??'} plans "
            f"for {len(rule_list)} rules"
        )
    return tuple(
        MatchPlan.from_dict(entry, rule) for entry, rule in zip(entries, rule_list)
    )


def save_plans(plans: Sequence[MatchPlan], path, history=None) -> None:
    """Write a compiled plan set to ``path`` as JSON (next to its rule catalog)."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plans_to_document(plans, history=history), handle, indent=2, sort_keys=True)


def load_plans(path, rules) -> tuple[MatchPlan, ...]:
    """Load a plan set previously written by :func:`save_plans`."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return plans_from_document(json.load(handle), rules)


# ------------------------------------------------------------------- executor


def _literal_rules_out(
    graph: Graph,
    node_id: Hashable,
    variable: str,
    literal: Literal,
    stats: MatchStatistics,
) -> bool:
    """Return True when a unary premise literal rules the candidate out.

    ``literal.variables()`` is a memoised frozenset, and the assignment's
    keys are a subset of it by construction, so completeness is a length
    comparison — no per-candidate set rebuilds.
    """
    node = graph.node(node_id)
    pairs = literal.variables()
    assignment = {
        pair: node.attribute(pair[1]) for pair in pairs if node.has_attribute(pair[1])
    }
    stats.literal_evaluations += 1
    return len(assignment) != len(pairs) or not literal.holds_for(assignment)


def _unary_rejects(checks, attrs, stats: MatchStatistics) -> bool:
    """Run a step's compiled unary checks over one node's attribute mapping.

    Billing mirrors the interpreted ``any(_literal_rules_out(...))`` loop:
    one ``literal_evaluations`` per check reached, stop at the first
    rejection.
    """
    for check in checks:
        stats.literal_evaluations += 1
        if not check(attrs):
            return True
    return False


def step_candidates(
    graph: Graph,
    plan: MatchPlan,
    step: PlanStep,
    partial: Mapping[str, Hashable],
    stats: MatchStatistics,
    use_literal_pruning: bool = True,
    compiled_step: Optional[CompiledStep] = None,
) -> tuple[list[Hashable], int]:
    """Execute one step's candidate strategy.

    Returns ``(candidates, scanned)`` where ``candidates`` is rank-sorted and
    already label- and unary-literal-filtered, and ``scanned`` is the size of
    the index scan performed (the filtering cost the parallel cost model
    charges).  Billing: one ``candidates_examined`` per node drawn from the
    scanned index — identically for both strategies — plus one ``edge_checks``
    per adjacency membership probe of the anchored intersection.

    With a ``compiled_step`` the unary premise filter runs the compiled
    closures over the node's attribute mapping instead of building per-literal
    assignment dicts, and the anchored strategy intersects ``CsrStore`` rank
    slices by sorted merge (output already in rank order, so the final sort is
    skipped).  Verdicts and counter totals are identical on both paths.
    """
    pattern_node = plan.rule.pattern.node(step.variable)
    candidates: list[Hashable] = []
    presorted = False
    unary_checks = (
        compiled_step.unary_checks
        if compiled_step is not None and use_literal_pruning and compiled_step.unary_checks
        else None
    )

    if step.strategy == "anchored":
        views = [anchor.view(graph, partial[anchor.variable]) for anchor in step.anchors]
        base_index = min(range(len(views)), key=lambda i: len(views[i]))
        base = views[base_index]
        others = [view for i, view in enumerate(views) if i != base_index]
        scanned = len(base)
        merged = None
        if (
            compiled_step is not None
            and scanned
            and isinstance(base, _CsrNeighboursView)
            and all(isinstance(view, _CsrNeighboursView) for view in others)
        ):
            merged = csr_sorted_intersection(base, others)
        if merged is not None:
            # billing parity with the probe loop below: every base node is
            # examined once and charged one probe per other view, whether or
            # not the merge had to look at it
            presorted = True
            stats.candidates_examined += scanned
            if others:
                stats.edge_checks += scanned * len(others)
            for node_id in merged:
                node = graph.node(node_id)
                if not pattern_node.matches_label(node.label):
                    continue
                if unary_checks is not None and _unary_rejects(unary_checks, node.attributes, stats):
                    continue
                candidates.append(node_id)
        elif compiled_step is not None:
            for node_id in base:
                stats.candidates_examined += 1
                if others:
                    stats.edge_checks += len(others)
                    if not all(node_id in view for view in others):
                        continue
                node = graph.node(node_id)
                if not pattern_node.matches_label(node.label):
                    continue
                if unary_checks is not None and _unary_rejects(unary_checks, node.attributes, stats):
                    continue
                candidates.append(node_id)
        else:
            for node_id in base:
                stats.candidates_examined += 1
                if others:
                    stats.edge_checks += len(others)
                    if not all(node_id in view for view in others):
                        continue
                if not pattern_node.matches_label(graph.node(node_id).label):
                    continue
                if use_literal_pruning and any(
                    _literal_rules_out(graph, node_id, step.variable, plan.premise_literal(i), stats)
                    for i in step.unary_premise
                ):
                    continue
                candidates.append(node_id)
    else:
        bucket = graph.nodes_with_label(step.label)
        scanned = len(bucket)
        for node_id in bucket:
            stats.candidates_examined += 1
            if step.out_labels:
                available = graph.out_edge_labels(node_id)
                if not all(label in available for label in step.out_labels):
                    continue
            if step.in_labels:
                available = graph.in_edge_labels(node_id)
                if not all(label in available for label in step.in_labels):
                    continue
            if compiled_step is not None:
                if unary_checks is not None and _unary_rejects(
                    unary_checks, graph.node(node_id).attributes, stats
                ):
                    continue
            elif use_literal_pruning and any(
                _literal_rules_out(graph, node_id, step.variable, plan.premise_literal(i), stats)
                for i in step.unary_premise
            ):
                continue
            candidates.append(node_id)

    if not presorted:
        candidates.sort(key=graph.node_rank)
    if scanned and obs.enabled():
        # plain-dict accumulation: this is the match executor's hottest loop
        # and the registry flush happens once per run (flush_step_counts)
        key = f"{STEP_COUNT_PREFIX}{plan.rule.name}\x1f{step.variable}\x1f{step.strategy}"
        stats.extra[key] = stats.extra.get(key, 0) + scanned
    return candidates, scanned


# -------------------------------------------------------------- kernel helpers


def resolve_plans(
    graph: Graph, rule_list, plans, plans_file=None
) -> Optional[tuple["MatchPlan", ...]]:
    """Resolve the compiled plans a detection kernel should execute.

    ``plans`` passed by the session (cache hit) wins — an *empty* sequence
    is the explicit "planner off" marker (``DetectionOptions(use_planner=
    False)``) and resolves to the static pipeline.  ``plans_file`` names a
    persisted plan set (:func:`save_plans`) loaded instead of compiling —
    how service restarts and cold worker processes skip the statistics
    pass.  Otherwise plans are compiled here when the planner is enabled,
    and ``None`` (the static pre-plan pipeline) when
    ``REPRO_MATCH_PLANNER=off``.  Shared by all four kernels so the
    compatibility shims behave like the session.
    """
    if plans is not None:
        return tuple(plans) or None
    if not planner_enabled():
        return None
    if plans_file is not None:
        return load_plans(plans_file, rule_list)
    return compile_plans(graph, rule_list)


def first_step_candidates(
    graph: Graph,
    rule: NGD,
    plan: Optional["MatchPlan"],
    order: tuple[str, ...],
    use_literal_pruning: bool,
    stats: MatchStatistics,
    compiled: bool = False,
) -> tuple[list, float]:
    """Return the seed candidates of a rule plus the scan cost charged for them.

    The plan path executes the compiled first step (its scan size is the
    charge); the static path reproduces the original ``candidate_nodes``
    call charged at the label-index cardinality.  Used by the batch kernels
    (Dect / PDect) to seed their work-unit queues.
    """
    from repro.matching.candidates import candidate_nodes

    if plan is not None:
        compiled_step = plan.compiled_for(plan.order).steps[0] if compiled else None
        candidates, scanned = step_candidates(
            graph, plan, plan.steps[0], {}, stats, use_literal_pruning, compiled_step
        )
        return candidates, float(scanned)
    first = order[0]
    before = stats.candidates_examined
    candidates = candidate_nodes(
        graph,
        rule.pattern,
        first,
        premise=rule.premise if use_literal_pruning else None,
        use_literal_pruning=use_literal_pruning,
        stats=stats,
    )
    examined = stats.candidates_examined - before
    if examined and obs.enabled():
        key = f"{STEP_COUNT_PREFIX}{rule.name}\x1f{first}\x1fstatic"
        stats.extra[key] = stats.extra.get(key, 0) + examined
    return candidates, float(len(graph.nodes_with_label(rule.pattern.node(first).label)))


# ------------------------------------------------------------------ reporting


def format_plan(plan: MatchPlan) -> str:
    """Render a compiled plan for the terminal (``repro-detect explain``)."""
    lines = [f"{plan.rule.name}: order {' -> '.join(plan.order)}"]
    for depth, step in enumerate(plan.steps):
        if step.strategy == "anchored":
            via = ", ".join(
                f"{a.variable} -[{a.edge_label}]-> {step.variable}"
                if a.direction == "succ"
                else f"{step.variable} -[{a.edge_label}]-> {a.variable}"
                for a in step.anchors
            )
            strategy = f"anchored intersection ({via})"
        else:
            strategy = f"indexed scan of label {step.label!r}"
        origin = ""
        if plan.observed and (step.variable, step.strategy) in plan.observed:
            origin = " (observed prior)"
        lines.append(
            f"  [{depth}] {step.variable}: {strategy}, "
            f"~{step.estimated_candidates:.1f} candidates{origin}"
        )
        schedule_bits = []
        if step.unary_premise:
            schedule_bits.append(
                "premise "
                + "; ".join(str(plan.premise_literal(i)) for i in step.unary_premise)
                + " (during filtering)"
            )
        if step.premise_checks:
            schedule_bits.append(
                "premise "
                + "; ".join(str(plan.premise_literal(i)) for i in step.premise_checks)
                + " (on binding)"
            )
        if step.check_conclusion:
            schedule_bits.append("conclusion fully bound: prune satisfied branches")
        for bit in schedule_bits:
            lines.append(f"        literals: {bit}")
    return "\n".join(lines)
