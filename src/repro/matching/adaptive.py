"""Adaptive replanning: observe candidate cardinalities, re-order plan suffixes.

Compiled :class:`~repro.matching.plan.MatchPlan`\\ s pick their variable order
from *estimates* — label cardinalities and anchored co-occurrence fans.  Real
candidate sets can drift far from those estimates (correlated attributes,
selective premise literals the cost model cannot see).  This module closes
the loop at execution time:

* :class:`AdaptiveController` — one per plan per run — records the observed
  candidate count every time a plan step executes
  (:func:`~repro.matching.plan.step_candidates`).  Once a step has enough
  samples and its observed mean drifts past the threshold (a multiplicative
  ratio, default 2x either way), the controller re-orders the *unbound
  suffix* of the executing order via :meth:`MatchPlan.revised_order`,
  substituting observed means for the drifted estimates.  The bound prefix
  is untouched, so in-flight partial matches stay valid; suffix re-ordering
  never changes *which* matches an exhaustive search finds, only how many
  candidates it examines on the way.

* :class:`CardinalityHistory` — observed means folded across runs, keyed by
  ``(rule name, graph signature)``.  Persisted next to plan documents
  (``save_plans(..., history=...)``) and replayed into the next
  :func:`~repro.matching.plan.compile_plans` call as a prior, so a second
  run starts from what the first one measured.

Both layers are pure cost-model inputs: they affect candidate *order* and
operation counts, never the violation set.  The process-wide switch is
``REPRO_ADAPTIVE_REPLAN`` (default on, meaningful only while the planner
itself is active); ``REPRO_ADAPTIVE_DRIFT`` tunes the drift ratio.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.matching.plan import GraphStatistics, MatchPlan, PlanStep

__all__ = [
    "ADAPTIVE_ENV",
    "DRIFT_ENV",
    "MIN_SAMPLES",
    "adaptive_enabled",
    "drift_threshold",
    "AdaptiveController",
    "CardinalityHistory",
    "resolve_adaptive",
    "history_from_document",
]

#: Environment switch for adaptive replanning; any of ``off``/``0``/``false``/
#: ``no`` (case-insensitive) pins every run to its compiled static order.
ADAPTIVE_ENV = "REPRO_ADAPTIVE_REPLAN"

#: Multiplicative drift ratio: a step has drifted when ``observed mean /
#: estimate`` leaves ``[1/t, t]``.  Must be > 1.
DRIFT_ENV = "REPRO_ADAPTIVE_DRIFT"

#: Observations of one (variable, strategy) required before its mean is
#: trusted — keeps tiny graphs (and unit-test fixtures) on their static
#: plans, where replanning could never pay for itself anyway.
MIN_SAMPLES = 8

_DEFAULT_DRIFT = 2.0


def adaptive_enabled() -> bool:
    """Return True unless ``REPRO_ADAPTIVE_REPLAN`` disables replanning."""
    return os.environ.get(ADAPTIVE_ENV, "on").strip().lower() not in ("off", "0", "false", "no")


def drift_threshold() -> float:
    """Return the drift ratio (``REPRO_ADAPTIVE_DRIFT``, default 2.0)."""
    raw = os.environ.get(DRIFT_ENV)
    if raw is None:
        return _DEFAULT_DRIFT
    try:
        value = float(raw)
    except ValueError:
        return _DEFAULT_DRIFT
    return value if value > 1.0 else _DEFAULT_DRIFT


class AdaptiveController:
    """Per-plan, per-run observation and suffix-replanning state.

    Controllers are cheap and single-threaded by design: each executor
    (a serial kernel, or one worker process) builds its own for the run.
    ``observe`` is on the hot path — a dict update and one ratio compare.
    """

    __slots__ = ("plan", "threshold", "replans", "_samples", "_totals", "_estimates", "_drifted", "_revisions")

    def __init__(self, plan: "MatchPlan", threshold: Optional[float] = None) -> None:
        self.plan = plan
        self.threshold = threshold if threshold is not None else drift_threshold()
        self.replans = 0
        self._samples: dict[tuple[str, str], int] = {}
        self._totals: dict[tuple[str, str], float] = {}
        self._estimates: dict[tuple[str, str], float] = {}
        self._drifted: set[tuple[str, str]] = set()
        self._revisions: dict[tuple[tuple[str, ...], int], tuple[str, ...]] = {}

    # ------------------------------------------------------------ observation

    def observe(self, step: "PlanStep", count: int) -> None:
        """Record one executed step's observed candidate count."""
        key = (step.variable, step.strategy)
        samples = self._samples.get(key, 0) + 1
        self._samples[key] = samples
        total = self._totals.get(key, 0.0) + float(count)
        self._totals[key] = total
        if samples < MIN_SAMPLES:
            return
        self._estimates.setdefault(key, step.estimated_candidates)
        mean = total / samples
        estimate = max(self._estimates[key], 1.0)
        ratio = max(mean, 1.0) / estimate
        if ratio > self.threshold or ratio < 1.0 / self.threshold:
            self._drifted.add(key)
        else:
            self._drifted.discard(key)

    def mean(self, key: tuple[str, str]) -> Optional[float]:
        """Return the observed mean for ``(variable, strategy)``, if sampled."""
        samples = self._samples.get(key, 0)
        if samples == 0:
            return None
        return self._totals[key] / samples

    def observed_means(self) -> dict[tuple[str, str], float]:
        """Return every trusted mean (``>= MIN_SAMPLES`` observations)."""
        return {
            key: self._totals[key] / samples
            for key, samples in self._samples.items()
            if samples >= MIN_SAMPLES
        }

    # ------------------------------------------------------------- replanning

    def order_for(self, order: tuple[str, ...], depth: int) -> tuple[str, ...]:
        """Return the order a unit bound to ``depth`` variables should follow.

        Returns ``order`` unchanged until some unbound step has drifted;
        then the suffix is re-greedily ordered over the observed means
        (memoised per ``(order, depth)`` — the revision freezes the first
        time it is computed, so sibling units agree within a run).
        """
        if not self._drifted or len(order) - depth < 2:
            return order
        key = (order, depth)
        cached = self._revisions.get(key)
        if cached is not None:
            return cached
        schedule = self.plan.schedule_for(order)
        if not any(
            (step.variable, step.strategy) in self._drifted for step in schedule[depth:]
        ):
            return order
        blended: dict[tuple[str, str], float] = dict(self.plan.observed or {})
        blended.update(self.observed_means())
        revised = self.plan.revised_order(order, depth, blended)
        self._revisions[key] = revised
        if revised != order:
            self.replans += 1
        return revised

    # -------------------------------------------------------------- reporting

    def snapshot(self) -> dict[tuple[str, str], tuple[int, float]]:
        """Return ``{(variable, strategy): (samples, total)}`` for history folding."""
        return {
            key: (samples, self._totals[key]) for key, samples in self._samples.items()
        }


class CardinalityHistory:
    """Observed candidate cardinalities folded across runs.

    Entries are keyed by rule name and graph signature (node/edge counts):
    the same rule over a similar-sized graph very likely has similar true
    cardinalities, so :meth:`priors_for` serves the nearest signature within
    a relative window.  The JSON document form is embedded in plan documents
    under the top-level ``"history"`` key (:func:`~repro.matching.plan.
    plans_to_document`).
    """

    FORMAT = "repro-cardinality-history"

    #: A stored signature serves as prior only within this relative size
    #: window — statistics from a graph 10x larger would mislead more than
    #: the static model.
    SIGNATURE_TOLERANCE = 0.25

    def __init__(self) -> None:
        # {rule_name: {(node_count, edge_count): {(variable, strategy): [samples, total]}}}
        self._entries: dict[str, dict[tuple[int, int], dict[tuple[str, str], list]]] = {}

    def __bool__(self) -> bool:
        return bool(self._entries)

    @staticmethod
    def _signature(stats: "GraphStatistics") -> tuple[int, int]:
        return (stats.node_count, stats.edge_count)

    # ----------------------------------------------------------------- folding

    def fold(self, rule_name: str, stats: "GraphStatistics", snapshot: Mapping) -> None:
        """Merge one controller :meth:`~AdaptiveController.snapshot` into the history."""
        if not snapshot:
            return
        signature = self._signature(stats)
        steps = self._entries.setdefault(rule_name, {}).setdefault(signature, {})
        for key, (samples, total) in snapshot.items():
            cell = steps.setdefault(key, [0, 0.0])
            cell[0] += int(samples)
            cell[1] += float(total)

    def fold_controllers(self, controllers: Sequence[Optional[AdaptiveController]]) -> None:
        """Fold every controller of a finished run (None entries skipped)."""
        for controller in controllers:
            if controller is None:
                continue
            self.fold(
                controller.plan.rule.name,
                controller.plan.statistics,
                controller.snapshot(),
            )

    # ------------------------------------------------------------------ priors

    def priors_for(
        self, rule_name: str, stats: "GraphStatistics"
    ) -> Optional[dict[tuple[str, str], float]]:
        """Return observed-mean priors for compiling ``rule_name`` over ``stats``.

        Picks the recorded signature closest to the graph's (relative node
        then edge distance) within :attr:`SIGNATURE_TOLERANCE`; only steps
        with at least :data:`MIN_SAMPLES` observations contribute.
        """
        by_signature = self._entries.get(rule_name)
        if not by_signature:
            return None
        node_count, edge_count = self._signature(stats)

        def distance(signature: tuple[int, int]) -> tuple[float, float]:
            nodes, edges = signature
            return (
                abs(nodes - node_count) / max(node_count, 1),
                abs(edges - edge_count) / max(edge_count, 1),
            )

        best = min(sorted(by_signature), key=distance)
        node_distance, edge_distance = distance(best)
        if node_distance > self.SIGNATURE_TOLERANCE or edge_distance > self.SIGNATURE_TOLERANCE:
            return None
        priors = {
            key: total / samples
            for key, (samples, total) in by_signature[best].items()
            if samples >= MIN_SAMPLES
        }
        return priors or None

    # ------------------------------------------------------------- persistence

    def to_document(self) -> dict:
        """Return the JSON form embedded in plan documents."""
        rules = {}
        for rule_name, by_signature in sorted(self._entries.items()):
            entries = []
            for (nodes, edges), steps in sorted(by_signature.items()):
                entries.append(
                    {
                        "node_count": nodes,
                        "edge_count": edges,
                        "steps": [
                            [variable, strategy, samples, total]
                            for (variable, strategy), (samples, total) in sorted(steps.items())
                        ],
                    }
                )
            rules[rule_name] = entries
        return {"format": self.FORMAT, "rules": rules}

    @classmethod
    def from_document(cls, document: Mapping) -> "CardinalityHistory":
        """Rebuild a history from :meth:`to_document` output."""
        from repro.errors import SerializationError

        if not isinstance(document, Mapping) or document.get("format") != cls.FORMAT:
            raise SerializationError(
                "not a cardinality-history document (missing "
                f"{cls.FORMAT!r} format tag)"
            )
        history = cls()
        for rule_name, entries in document.get("rules", {}).items():
            by_signature = history._entries.setdefault(str(rule_name), {})
            for entry in entries:
                signature = (int(entry["node_count"]), int(entry["edge_count"]))
                steps = by_signature.setdefault(signature, {})
                for variable, strategy, samples, total in entry.get("steps", []):
                    steps[(str(variable), str(strategy))] = [int(samples), float(total)]
        return history

    def save(self, path) -> None:
        """Write the history to ``path`` as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path) -> "CardinalityHistory":
        """Load a history previously written by :meth:`save`."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_document(json.load(handle))


def history_from_document(document: Mapping) -> Optional[CardinalityHistory]:
    """Extract the embedded history of a plan document, if any.

    Lives here rather than in :mod:`repro.matching.plan` so the plan module
    never imports the adaptive layer.
    """
    embedded = document.get("history") if isinstance(document, Mapping) else None
    if embedded is None:
        return None
    return CardinalityHistory.from_document(embedded)


def resolve_adaptive(plans, adaptive=None) -> Optional[tuple[Optional[AdaptiveController], ...]]:
    """Resolve the adaptive controllers a detection kernel should drive.

    ``plans`` is the kernel's *resolved* plan sequence (may be None — the
    static pipeline never observes).  ``adaptive`` follows the session
    convention: ``None`` defers to :func:`adaptive_enabled`, a bool forces,
    and a prebuilt controller sequence (the session's, so it can harvest
    observations afterwards) passes through — its controllers must be
    parallel to ``plans``.
    """
    if not plans:
        return None
    if adaptive is None:
        adaptive = adaptive_enabled()
    if adaptive is False:
        return None
    if adaptive is True:
        return tuple(AdaptiveController(plan) for plan in plans)
    controllers = tuple(adaptive)
    if len(controllers) != len(tuple(plans)):
        from repro.errors import SessionError

        raise SessionError(
            f"{len(controllers)} adaptive controllers supplied for "
            f"{len(tuple(plans))} plans"
        )
    return controllers
