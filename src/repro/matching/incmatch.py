"""Update-driven incremental matching (``IncMatch`` / ``IncSubMatch``).

Section 6.2: instead of searching the whole graph, incremental detection
starts from *update pivots*.  For each unit update of edge ``(v, v')`` and
each pattern edge ``(u, u')`` with matching labels, the partial solution
``h(u) = v, h(u') = v'`` is an update pivot; expanding pivots (by the same
backtracking search as ``Matchn``, but restricted to the neighbourhood of the
pivot) yields exactly the matches that involve an updated edge:

* pivots triggered by **insertions** are expanded in ``G ⊕ ΔG`` and produce
  candidates for ``ΔVio⁺`` (newly introduced violations);
* pivots triggered by **deletions** are expanded in the *old* graph ``G`` and
  produce candidates for ``ΔVio⁻`` (violations destroyed by the update).

Matches that do not touch any updated edge are unaffected by ΔG (edge updates
never change node attributes), which is why pivot-driven search is complete.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.ngd import NGD
from repro.graph.graph import Graph
from repro.graph.pattern import PatternEdge
from repro.graph.updates import BatchUpdate
from repro.matching.candidates import MatchStatistics
from repro.matching.matchn import HomomorphismMatcher

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.matching.adaptive import AdaptiveController
    from repro.matching.plan import MatchPlan

__all__ = ["UpdatePivot", "find_update_pivots", "IncrementalMatcher"]


@dataclass(frozen=True)
class UpdatePivot:
    """An initial partial solution seeded by a unit update.

    ``pattern_edge`` is the pattern edge matched by the updated data edge;
    ``source_node`` / ``target_node`` are the data endpoints; ``from_insertion``
    records which side of ΔG triggered the pivot.
    """

    rule: str
    pattern_edge: PatternEdge
    source_node: Hashable
    target_node: Hashable
    from_insertion: bool

    def seed(self) -> dict[str, Hashable]:
        """Return the seed partial solution ``{u: v, u': v'}``."""
        return {self.pattern_edge.source: self.source_node, self.pattern_edge.target: self.target_node}


def find_update_pivots(
    rule: NGD,
    delta: BatchUpdate,
    graph_before: Graph,
    graph_after: Graph,
) -> list[UpdatePivot]:
    """Return every update pivot of ``rule`` triggered by ``delta``.

    Insertion pivots are label-checked against ``graph_after`` (the inserted
    endpoints may be brand-new nodes); deletion pivots against ``graph_before``.
    The endpoint labels of each updated edge are resolved once from the store
    and compared against every pattern edge, so the cost per unit update is
    O(|pattern edges|) with no repeated node lookups; pivot order follows the
    batch order of ΔG, which keeps incremental runs deterministic.
    """
    pivots: list[UpdatePivot] = []
    pattern = rule.pattern
    pattern_edges = pattern.edges()
    for update in delta:
        reference = graph_after if update.is_insertion else graph_before
        if not reference.has_node(update.source) or not reference.has_node(update.target):
            continue
        source_label = reference.node(update.source).label
        target_label = reference.node(update.target).label
        for pattern_edge in pattern_edges:
            if update.label != pattern_edge.label:
                continue
            if not pattern.node(pattern_edge.source).matches_label(source_label):
                continue
            if not pattern.node(pattern_edge.target).matches_label(target_label):
                continue
            pivots.append(
                UpdatePivot(
                    rule=rule.name,
                    pattern_edge=pattern_edge,
                    source_node=update.source,
                    target_node=update.target,
                    from_insertion=update.is_insertion,
                )
            )
    return pivots


class IncrementalMatcher:
    """Expands update pivots into update-driven violations for one NGD.

    ``plan`` optionally carries a compiled
    :class:`~repro.matching.plan.MatchPlan` shared by both directions: pivot
    seeds are expanded in the plan's cost-based order instead of the static
    connectivity order (the plan's seeded schedules put the pivot variables
    first, so the neighbourhood restriction of Section 6.2 is preserved).
    """

    def __init__(
        self,
        rule: NGD,
        graph_before: Graph,
        graph_after: Graph,
        use_literal_pruning: bool = True,
        stats: Optional[MatchStatistics] = None,
        plan: Optional["MatchPlan"] = None,
        adaptive: Optional["AdaptiveController"] = None,
        compiled: Optional[bool] = None,
    ) -> None:
        self.rule = rule
        self.graph_before = graph_before
        self.graph_after = graph_after
        self.use_literal_pruning = use_literal_pruning
        self.stats = stats if stats is not None else MatchStatistics()
        self.plan = plan
        self._matcher_after = HomomorphismMatcher(
            graph_after,
            rule.pattern,
            premise=rule.premise,
            conclusion=rule.conclusion,
            use_literal_pruning=use_literal_pruning,
            stats=self.stats,
            plan=plan,
            adaptive=adaptive,
            compiled=compiled,
        )
        self._matcher_before = HomomorphismMatcher(
            graph_before,
            rule.pattern,
            premise=rule.premise,
            conclusion=rule.conclusion,
            use_literal_pruning=use_literal_pruning,
            stats=self.stats,
            plan=plan,
            adaptive=adaptive,
            compiled=compiled,
        )

    def introduced_violations(self, pivot: UpdatePivot) -> Iterator[dict[str, Hashable]]:
        """Yield violating matches in ``G ⊕ ΔG`` that extend an insertion pivot."""
        if not pivot.from_insertion:
            return
        yield from self._matcher_after.violations(seed=pivot.seed())

    def removed_violations(self, pivot: UpdatePivot) -> Iterator[dict[str, Hashable]]:
        """Yield violating matches in the old graph ``G`` that extend a deletion pivot."""
        if pivot.from_insertion:
            return
        yield from self._matcher_before.violations(seed=pivot.seed())

    def violations_for_pivot(self, pivot: UpdatePivot) -> Iterator[dict[str, Hashable]]:
        """Dispatch on the pivot kind."""
        if pivot.from_insertion:
            yield from self.introduced_violations(pivot)
        else:
            yield from self.removed_violations(pivot)
