"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised close to
where the problem is detected; their messages carry enough context (node ids,
variable names, expression text) to diagnose problems without a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFound",
    "EdgeNotFound",
    "DuplicateNode",
    "AttributeMissing",
    "PatternError",
    "UpdateError",
    "PartitionError",
    "ExpressionError",
    "NonLinearExpressionError",
    "ParseError",
    "EvaluationError",
    "DependencyError",
    "ValidationError",
    "SatisfiabilityError",
    "DiscoveryError",
    "ExperimentError",
    "ClusterError",
    "ExecutionError",
    "WorkerPoolCollapse",
    "SessionError",
    "SerializationError",
    "ServiceError",
    "PoolSaturatedError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Problems with graph construction or manipulation."""


class NodeNotFound(GraphError, KeyError):
    """A node id was referenced but is not present in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} is not in the graph")
        self.node_id = node_id


class EdgeNotFound(GraphError, KeyError):
    """An edge was referenced but is not present in the graph."""

    def __init__(self, source: object, target: object, label: object = None) -> None:
        suffix = f" with label {label!r}" if label is not None else ""
        super().__init__(f"edge ({source!r} -> {target!r}){suffix} is not in the graph")
        self.source = source
        self.target = target
        self.label = label


class DuplicateNode(GraphError, ValueError):
    """A node id was added twice with conflicting data."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} already exists with different data")
        self.node_id = node_id


class AttributeMissing(GraphError, KeyError):
    """A node lacks an attribute required by a literal."""

    def __init__(self, node_id: object, attribute: str) -> None:
        super().__init__(f"node {node_id!r} has no attribute {attribute!r}")
        self.node_id = node_id
        self.attribute = attribute


class PatternError(ReproError):
    """Problems with graph-pattern construction (variables, labels, arity)."""


class UpdateError(ReproError):
    """A batch update cannot be applied to the graph it targets."""


class PartitionError(ReproError):
    """Graph fragmentation failed or was asked for an invalid layout."""


class ExpressionError(ReproError):
    """Problems constructing arithmetic expressions or literals."""


class NonLinearExpressionError(ExpressionError):
    """A linear expression was required but a non-linear one was supplied.

    The paper restricts NGDs to degree-1 (linear) expressions; this error marks
    the decidability boundary of Theorem 3.
    """


class ParseError(ExpressionError):
    """The textual form of an expression, literal or NGD could not be parsed."""

    def __init__(self, text: str, position: int, reason: str) -> None:
        super().__init__(f"parse error at position {position} in {text!r}: {reason}")
        self.text = text
        self.position = position
        self.reason = reason


class EvaluationError(ExpressionError):
    """An expression could not be evaluated against a match (e.g. missing attribute)."""


class DependencyError(ReproError):
    """Problems with NGD construction (mismatched pattern variables, etc.)."""


class ValidationError(ReproError):
    """Problems raised while checking a graph against a set of NGDs."""


class SatisfiabilityError(ReproError):
    """The satisfiability/implication checker was given input it cannot decide.

    Raised when the bounded model search would exceed the configured limits;
    the checker is exact for inputs within those limits (satisfiability of
    NGDs is Σp2-complete, so a resource bound is unavoidable).
    """


class DiscoveryError(ReproError):
    """Problems in the levelwise NGD discovery process."""


class ExperimentError(ReproError):
    """An experiment/benchmark configuration is invalid."""


class ClusterError(ReproError):
    """The simulated cluster was asked to do something inconsistent."""


class ExecutionError(ReproError):
    """The multi-process execution backend failed or was misconfigured.

    Raised for unknown execution modes / start methods and when a worker
    process dies or reports an exception; the message carries the worker's
    traceback text when one is available.
    """


class WorkerPoolCollapse(ExecutionError):
    """Every worker of a process pool is gone and the restart budget is spent.

    Carries the work units whose completion was never confirmed
    (``outstanding``: ``(shard_id, WorkUnit)`` pairs), so the kernel that
    drove the run can finish them on the serial path — graceful
    degradation instead of a failed run.  Only callers driving
    :func:`~repro.detect.parallel.executor.iter_process_execution`
    directly ever see this escape.
    """

    def __init__(self, message: str, outstanding=()) -> None:
        super().__init__(message)
        self.outstanding = list(outstanding)


class SessionError(ReproError):
    """A :class:`~repro.detect.session.Detector` session was misconfigured or misused.

    Raised for unknown engine names and for operations the configured engine
    cannot perform (e.g. a full ``run`` on ``engine="incremental"``).
    """


class SerializationError(ReproError):
    """A wire document (violation, violation set, delta) has the wrong shape.

    Raised by the ``to_dict``/``from_dict`` round-trip helpers in
    :mod:`repro.core.violations` and by the service protocol when a JSON
    payload cannot be decoded into the object it claims to describe.
    """


class ServiceError(ReproError):
    """A request to the detection service cannot be honoured.

    Raised for unknown graph/session/catalog names, duplicate registrations,
    and malformed request documents; the HTTP layer maps it to a 4xx response
    with the message in the JSON error body.
    """


class PoolSaturatedError(ServiceError):
    """The service's detection job pool has no free slot for a new stream.

    Admission control, not failure: the HTTP layer maps it to ``429 Too
    Many Requests`` with a JSON error record, and the client should retry
    after a backoff.  See :class:`repro.service.jobs.DetectionJobPool`.
    """


class DeadlineExceededError(ServiceError):
    """A detection request's ``timeout_seconds`` deadline elapsed.

    Raised while consuming a job stream: before the first record the HTTP
    layer maps it to ``503 Service Unavailable`` with a ``Retry-After``
    header; after streaming has begun it becomes a terminal in-band error
    record (the status line is already committed).
    """
