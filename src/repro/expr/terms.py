"""Terms of a graph pattern.

Section 3 of the paper: a *term* of ``Q[x̄]`` is either an integer constant
``c`` or an integer "variable" ``x.A`` where ``x ∈ x̄`` and ``A`` is an
attribute name.  Terms are the leaves of arithmetic expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Union

from repro.errors import ExpressionError

__all__ = ["Constant", "AttributeTerm", "Term", "as_term"]


@dataclass(frozen=True)
class Constant:
    """An integer (or real) constant term."""

    value: Real

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return the ``(variable, attribute)`` pairs referenced (none for constants)."""
        return frozenset()

    def degree(self) -> int:
        """Return the polynomial degree contributed by this term (0)."""
        return 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AttributeTerm:
    """A term ``x.A``: attribute ``A`` of the node matched by pattern variable ``x``."""

    variable: str
    attribute: str

    def __post_init__(self) -> None:
        if not self.variable or not self.attribute:
            raise ExpressionError("attribute terms need a variable and an attribute name")

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return the single ``(variable, attribute)`` pair this term references."""
        return frozenset({(self.variable, self.attribute)})

    def degree(self) -> int:
        """Return the polynomial degree contributed by this term (1)."""
        return 1

    def __str__(self) -> str:
        return f"{self.variable}.{self.attribute}"


Term = Union[Constant, AttributeTerm]


def as_term(value: object) -> Term:
    """Coerce ``value`` into a term.

    Accepts existing terms, numbers (→ :class:`Constant`), and strings of the
    form ``"x.A"`` (→ :class:`AttributeTerm`).
    """
    if isinstance(value, (Constant, AttributeTerm)):
        return value
    if isinstance(value, bool):
        raise ExpressionError("booleans are not valid terms")
    if isinstance(value, (int, float)):
        return Constant(value)
    if isinstance(value, str):
        if "." in value:
            variable, _, attribute = value.partition(".")
            if variable and attribute:
                return AttributeTerm(variable, attribute)
        raise ExpressionError(
            f"cannot interpret {value!r} as a term; expected 'variable.attribute'"
        )
    raise ExpressionError(f"cannot interpret {value!r} as a term")
