"""Comparison literals ``e1 ⊗ e2``.

A literal of a pattern ``Q[x̄]`` is ``e1 ⊗ e2`` where ``e1``, ``e2`` are
arithmetic expressions and ``⊗`` is one of the built-in comparison predicates
``=, ≠, <, ≤, >, ≥`` (paper, Section 3).  A match ``h(x̄)`` satisfies the
literal when (a) every referenced attribute exists on the matched node and
(b) the comparison holds under standard arithmetic semantics.

This module also provides :class:`LiteralSet` (a conjunction of literals, the
``X`` and ``Y`` of an NGD) and helpers to normalise literals into the
``Σ c_i·x_i ≤ b`` form the satisfiability checker feeds to the LP solver.
"""

from __future__ import annotations

import enum
import operator
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.errors import EvaluationError, ExpressionError
from repro.expr.expressions import Assignment, Expression, as_expression

__all__ = ["Comparison", "COMPARISON_OPS", "Literal", "LiteralSet", "LinearConstraint"]


class Comparison(enum.Enum):
    """The built-in comparison predicates of NGDs."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def negate(self) -> "Comparison":
        """Return the complementary predicate (used when searching for violations)."""
        complements = {
            Comparison.EQ: Comparison.NE,
            Comparison.NE: Comparison.EQ,
            Comparison.LT: Comparison.GE,
            Comparison.LE: Comparison.GT,
            Comparison.GT: Comparison.LE,
            Comparison.GE: Comparison.LT,
        }
        return complements[self]

    def flip(self) -> "Comparison":
        """Return the predicate with operands swapped (``a < b`` ⇔ ``b > a``)."""
        flips = {
            Comparison.EQ: Comparison.EQ,
            Comparison.NE: Comparison.NE,
            Comparison.LT: Comparison.GT,
            Comparison.LE: Comparison.GE,
            Comparison.GT: Comparison.LT,
            Comparison.GE: Comparison.LE,
        }
        return flips[self]

    def holds(self, left: object, right: object) -> bool:
        """Return the truth of ``left ⊗ right`` under standard semantics."""
        return COMPARISON_OPS[self](left, right)

    def is_equality_only(self) -> bool:
        """Return True for ``=``; the GFD fragment of NGDs uses only this predicate."""
        return self is Comparison.EQ

    @classmethod
    def from_symbol(cls, symbol: str) -> "Comparison":
        """Parse a predicate symbol (accepts ASCII and the Unicode variants ≠ ≤ ≥ ==)."""
        aliases = {
            "=": cls.EQ,
            "==": cls.EQ,
            "!=": cls.NE,
            "<>": cls.NE,
            "≠": cls.NE,
            "<": cls.LT,
            "<=": cls.LE,
            "≤": cls.LE,
            ">": cls.GT,
            ">=": cls.GE,
            "≥": cls.GE,
        }
        try:
            return aliases[symbol]
        except KeyError:
            raise ExpressionError(f"unknown comparison predicate {symbol!r}") from None


#: The comparison predicates as plain callables (``operator`` module
#: dispatch).  One table serves :meth:`Comparison.holds`, the LP
#: normalisation callers, and the compiled evaluator
#: (:mod:`repro.matching.compiled`), which specialises the looked-up
#: callable directly into its literal closures.
COMPARISON_OPS = {
    Comparison.EQ: operator.eq,
    Comparison.NE: operator.ne,
    Comparison.LT: operator.lt,
    Comparison.LE: operator.le,
    Comparison.GT: operator.gt,
    Comparison.GE: operator.ge,
}


@dataclass(frozen=True)
class LinearConstraint:
    """A literal normalised to ``Σ coefficients·vars (⊗) bound``.

    Used by the satisfiability/implication checkers: every linear literal
    without absolute values can be brought to this form with ``⊗`` one of
    ``<=``, ``<``, ``=`` or ``!=`` (``>=``/``>`` are flipped during
    normalisation).
    """

    coefficients: tuple[tuple[tuple[str, str], Fraction], ...]
    comparison: Comparison
    bound: Fraction

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return the ``(variable, attribute)`` pairs with non-zero coefficients."""
        return frozenset(key for key, value in self.coefficients if value != 0)


@dataclass(frozen=True)
class Literal:
    """A comparison literal ``left ⊗ right``."""

    left: Expression
    comparison: Comparison
    right: Expression

    @classmethod
    def build(cls, left: object, comparison: object, right: object) -> "Literal":
        """Construct a literal coercing operands to expressions and the predicate to a symbol."""
        predicate = comparison if isinstance(comparison, Comparison) else Comparison.from_symbol(str(comparison))
        return cls(as_expression(left), predicate, as_expression(right))

    # ------------------------------------------------------------- structure

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return all ``(variable, attribute)`` pairs referenced by either side.

        Memoised: the matchers consult this once per candidate in their
        innermost loops, and the expression trees are immutable.
        """
        cached = self.__dict__.get("_variables")
        if cached is None:
            cached = self.left.variables() | self.right.variables()
            object.__setattr__(self, "_variables", cached)
        return cached

    def pattern_variables(self) -> frozenset[str]:
        """Return the pattern variables referenced by either side (memoised)."""
        cached = self.__dict__.get("_pattern_variables")
        if cached is None:
            cached = self.left.pattern_variables() | self.right.pattern_variables()
            object.__setattr__(self, "_pattern_variables", cached)
        return cached

    def degree(self) -> int:
        """Return the maximum degree of the two sides."""
        return max(self.left.degree(), self.right.degree())

    def is_linear(self) -> bool:
        """Return True when both sides are linear (degree ≤ 1)."""
        return self.degree() <= 1

    def uses_absolute_value(self) -> bool:
        """Return True when either side contains ``|·|``."""
        return self.left.uses_absolute_value() or self.right.uses_absolute_value()

    def is_gfd_literal(self) -> bool:
        """Return True for literals in the GFD fragment: ``x.A = c`` or ``x.A = y.B``.

        GFDs are the special case of NGDs whose literals are bare terms
        connected by equality (paper, Section 3).
        """
        from repro.expr.expressions import TermExpression

        both_terms = isinstance(self.left, TermExpression) and isinstance(self.right, TermExpression)
        return both_terms and self.comparison is Comparison.EQ

    def negated(self) -> "Literal":
        """Return the literal with the complementary predicate."""
        return Literal(self.left, self.comparison.negate(), self.right)

    # ------------------------------------------------------------ evaluation

    def evaluate(self, assignment: Assignment) -> bool:
        """Return the truth of the literal under ``assignment``.

        Raises :class:`EvaluationError` when a referenced attribute has no
        value — matching code treats that as "the match does not satisfy the
        literal" per the paper's semantics (the node must carry the attribute).
        """
        left_value = self.left.evaluate(assignment)
        right_value = self.right.evaluate(assignment)
        return self.comparison.holds(left_value, right_value)

    def holds_for(self, assignment: Assignment) -> bool:
        """Like :meth:`evaluate` but returns False instead of raising on missing attributes.

        Type mismatches (e.g. ordering a string against an integer in dirty
        data) also count as "does not hold" rather than crashing detection.
        """
        try:
            return self.evaluate(assignment)
        except (EvaluationError, TypeError):
            return False

    # --------------------------------------------------------- normalisation

    def to_linear_constraint(self) -> LinearConstraint:
        """Return the ``Σ c_i·x_i ⊗ b`` normal form of this literal.

        Only defined for linear literals without absolute values; ``>=``/``>``
        are flipped to ``<=``/``<`` so downstream solvers deal with one
        direction only.
        """
        if not self.is_linear():
            raise ExpressionError(f"{self} is not linear")
        if self.uses_absolute_value():
            raise ExpressionError(f"{self} contains |·| and has no single linear form")
        left_coefficients, left_constant = self.left.linear_coefficients()
        right_coefficients, right_constant = self.right.linear_coefficients()
        coefficients: dict[tuple[str, str], Fraction] = dict(left_coefficients)
        for key, value in right_coefficients.items():
            coefficients[key] = coefficients.get(key, Fraction(0)) - value
        bound = right_constant - left_constant
        comparison = self.comparison
        if comparison in (Comparison.GT, Comparison.GE):
            coefficients = {key: -value for key, value in coefficients.items()}
            bound = -bound
            comparison = Comparison.LT if comparison is Comparison.GT else Comparison.LE
        ordered = tuple(sorted(coefficients.items(), key=lambda item: item[0]))
        return LinearConstraint(ordered, comparison, bound)

    def __str__(self) -> str:
        return f"{self.left} {self.comparison.value} {self.right}"


class LiteralSet:
    """A conjunction of literals: the ``X`` or ``Y`` of an NGD.

    An empty literal set is the trivially true condition (the paper writes it
    as ∅).
    """

    def __init__(self, literals: Iterable[Literal] = ()) -> None:
        self._literals: tuple[Literal, ...] = tuple(literals)
        self._variables: Optional[frozenset[tuple[str, str]]] = None
        self._pattern_variables: Optional[frozenset[str]] = None

    @classmethod
    def of(cls, *literals: Literal) -> "LiteralSet":
        """Build a literal set from positional literals."""
        return cls(literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __bool__(self) -> bool:
        return bool(self._literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LiteralSet):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return hash(self._literals)

    def literals(self) -> tuple[Literal, ...]:
        """Return the literals in declaration order."""
        return self._literals

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return all ``(variable, attribute)`` pairs referenced by any literal (memoised)."""
        if self._variables is None:
            result: frozenset[tuple[str, str]] = frozenset()
            for literal in self._literals:
                result |= literal.variables()
            self._variables = result
        return self._variables

    def pattern_variables(self) -> frozenset[str]:
        """Return all pattern variables referenced by any literal (memoised)."""
        if self._pattern_variables is None:
            result: frozenset[str] = frozenset()
            for literal in self._literals:
                result |= literal.pattern_variables()
            self._pattern_variables = result
        return self._pattern_variables

    def degree(self) -> int:
        """Return the maximum degree over the literals (0 for an empty set)."""
        return max((literal.degree() for literal in self._literals), default=0)

    def is_linear(self) -> bool:
        """Return True when every literal is linear."""
        return all(literal.is_linear() for literal in self._literals)

    def satisfied_by(self, assignment: Assignment) -> bool:
        """Return True when every literal holds under ``assignment``.

        Missing attributes make the corresponding literal (and hence the set)
        unsatisfied, matching the paper's "node must carry attribute A" rule.
        """
        return all(literal.holds_for(assignment) for literal in self._literals)

    def add(self, literal: Literal) -> "LiteralSet":
        """Return a new set with ``literal`` appended."""
        return LiteralSet(self._literals + (literal,))

    def restricted_to(self, variables: frozenset[str]) -> "LiteralSet":
        """Return the literals that only mention ``variables`` (used for early pruning)."""
        return LiteralSet(
            literal for literal in self._literals if literal.pattern_variables() <= variables
        )

    def __str__(self) -> str:
        if not self._literals:
            return "∅"
        return " ∧ ".join(str(literal) for literal in self._literals)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LiteralSet({list(map(str, self._literals))})"
