"""Render expressions and literals back into the parser's textual notation.

The inverse of :mod:`repro.expr.parser`: ``parse_literal(format_literal(l))``
rebuilds a structurally identical literal for every AST the parser can
produce.  Binary operators are always parenthesised and unary minus is
rendered as ``(-e)``, so operator precedence never has to be reconstructed;
string constants are double-quoted with backslash escaping (the parser
accepts the same quoting).

Two corner cases cannot round-trip structurally and raise
:class:`~repro.errors.ExpressionError` instead of silently drifting:

* constants whose textual form the tokenizer cannot read back (e.g.
  ``1e-07`` scientific notation, :class:`~fractions.Fraction` values);
* identifiers that are not ``[A-Za-z_][A-Za-z0-9_]*`` (never produced by the
  parser, but constructible programmatically).

Negative numeric constants are rendered as ``-c`` and re-parse as
``Negate(Constant(c))`` — semantically equal, and the only representation
the grammar has for them.
"""

from __future__ import annotations

import re

from repro.errors import ExpressionError
from repro.expr.expressions import (
    AbsoluteValue,
    Add,
    Divide,
    Expression,
    Multiply,
    Negate,
    Subtract,
    TermExpression,
)
from repro.expr.literals import Literal, LiteralSet
from repro.expr.terms import AttributeTerm, Constant

__all__ = ["format_expression", "format_literal", "format_literal_set"]

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_NUMBER = re.compile(r"-?\d+(?:\.\d+)?\Z")


def _format_constant(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        raise ExpressionError("boolean constants have no textual form")
    if isinstance(value, (int, float)):
        text = repr(value)
        if not _NUMBER.match(text):
            raise ExpressionError(
                f"constant {value!r} has no parseable textual form ({text!r})"
            )
        return text
    raise ExpressionError(f"constant {value!r} has no textual form")


def _format_term_expression(expression: TermExpression) -> str:
    term = expression.term
    if isinstance(term, Constant):
        return _format_constant(term.value)
    if isinstance(term, AttributeTerm):
        for part in (term.variable, term.attribute):
            if not _IDENT.match(part):
                raise ExpressionError(
                    f"identifier {part!r} in term {term} is not parseable "
                    "(expected [A-Za-z_][A-Za-z0-9_]*)"
                )
        return f"{term.variable}.{term.attribute}"
    raise ExpressionError(f"unknown term type {type(term).__name__}")


_BINARY_SYMBOLS = {Add: "+", Subtract: "-", Multiply: "*", Divide: "/"}


def format_expression(expression: Expression) -> str:
    """Return a textual form of ``expression`` that re-parses to the same AST."""
    if isinstance(expression, TermExpression):
        return _format_term_expression(expression)
    if isinstance(expression, Negate):
        return f"(-{format_expression(expression.operand)})"
    if isinstance(expression, AbsoluteValue):
        return f"|{format_expression(expression.operand)}|"
    for kind, symbol in _BINARY_SYMBOLS.items():
        if isinstance(expression, kind):
            left = format_expression(expression.left)
            right = format_expression(expression.right)
            return f"({left} {symbol} {right})"
    raise ExpressionError(f"unknown expression type {type(expression).__name__}")


def format_literal(literal: Literal) -> str:
    """Return the textual form ``left ⊗ right`` of a comparison literal."""
    return (
        f"{format_expression(literal.left)} {literal.comparison.value} "
        f"{format_expression(literal.right)}"
    )


def format_literal_set(literals: LiteralSet) -> str:
    """Return the comma-separated form of a conjunction (``""`` for the empty set)."""
    return ", ".join(format_literal(literal) for literal in literals)
