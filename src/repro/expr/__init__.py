"""Arithmetic expressions, comparison literals, and their textual notation."""

from repro.expr.expressions import (
    AbsoluteValue,
    Add,
    Assignment,
    Divide,
    Expression,
    Multiply,
    Negate,
    Subtract,
    TermExpression,
    as_expression,
    const,
    var,
)
from repro.expr.format import format_expression, format_literal, format_literal_set
from repro.expr.literals import Comparison, LinearConstraint, Literal, LiteralSet
from repro.expr.parser import parse_expression, parse_literal, parse_literal_set
from repro.expr.terms import AttributeTerm, Constant, Term, as_term

__all__ = [
    "AbsoluteValue",
    "Add",
    "Assignment",
    "AttributeTerm",
    "Comparison",
    "Constant",
    "Divide",
    "Expression",
    "LinearConstraint",
    "Literal",
    "LiteralSet",
    "Multiply",
    "Negate",
    "Subtract",
    "Term",
    "TermExpression",
    "as_expression",
    "as_term",
    "const",
    "format_expression",
    "format_literal",
    "format_literal_set",
    "parse_expression",
    "parse_literal",
    "parse_literal_set",
    "var",
]
