"""Arithmetic expressions over pattern variables.

The paper defines linear arithmetic expressions of a pattern ``Q[x̄]``::

    e ::= t | |e| | e + e | e - e | c × e | e ÷ c

where ``t`` is a term and ``c`` an integer constant.  The *degree* of an
expression is the sum of the exponents of its variables; NGDs require degree
at most 1 (linear).  Theorem 3 shows that allowing the general products
``e × e`` and quotients ``e ÷ e`` (degree ≥ 2) makes satisfiability and
implication undecidable, so the library keeps both:

* :class:`Expression` subclasses cover the *general* grammar;
* :meth:`Expression.degree` / :meth:`Expression.is_linear` report where an
  expression falls;
* NGD construction (``repro.core.ngd``) rejects non-linear expressions unless
  the caller explicitly opts into the extended (undecidable) class.

Evaluation is exact: integer arithmetic stays in ``int`` and division produces
:class:`fractions.Fraction`, so equality literals never suffer float rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from numbers import Real
from typing import Mapping, Union

from repro.errors import EvaluationError, ExpressionError
from repro.expr.terms import AttributeTerm, Constant, Term, as_term

__all__ = [
    "Expression",
    "TermExpression",
    "Add",
    "Subtract",
    "Multiply",
    "Divide",
    "AbsoluteValue",
    "Negate",
    "as_expression",
    "Assignment",
]

#: An assignment maps ``(variable, attribute)`` pairs to numeric values.
Assignment = Mapping[tuple[str, str], Real]


class Expression:
    """Base class of all arithmetic expressions."""

    def variables(self) -> frozenset[tuple[str, str]]:
        """Return every ``(variable, attribute)`` pair the expression references."""
        raise NotImplementedError

    def pattern_variables(self) -> frozenset[str]:
        """Return the pattern variables (without attributes) the expression references."""
        return frozenset(variable for variable, _ in self.variables())

    def degree(self) -> int:
        """Return the polynomial degree of the expression."""
        raise NotImplementedError

    def is_linear(self) -> bool:
        """Return True when the expression has degree at most 1."""
        return self.degree() <= 1

    def evaluate(self, assignment: Assignment) -> Real:
        """Evaluate the expression under ``assignment``.

        Raises :class:`EvaluationError` when a referenced attribute is missing
        from the assignment or a division by zero occurs.
        """
        raise NotImplementedError

    def uses_absolute_value(self) -> bool:
        """Return True when the expression contains the ``|·|`` operator."""
        return False

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        """Return ``(coefficients, constant)`` such that e = Σ c_i·x_i.A_i + constant.

        Only defined for linear expressions without absolute values; used by
        the satisfiability checker to hand constraints to the LP solver.
        Raises :class:`ExpressionError` otherwise.
        """
        raise NotImplementedError

    # ----------------------------------------------------------- operators

    def __add__(self, other: object) -> "Add":
        return Add(self, as_expression(other))

    def __radd__(self, other: object) -> "Add":
        return Add(as_expression(other), self)

    def __sub__(self, other: object) -> "Subtract":
        return Subtract(self, as_expression(other))

    def __rsub__(self, other: object) -> "Subtract":
        return Subtract(as_expression(other), self)

    def __mul__(self, other: object) -> "Multiply":
        return Multiply(self, as_expression(other))

    def __rmul__(self, other: object) -> "Multiply":
        return Multiply(as_expression(other), self)

    def __truediv__(self, other: object) -> "Divide":
        return Divide(self, as_expression(other))

    def __neg__(self) -> "Negate":
        return Negate(self)

    def __abs__(self) -> "AbsoluteValue":
        return AbsoluteValue(self)


@dataclass(frozen=True)
class TermExpression(Expression):
    """An expression consisting of a single term (constant or ``x.A``)."""

    term: Term

    def variables(self) -> frozenset[tuple[str, str]]:
        return self.term.variables()

    def degree(self) -> int:
        return self.term.degree()

    def evaluate(self, assignment: Assignment) -> Real:
        if isinstance(self.term, Constant):
            return self.term.value
        key = (self.term.variable, self.term.attribute)
        if key not in assignment:
            raise EvaluationError(f"no value for {self.term} in the assignment")
        return assignment[key]

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        if isinstance(self.term, Constant):
            return {}, Fraction(self.term.value)
        return {(self.term.variable, self.term.attribute): Fraction(1)}, Fraction(0)

    def __str__(self) -> str:
        return str(self.term)


@dataclass(frozen=True)
class _Binary(Expression):
    """Common storage for binary arithmetic operators."""

    left: Expression
    right: Expression

    def variables(self) -> frozenset[tuple[str, str]]:
        return self.left.variables() | self.right.variables()

    def uses_absolute_value(self) -> bool:
        return self.left.uses_absolute_value() or self.right.uses_absolute_value()


class Add(_Binary):
    """``left + right``."""

    def degree(self) -> int:
        return max(self.left.degree(), self.right.degree())

    def evaluate(self, assignment: Assignment) -> Real:
        return self.left.evaluate(assignment) + self.right.evaluate(assignment)

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        return _combine_linear(self.left, self.right, sign=Fraction(1))

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


class Subtract(_Binary):
    """``left - right``."""

    def degree(self) -> int:
        return max(self.left.degree(), self.right.degree())

    def evaluate(self, assignment: Assignment) -> Real:
        return self.left.evaluate(assignment) - self.right.evaluate(assignment)

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        return _combine_linear(self.left, self.right, sign=Fraction(-1))

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


class Multiply(_Binary):
    """``left × right``.

    Linear only when at least one side is a constant expression (degree 0);
    the general product pushes the expression into the non-linear class.
    """

    def degree(self) -> int:
        return self.left.degree() + self.right.degree()

    def evaluate(self, assignment: Assignment) -> Real:
        return self.left.evaluate(assignment) * self.right.evaluate(assignment)

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        left_degree = self.left.degree()
        right_degree = self.right.degree()
        if left_degree > 0 and right_degree > 0:
            raise ExpressionError(f"{self} is not linear; cannot extract coefficients")
        if self.uses_absolute_value():
            raise ExpressionError(f"{self} contains |·|; coefficients are not defined")
        if left_degree == 0:
            scalar = Fraction(self.left.evaluate({}))
            coefficients, constant = self.right.linear_coefficients()
        else:
            scalar = Fraction(self.right.evaluate({}))
            coefficients, constant = self.left.linear_coefficients()
        return {key: value * scalar for key, value in coefficients.items()}, constant * scalar

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


class Divide(_Binary):
    """``left ÷ right``.

    Linear only when the divisor is a constant expression; division by a
    variable expression has degree ``left.degree() + right.degree()`` by
    convention (it is certainly not linear), mirroring the paper's grammar
    where only ``e ÷ c`` is allowed in the linear fragment.
    """

    def degree(self) -> int:
        if self.right.degree() == 0:
            return self.left.degree()
        return self.left.degree() + self.right.degree()

    def evaluate(self, assignment: Assignment) -> Real:
        numerator = self.left.evaluate(assignment)
        denominator = self.right.evaluate(assignment)
        if denominator == 0:
            raise EvaluationError(f"division by zero while evaluating {self}")
        return Fraction(numerator) / Fraction(denominator)

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        if self.right.degree() != 0:
            raise ExpressionError(f"{self} is not linear; cannot extract coefficients")
        if self.uses_absolute_value():
            raise ExpressionError(f"{self} contains |·|; coefficients are not defined")
        divisor = Fraction(self.right.evaluate({}))
        if divisor == 0:
            raise ExpressionError(f"{self} divides by the constant zero")
        coefficients, constant = self.left.linear_coefficients()
        return {key: value / divisor for key, value in coefficients.items()}, constant / divisor

    def __str__(self) -> str:
        return f"({self.left} / {self.right})"


@dataclass(frozen=True)
class AbsoluteValue(Expression):
    """``|operand|`` — allowed in the linear fragment (degree unchanged)."""

    operand: Expression

    def variables(self) -> frozenset[tuple[str, str]]:
        return self.operand.variables()

    def degree(self) -> int:
        return self.operand.degree()

    def evaluate(self, assignment: Assignment) -> Real:
        return abs(self.operand.evaluate(assignment))

    def uses_absolute_value(self) -> bool:
        return True

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        raise ExpressionError(f"{self} contains |·|; coefficients are not defined")

    def __str__(self) -> str:
        return f"|{self.operand}|"


@dataclass(frozen=True)
class Negate(Expression):
    """``-operand`` (sugar for ``0 - operand``; kept as a node for readable output)."""

    operand: Expression

    def variables(self) -> frozenset[tuple[str, str]]:
        return self.operand.variables()

    def degree(self) -> int:
        return self.operand.degree()

    def evaluate(self, assignment: Assignment) -> Real:
        return -self.operand.evaluate(assignment)

    def uses_absolute_value(self) -> bool:
        return self.operand.uses_absolute_value()

    def linear_coefficients(self) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
        coefficients, constant = self.operand.linear_coefficients()
        return {key: -value for key, value in coefficients.items()}, -constant

    def __str__(self) -> str:
        return f"(-{self.operand})"


def _combine_linear(
    left: Expression, right: Expression, sign: Fraction
) -> tuple[dict[tuple[str, str], Fraction], Fraction]:
    """Combine linear coefficient maps of ``left`` and ``sign * right``."""
    if left.uses_absolute_value() or right.uses_absolute_value():
        raise ExpressionError("expressions containing |·| have no coefficient form")
    left_coefficients, left_constant = left.linear_coefficients()
    right_coefficients, right_constant = right.linear_coefficients()
    combined = dict(left_coefficients)
    for key, value in right_coefficients.items():
        combined[key] = combined.get(key, Fraction(0)) + sign * value
    return combined, left_constant + sign * right_constant


def as_expression(value: object) -> Expression:
    """Coerce ``value`` into an :class:`Expression`.

    Accepts expressions, terms, numbers, and ``"x.A"`` strings.
    """
    if isinstance(value, Expression):
        return value
    if isinstance(value, (Constant, AttributeTerm)):
        return TermExpression(value)
    return TermExpression(as_term(value))


# Convenience constructors mirroring the paper's notation -----------------


def var(variable: str, attribute: str = "val") -> TermExpression:
    """Return the expression ``variable.attribute`` (defaults to the ``val`` attribute)."""
    return TermExpression(AttributeTerm(variable, attribute))


def const(value: Real) -> TermExpression:
    """Return the constant expression ``value``."""
    return TermExpression(Constant(value))


__all__ += ["var", "const"]
