"""A small recursive-descent parser for expressions, literals and literal sets.

The examples, rule files and tests write conditions in a compact textual
notation close to the paper::

    parse_expression("a * (x.follower - y.follower) + 5")
    parse_literal("z.val - y.val >= 100")
    parse_literal_set("s1.val = 1, m1.val - m2.val > 500")

Grammar (whitespace-insensitive)::

    literal_set := literal ("," literal)* | "" | "∅"
    literal     := expr CMP expr
    CMP         := "=" | "==" | "!=" | "<>" | "≠" | "<=" | "≤" | ">=" | "≥" | "<" | ">"
    expr        := term (("+" | "-") term)*
    term        := unary (("*" | "/") unary)*
    unary       := "-" unary | primary
    primary     := NUMBER | STRING | IDENT "." IDENT | "(" expr ")" | "|" expr "|"

Identifiers are ``[A-Za-z_][A-Za-z0-9_]*``; numbers are integers or decimals;
strings are double-quoted with backslash escaping (``"living people"``,
``"he said \\"hi\\""``) and become string *constants* — used by rules that
compare categorical attributes, e.g. ``z.val != "living people"`` (NGD1).
The parser builds the general (possibly non-linear) expression classes;
linearity is enforced later, at NGD construction time.

:mod:`repro.expr.format` is the inverse: it renders these ASTs back to text
that re-parses structurally unchanged, which is what rule-set serialization
(:meth:`repro.core.ngd.RuleSet.to_json`) round-trips through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.expr.expressions import (
    AbsoluteValue,
    Add,
    Divide,
    Expression,
    Multiply,
    Negate,
    Subtract,
    const,
    var,
)
from repro.expr.literals import Comparison, Literal, LiteralSet

__all__ = ["parse_expression", "parse_literal", "parse_literal_set"]


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<cmp><=|>=|==|!=|<>|≤|≥|≠|=|<|>)
  | (?P<op>[+\-*/().|,])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)

_ESCAPE_PATTERN = re.compile(r"\\(.)")


def _unquote(text: str) -> str:
    """Strip the quotes of a STRING token and resolve backslash escapes."""
    return _ESCAPE_PATTERN.sub(r"\1", text[1:-1])


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(text, position, f"unexpected character {text[position]!r}")
        kind = match.lastgroup or ""
        if kind != "space":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------- utilities

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(self.text, len(self.text), "unexpected end of input")
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._advance()
        if token.text != text:
            raise ParseError(self.text, token.position, f"expected {text!r}, found {token.text!r}")
        return token

    def _at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # --------------------------------------------------------------- grammar

    def parse_expression(self) -> Expression:
        """expr := term (("+" | "-") term)*"""
        node = self.parse_term()
        while not self._at_end() and self._peek().text in ("+", "-"):
            operator = self._advance().text
            right = self.parse_term()
            node = Add(node, right) if operator == "+" else Subtract(node, right)
        return node

    def parse_term(self) -> Expression:
        """term := unary (("*" | "/") unary)*"""
        node = self.parse_unary()
        while not self._at_end() and self._peek().text in ("*", "/"):
            operator = self._advance().text
            right = self.parse_unary()
            node = Multiply(node, right) if operator == "*" else Divide(node, right)
        return node

    def parse_unary(self) -> Expression:
        """unary := "-" unary | primary"""
        token = self._peek()
        if token is not None and token.text == "-":
            self._advance()
            return Negate(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        """primary := NUMBER | STRING | IDENT "." IDENT | "(" expr ")" | "|" expr "|" """
        token = self._advance()
        if token.kind == "number":
            text = token.text
            value = float(text) if "." in text else int(text)
            return const(value)
        if token.kind == "string":
            return const(_unquote(token.text))
        if token.kind == "ident":
            dot = self._peek()
            if dot is None or dot.text != ".":
                raise ParseError(
                    self.text,
                    token.position,
                    f"bare identifier {token.text!r}; terms must be written as 'variable.attribute'",
                )
            self._advance()
            attribute = self._advance()
            if attribute.kind != "ident":
                raise ParseError(self.text, attribute.position, "expected an attribute name after '.'")
            return var(token.text, attribute.text)
        if token.text == "(":
            node = self.parse_expression()
            self._expect(")")
            return node
        if token.text == "|":
            node = self.parse_expression()
            self._expect("|")
            return AbsoluteValue(node)
        raise ParseError(self.text, token.position, f"unexpected token {token.text!r}")

    def parse_literal(self) -> Literal:
        """literal := expr CMP expr"""
        left = self.parse_expression()
        token = self._advance()
        if token.kind != "cmp":
            raise ParseError(self.text, token.position, f"expected a comparison, found {token.text!r}")
        comparison = Comparison.from_symbol(token.text)
        right = self.parse_expression()
        return Literal(left, comparison, right)

    def parse_literal_set(self) -> LiteralSet:
        """literal_set := literal ("," literal)*"""
        literals = [self.parse_literal()]
        while not self._at_end() and self._peek().text == ",":
            self._advance()
            literals.append(self.parse_literal())
        return LiteralSet(literals)


def parse_expression(text: str) -> Expression:
    """Parse an arithmetic expression; raises :class:`ParseError` on bad input."""
    parser = _Parser(text)
    node = parser.parse_expression()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(text, token.position, f"trailing input starting at {token.text!r}")
    return node


def parse_literal(text: str) -> Literal:
    """Parse a comparison literal such as ``"x.val + 3 <= y.val"``."""
    parser = _Parser(text)
    literal = parser.parse_literal()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(text, token.position, f"trailing input starting at {token.text!r}")
    return literal


def parse_literal_set(text: str) -> LiteralSet:
    """Parse a comma-separated conjunction of literals; ``""`` and ``"∅"`` mean the empty set."""
    stripped = text.strip()
    if not stripped or stripped == "∅":
        return LiteralSet()
    parser = _Parser(stripped)
    literal_set = parser.parse_literal_set()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(text, token.position, f"trailing input starting at {token.text!r}")
    return literal_set
