"""Aggregation extension of NGDs (the paper's second future-work topic, Section 8).

Plain NGDs deliberately exclude aggregation to keep the static analyses in
Σp2 (Section 1, related work).  Detection, however, does not get harder: an
aggregate over the neighbours of a matched node is computed per match in time
linear in the node's degree.  This module adds that extension for the
*detection* side only:

* :class:`AggregateTerm` — ``AGG(y.attr for x -edge_label-> y)`` where ``AGG``
  is one of count, sum, min, max, avg and ``x`` a pattern variable;
* :class:`AggregateLiteral` — ``aggregate ⊗ expression`` with the usual
  comparison predicates; the right-hand side is an ordinary (linear)
  arithmetic expression over the pattern's variables;
* :class:`AggregateRule` — ``Q[x̄](X → Y_agg)``: an ordinary premise plus a
  conjunction of aggregate literals as the conclusion;
* :func:`find_aggregate_violations` — detection of the matches whose
  aggregates fail.

The satisfiability/implication checkers intentionally do not accept these
rules; their static analyses are open problems (cf. the constraints of [25]
discussed in the paper's related work).

Example — "the recorded total population of a region equals the sum of the
populations of its districts"::

    rule = AggregateRule(
        pattern,                                  # z: region with attribute totalPop
        premise=LiteralSet(),
        conclusion=[
            AggregateLiteral(
                AggregateTerm("sum", "z", "hasDistrict", "population"),
                Comparison.EQ,
                var("z", "totalPop"),
            )
        ],
        name="district_sum",
    )
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.ngd import RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.errors import DependencyError, EvaluationError
from repro.expr.expressions import Expression, as_expression
from repro.expr.literals import Comparison, LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.matching.matchn import HomomorphismMatcher, assignment_for_match

__all__ = ["AggregateTerm", "AggregateLiteral", "AggregateRule", "find_aggregate_violations"]

#: Supported aggregation functions.
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateTerm:
    """``function(y.attribute for h(variable) -edge_label-> y)`` over a match's neighbourhood.

    ``count`` ignores ``attribute`` (it counts the matching out-edges);
    every other function skips neighbours that lack the attribute or carry a
    non-numeric value.
    """

    function: str
    variable: str
    edge_label: str
    attribute: str = "val"

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise DependencyError(
                f"unknown aggregate function {self.function!r}; expected one of {AGGREGATE_FUNCTIONS}"
            )

    def evaluate(self, graph: Graph, node_id: Hashable) -> Fraction:
        """Evaluate the aggregate at a concrete data node.

        Raises :class:`EvaluationError` when the aggregate is undefined
        (min/max/avg over an empty neighbourhood).
        """
        values: list[Fraction] = []
        matched_edges = 0
        for target, label in graph.successors(node_id):
            if label != self.edge_label:
                continue
            matched_edges += 1
            value = graph.node(target).attribute(self.attribute)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            values.append(Fraction(value))
        if self.function == "count":
            return Fraction(matched_edges)
        if self.function == "sum":
            return sum(values, Fraction(0))
        if not values:
            raise EvaluationError(f"{self} is undefined: no numeric {self.attribute!r} neighbours")
        if self.function == "min":
            return min(values)
        if self.function == "max":
            return max(values)
        return sum(values, Fraction(0)) / len(values)

    def __str__(self) -> str:
        return f"{self.function}({self.variable} -[{self.edge_label}]-> .{self.attribute})"


@dataclass(frozen=True)
class AggregateLiteral:
    """``aggregate ⊗ expression`` — the aggregate on the left, a linear expression on the right."""

    aggregate: AggregateTerm
    comparison: Comparison
    right: Expression

    @classmethod
    def build(cls, aggregate: AggregateTerm, comparison: object, right: object) -> "AggregateLiteral":
        predicate = comparison if isinstance(comparison, Comparison) else Comparison.from_symbol(str(comparison))
        return cls(aggregate, predicate, as_expression(right))

    def holds_for(self, graph: Graph, match: Mapping[str, Hashable]) -> bool:
        """Return the truth of the literal for one match (False on undefined aggregates)."""
        node_id = match.get(self.aggregate.variable)
        if node_id is None or not graph.has_node(node_id):
            return False
        try:
            left_value = self.aggregate.evaluate(graph, node_id)
            assignment = assignment_for_match(graph, match, self.right.variables())
            right_value = self.right.evaluate(assignment)
        except (EvaluationError, TypeError):
            return False
        return self.comparison.holds(left_value, Fraction(right_value))

    def pattern_variables(self) -> frozenset[str]:
        """Return the pattern variables mentioned on either side."""
        return frozenset({self.aggregate.variable}) | self.right.pattern_variables()

    def __str__(self) -> str:
        return f"{self.aggregate} {self.comparison.value} {self.right}"


class AggregateRule:
    """``Q[x̄](X → Y_agg)``: an ordinary premise and aggregate conclusions."""

    def __init__(
        self,
        pattern: Pattern,
        premise: LiteralSet | Iterable = (),
        conclusion: Iterable[AggregateLiteral] = (),
        name: Optional[str] = None,
    ) -> None:
        self.pattern = pattern
        self.premise = premise if isinstance(premise, LiteralSet) else LiteralSet(premise)
        self.conclusion = tuple(conclusion)
        self.name = name or f"agg_{pattern.name}"
        if not self.conclusion:
            raise DependencyError(f"{self.name}: an aggregate rule needs at least one aggregate literal")
        bound = set(pattern.variables)
        used = self.premise.pattern_variables() | frozenset(
            variable for literal in self.conclusion for variable in literal.pattern_variables()
        )
        unknown = used - bound
        if unknown:
            raise DependencyError(f"{self.name}: literals reference unbound variables {sorted(unknown)}")

    def match_violates(self, graph: Graph, match: Mapping[str, Hashable]) -> bool:
        """Return True when the match satisfies the premise but fails some aggregate literal."""
        assignment = assignment_for_match(graph, match, self.premise.variables())
        if not self.premise.satisfied_by(assignment):
            return False
        return not all(literal.holds_for(graph, match) for literal in self.conclusion)

    def __str__(self) -> str:
        conclusion = " ∧ ".join(str(literal) for literal in self.conclusion)
        return f"{self.name}: {self.pattern.name}[{', '.join(self.pattern.variables)}]({self.premise} → {conclusion})"


def find_aggregate_violations(
    graph: Graph, rules: Iterable[AggregateRule] | AggregateRule
) -> ViolationSet:
    """Return every match violating the given aggregate rules."""
    rule_list = [rules] if isinstance(rules, AggregateRule) else list(rules)
    result = ViolationSet()
    for rule in rule_list:
        matcher = HomomorphismMatcher(graph, rule.pattern, premise=rule.premise)
        for match in matcher.matches():
            if rule.match_violates(graph, match):
                result.add(Violation.from_mapping(rule.name, match, rule.pattern.variables))
    return result
