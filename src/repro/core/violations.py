"""Violations and violation sets.

A *violation* of an NGD ``φ = Q[x̄](X → Y)`` in graph ``G`` is a match
``h(x̄)`` of ``Q`` such that the subgraph induced by ``h(x̄)`` does not
satisfy φ, i.e. ``h(x̄) ⊨ X`` but ``h(x̄) ⊭ Y`` (Section 5.1).  ``Vio(Σ, G)``
collects the violations of every rule in Σ.

Incremental detection works with the *changes*::

    ΔVio⁺ = Vio(Σ, G ⊕ ΔG) \\ Vio(Σ, G)      (newly introduced)
    ΔVio⁻ = Vio(Σ, G) \\ Vio(Σ, G ⊕ ΔG)      (removed by the update)

represented here by :class:`ViolationDelta`.
"""

from __future__ import annotations

import json
from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import SerializationError

__all__ = ["Violation", "ViolationSet", "ViolationDelta", "wire_node_id"]


def wire_node_id(node_id: Hashable) -> Hashable:
    """Return the JSON-safe wire form of a node id.

    JSON scalars pass through untouched; anything else is rendered with
    ``str`` — the same (lossy) convention :func:`repro.graph.io.save_graph`
    applies via ``json.dump(..., default=str)``, so a violation serialized
    here names the same node ids as the graph file it was detected in.
    """
    if node_id is None or isinstance(node_id, (str, int, float, bool)):
        return node_id
    return str(node_id)


@dataclass(frozen=True)
class Violation:
    """One violating match: the rule name and the assignment h(x̄).

    ``assignment`` maps each pattern variable to the id of the data node it
    matched; the tuple is ordered like the pattern's variable list so the
    vector h(x̄) can be read off directly.
    """

    rule: str
    variables: tuple[str, ...]
    nodes: tuple[Hashable, ...]

    @classmethod
    def from_mapping(cls, rule: str, mapping: Mapping[str, Hashable], order: Iterable[str]) -> "Violation":
        """Build a violation from a variable→node mapping using ``order`` for the vector."""
        ordered = tuple(order)
        return cls(rule, ordered, tuple(mapping[variable] for variable in ordered))

    def mapping(self) -> dict[str, Hashable]:
        """Return the match as a variable → node-id dictionary."""
        return dict(zip(self.variables, self.nodes))

    def to_dict(self) -> dict:
        """Return the JSON-serialisable wire form of this violation.

        Shape: ``{"rule", "variables", "nodes"}`` with the node ids passed
        through :func:`wire_node_id`.  Used by the service protocol and the
        CLI's ``--format json`` payload alike.
        """
        return {
            "rule": self.rule,
            "variables": list(self.variables),
            "nodes": [wire_node_id(node) for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "Violation":
        """Rebuild a violation from :meth:`to_dict` output.

        Raises :class:`~repro.errors.SerializationError` when the document
        is missing entries or its variable/node vectors disagree in length.
        """
        if not isinstance(document, Mapping):
            raise SerializationError(f"violation document must be a mapping, got {type(document).__name__}")
        try:
            rule = document["rule"]
            variables = document["variables"]
            nodes = document["nodes"]
        except KeyError as exc:
            raise SerializationError(f"violation document is missing entry {exc}") from exc
        if not isinstance(rule, str):
            raise SerializationError(f"violation 'rule' must be a string, got {rule!r}")
        if not isinstance(variables, (list, tuple)) or not isinstance(nodes, (list, tuple)):
            raise SerializationError("violation 'variables' and 'nodes' must be lists")
        if len(variables) != len(nodes):
            raise SerializationError(
                f"violation has {len(variables)} variables but {len(nodes)} nodes"
            )
        return cls(rule, tuple(variables), tuple(nodes))

    def involves_node(self, node_id: Hashable) -> bool:
        """Return True when ``node_id`` is part of the violating match."""
        return node_id in self.nodes

    def __str__(self) -> str:
        assignment = ", ".join(f"{v}↦{n!r}" for v, n in zip(self.variables, self.nodes))
        return f"[{self.rule}] {assignment}"


class ViolationSet:
    """The set ``Vio(Σ, G)`` of violations, with per-rule indexing."""

    def __init__(self, violations: Iterable[Violation] = ()) -> None:
        self._violations: set[Violation] = set(violations)

    def add(self, violation: Violation) -> None:
        """Insert a violation (idempotent)."""
        self._violations.add(violation)

    def update(self, violations: Iterable[Violation]) -> None:
        """Insert several violations."""
        self._violations.update(violations)

    def discard(self, violation: Violation) -> None:
        """Remove a violation if present."""
        self._violations.discard(violation)

    def __contains__(self, violation: Violation) -> bool:
        return violation in self._violations

    def __iter__(self) -> Iterator[Violation]:
        return iter(self._violations)

    def __len__(self) -> int:
        return len(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationSet):
            return NotImplemented
        return self._violations == other._violations

    def by_rule(self, rule_name: str) -> frozenset[Violation]:
        """Return the violations of a single rule."""
        return frozenset(v for v in self._violations if v.rule == rule_name)

    def rules_violated(self) -> frozenset[str]:
        """Return the names of all rules with at least one violation."""
        return frozenset(v.rule for v in self._violations)

    def nodes_involved(self) -> frozenset[Hashable]:
        """Return every data node that participates in some violation."""
        nodes: set[Hashable] = set()
        for violation in self._violations:
            nodes.update(violation.nodes)
        return frozenset(nodes)

    def as_set(self) -> frozenset[Violation]:
        """Return an immutable snapshot."""
        return frozenset(self._violations)

    def union(self, other: "ViolationSet") -> "ViolationSet":
        """Return the union of two violation sets."""
        return ViolationSet(self._violations | other._violations)

    def difference(self, other: "ViolationSet") -> "ViolationSet":
        """Return the violations present here but not in ``other``."""
        return ViolationSet(self._violations - other._violations)

    def apply_delta(self, delta: "ViolationDelta") -> "ViolationSet":
        """Return ``Vio ⊕ ΔVio``: add the introduced violations, drop the removed ones."""
        return ViolationSet((self._violations - delta.removed.as_set()) | delta.introduced.as_set())

    def to_dict(self) -> dict:
        """Return ``{"violations": [Violation.to_dict(), ...]}`` sorted by textual form."""
        return {"violations": [v.to_dict() for v in sorted(self._violations, key=str)]}

    @classmethod
    def from_dict(cls, document: Mapping) -> "ViolationSet":
        """Rebuild a violation set from :meth:`to_dict` output."""
        if not isinstance(document, Mapping) or not isinstance(document.get("violations"), list):
            raise SerializationError("violation-set document must be a dict with a 'violations' list")
        return cls(Violation.from_dict(entry) for entry in document["violations"])

    def to_json(self, indent: "int | None" = None) -> str:
        """Serialise to a JSON string (deterministic: violations sorted by str)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ViolationSet":
        """Rebuild a violation set from :meth:`to_json` output."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"violation-set JSON is malformed: {exc}") from exc
        return cls.from_dict(document)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ViolationSet({len(self._violations)} violations)"


@dataclass
class ViolationDelta:
    """The pair ``ΔVio = (ΔVio⁺, ΔVio⁻)`` produced by incremental detection."""

    introduced: ViolationSet
    removed: ViolationSet

    @classmethod
    def empty(cls) -> "ViolationDelta":
        """Return an empty delta (no changes)."""
        return cls(ViolationSet(), ViolationSet())

    @classmethod
    def from_sets(cls, before: ViolationSet, after: ViolationSet) -> "ViolationDelta":
        """Compute the delta between two full violation sets (ground truth for tests)."""
        return cls(introduced=after.difference(before), removed=before.difference(after))

    def is_empty(self) -> bool:
        """Return True when the update changed nothing."""
        return not self.introduced and not self.removed

    def compose(self, later: "ViolationDelta") -> "ViolationDelta":
        """Return the net delta of applying ``self`` then ``later``.

        Used by the service's delta-log compaction: a window of per-version
        deltas squashes into one delta with the same effect on any base set
        (``base.apply_delta(d1).apply_delta(d2) ==
        base.apply_delta(d1.compose(d2))``).  A violation introduced then
        removed (or vice versa) cancels out of the net delta.
        """
        first_introduced = self.introduced.as_set()
        first_removed = self.removed.as_set()
        later_introduced = later.introduced.as_set()
        later_removed = later.removed.as_set()
        return ViolationDelta(
            introduced=ViolationSet(
                (first_introduced - later_removed) | (later_introduced - first_removed)
            ),
            removed=ViolationSet(
                (first_removed - later_introduced) | (later_removed - first_introduced)
            ),
        )

    def total_changes(self) -> int:
        """Return |ΔVio⁺| + |ΔVio⁻|."""
        return len(self.introduced) + len(self.removed)

    def to_dict(self) -> dict:
        """Return ``{"introduced": [...], "removed": [...]}`` (each sorted by str)."""
        return {
            "introduced": self.introduced.to_dict()["violations"],
            "removed": self.removed.to_dict()["violations"],
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "ViolationDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        if not isinstance(document, Mapping):
            raise SerializationError("violation-delta document must be a mapping")
        for key in ("introduced", "removed"):
            if not isinstance(document.get(key), list):
                raise SerializationError(f"violation-delta document needs a {key!r} list")
        return cls(
            introduced=ViolationSet(Violation.from_dict(e) for e in document["introduced"]),
            removed=ViolationSet(Violation.from_dict(e) for e in document["removed"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationDelta):
            return NotImplemented
        return self.introduced == other.introduced and self.removed == other.removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ViolationDelta(+{len(self.introduced)}, -{len(self.removed)})"
