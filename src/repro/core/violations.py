"""Violations and violation sets.

A *violation* of an NGD ``φ = Q[x̄](X → Y)`` in graph ``G`` is a match
``h(x̄)`` of ``Q`` such that the subgraph induced by ``h(x̄)`` does not
satisfy φ, i.e. ``h(x̄) ⊨ X`` but ``h(x̄) ⊭ Y`` (Section 5.1).  ``Vio(Σ, G)``
collects the violations of every rule in Σ.

Incremental detection works with the *changes*::

    ΔVio⁺ = Vio(Σ, G ⊕ ΔG) \\ Vio(Σ, G)      (newly introduced)
    ΔVio⁻ = Vio(Σ, G) \\ Vio(Σ, G ⊕ ΔG)      (removed by the update)

represented here by :class:`ViolationDelta`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass

__all__ = ["Violation", "ViolationSet", "ViolationDelta"]


@dataclass(frozen=True)
class Violation:
    """One violating match: the rule name and the assignment h(x̄).

    ``assignment`` maps each pattern variable to the id of the data node it
    matched; the tuple is ordered like the pattern's variable list so the
    vector h(x̄) can be read off directly.
    """

    rule: str
    variables: tuple[str, ...]
    nodes: tuple[Hashable, ...]

    @classmethod
    def from_mapping(cls, rule: str, mapping: Mapping[str, Hashable], order: Iterable[str]) -> "Violation":
        """Build a violation from a variable→node mapping using ``order`` for the vector."""
        ordered = tuple(order)
        return cls(rule, ordered, tuple(mapping[variable] for variable in ordered))

    def mapping(self) -> dict[str, Hashable]:
        """Return the match as a variable → node-id dictionary."""
        return dict(zip(self.variables, self.nodes))

    def involves_node(self, node_id: Hashable) -> bool:
        """Return True when ``node_id`` is part of the violating match."""
        return node_id in self.nodes

    def __str__(self) -> str:
        assignment = ", ".join(f"{v}↦{n!r}" for v, n in zip(self.variables, self.nodes))
        return f"[{self.rule}] {assignment}"


class ViolationSet:
    """The set ``Vio(Σ, G)`` of violations, with per-rule indexing."""

    def __init__(self, violations: Iterable[Violation] = ()) -> None:
        self._violations: set[Violation] = set(violations)

    def add(self, violation: Violation) -> None:
        """Insert a violation (idempotent)."""
        self._violations.add(violation)

    def update(self, violations: Iterable[Violation]) -> None:
        """Insert several violations."""
        self._violations.update(violations)

    def discard(self, violation: Violation) -> None:
        """Remove a violation if present."""
        self._violations.discard(violation)

    def __contains__(self, violation: Violation) -> bool:
        return violation in self._violations

    def __iter__(self) -> Iterator[Violation]:
        return iter(self._violations)

    def __len__(self) -> int:
        return len(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationSet):
            return NotImplemented
        return self._violations == other._violations

    def by_rule(self, rule_name: str) -> frozenset[Violation]:
        """Return the violations of a single rule."""
        return frozenset(v for v in self._violations if v.rule == rule_name)

    def rules_violated(self) -> frozenset[str]:
        """Return the names of all rules with at least one violation."""
        return frozenset(v.rule for v in self._violations)

    def nodes_involved(self) -> frozenset[Hashable]:
        """Return every data node that participates in some violation."""
        nodes: set[Hashable] = set()
        for violation in self._violations:
            nodes.update(violation.nodes)
        return frozenset(nodes)

    def as_set(self) -> frozenset[Violation]:
        """Return an immutable snapshot."""
        return frozenset(self._violations)

    def union(self, other: "ViolationSet") -> "ViolationSet":
        """Return the union of two violation sets."""
        return ViolationSet(self._violations | other._violations)

    def difference(self, other: "ViolationSet") -> "ViolationSet":
        """Return the violations present here but not in ``other``."""
        return ViolationSet(self._violations - other._violations)

    def apply_delta(self, delta: "ViolationDelta") -> "ViolationSet":
        """Return ``Vio ⊕ ΔVio``: add the introduced violations, drop the removed ones."""
        return ViolationSet((self._violations - delta.removed.as_set()) | delta.introduced.as_set())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ViolationSet({len(self._violations)} violations)"


@dataclass
class ViolationDelta:
    """The pair ``ΔVio = (ΔVio⁺, ΔVio⁻)`` produced by incremental detection."""

    introduced: ViolationSet
    removed: ViolationSet

    @classmethod
    def empty(cls) -> "ViolationDelta":
        """Return an empty delta (no changes)."""
        return cls(ViolationSet(), ViolationSet())

    @classmethod
    def from_sets(cls, before: ViolationSet, after: ViolationSet) -> "ViolationDelta":
        """Compute the delta between two full violation sets (ground truth for tests)."""
        return cls(introduced=after.difference(before), removed=before.difference(after))

    def is_empty(self) -> bool:
        """Return True when the update changed nothing."""
        return not self.introduced and not self.removed

    def total_changes(self) -> int:
        """Return |ΔVio⁺| + |ΔVio⁻|."""
        return len(self.introduced) + len(self.removed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationDelta):
            return NotImplemented
        return self.introduced == other.introduced and self.removed == other.removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ViolationDelta(+{len(self.introduced)}, -{len(self.removed)})"
