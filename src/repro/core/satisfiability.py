"""Satisfiability, strong satisfiability and implication of NGDs.

Section 4 of the paper establishes that these analyses are Σp2-complete /
Πp2-complete for linear NGDs and undecidable once non-linear expressions are
allowed (Theorem 3).  An exact polynomial procedure therefore cannot exist;
this module implements the **bounded small-model search** suggested by the
upper-bound proofs:

1. Candidate models are built from the rule patterns themselves: the
   canonical graph of each pattern (wildcards instantiated with fresh labels)
   and its homomorphic quotients (label-compatible node merges).  The small
   model property guarantees that *if* a set of NGDs is satisfiable, a model
   of size polynomial in |Σ| exists; pattern canonical graphs and their
   quotients cover the models the proofs construct.
2. For a fixed candidate model, node attribute values (and their presence)
   are unknowns.  Every match of every rule contributes the requirement
   ``¬sat(X) ∨ sat(Y)``; the checker enumerates the ways of discharging each
   requirement and tests each resulting conjunction of linear constraints for
   integer feasibility with an exact MILP (scipy's HiGHS backend).

The result is sound in both directions for the bounded search space and is
exact on rule sets whose conflicts are expressible within their own patterns
(which covers the paper's examples φ5–φ9 and the rule shapes produced by the
discovery module).  Inputs that would exceed the configured search budget
raise :class:`SatisfiabilityError` rather than silently guessing.

Non-linear rules are rejected with :class:`SatisfiabilityError` referencing
Theorem 3; rules whose literals use ``|·|`` are likewise rejected here (the
absolute value is fine for validation but the satisfiability normal form does
not support it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional

import numpy as np
from scipy.optimize import linprog

from repro.core.ngd import NGD, RuleSet
from repro.errors import SatisfiabilityError
from repro.expr.literals import Comparison, Literal
from repro.graph.graph import WILDCARD, Graph
from repro.matching.matchn import HomomorphismMatcher

__all__ = [
    "SatisfiabilityResult",
    "check_satisfiability",
    "is_satisfiable",
    "is_strongly_satisfiable",
    "implies",
]

#: Hard cap on the number of discharge combinations explored per model; the
#: search raises SatisfiabilityError instead of exceeding it.
MAX_CASES = 200_000
#: Patterns larger than this do not get quotient enumeration (Bell-number blowup).
MAX_QUOTIENT_NODES = 6


@dataclass
class SatisfiabilityResult:
    """Outcome of a (strong) satisfiability check."""

    satisfiable: bool
    witness: Optional[Graph] = None
    witness_attributes: Optional[dict[tuple[object, str], int]] = None

    def __bool__(self) -> bool:
        return self.satisfiable


# --------------------------------------------------------------------------
# constraint atoms
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _LinearAtom:
    """``Σ coeff · value(node, attr)  ⊗  bound`` over the candidate model's nodes."""

    coefficients: tuple[tuple[tuple[object, str], Fraction], ...]
    comparison: Comparison
    bound: Fraction


@dataclass(frozen=True)
class _PresenceAtom:
    """Attribute ``attr`` of model node ``node`` must be present (or absent)."""

    node: object
    attribute: str
    present: bool


def _ground_literal(literal: Literal, match: dict[str, object]) -> tuple[list[_PresenceAtom], _LinearAtom]:
    """Ground a pattern literal over a concrete match into presence + linear atoms."""
    if literal.uses_absolute_value():
        raise SatisfiabilityError(
            f"literal {literal} uses |·|; the satisfiability normal form does not support it"
        )
    if not literal.is_linear():
        raise SatisfiabilityError(
            f"literal {literal} is non-linear; satisfiability of non-linear NGDs is undecidable (Theorem 3)"
        )
    constraint = literal.to_linear_constraint()
    presence = [
        _PresenceAtom(match[variable], attribute, True)
        for variable, attribute in literal.variables()
    ]
    grounded: dict[tuple[object, str], Fraction] = {}
    for (variable, attribute), coefficient in constraint.coefficients:
        key = (match[variable], attribute)
        grounded[key] = grounded.get(key, Fraction(0)) + coefficient
    ordered = tuple(sorted(grounded.items(), key=lambda item: (repr(item[0]), item[0][1])))
    return presence, _LinearAtom(ordered, constraint.comparison, constraint.bound)


# --------------------------------------------------------------------------
# feasibility of a conjunction of atoms (integer domain)
# --------------------------------------------------------------------------


def _split_disequalities(atoms: list[_LinearAtom]) -> Iterable[list[_LinearAtom]]:
    """Expand ``≠`` atoms into the two strict alternatives (cartesian product)."""
    fixed = [atom for atom in atoms if atom.comparison is not Comparison.NE]
    disequalities = [atom for atom in atoms if atom.comparison is Comparison.NE]
    if not disequalities:
        yield list(fixed)
        return
    for directions in itertools.product((Comparison.LT, Comparison.GT), repeat=len(disequalities)):
        case = list(fixed)
        for atom, direction in zip(disequalities, directions):
            case.append(_LinearAtom(atom.coefficients, direction, atom.bound))
        yield case


def _integer_feasible(atoms: list[_LinearAtom]) -> Optional[dict[tuple[object, str], int]]:
    """Return an integer solution of the conjunction of atoms, or None when infeasible."""
    for case in _split_disequalities(atoms):
        solution = _milp_feasible(case)
        if solution is not None:
            return solution
    return None


def _milp_feasible(atoms: list[_LinearAtom]) -> Optional[dict[tuple[object, str], int]]:
    """Integer feasibility of =, <, ≤, >, ≥ atoms via an exact MILP (HiGHS)."""
    variables = sorted({key for atom in atoms for key, _ in atom.coefficients}, key=repr)
    if not variables:
        # no unknowns: every atom is a ground numeric comparison
        for atom in atoms:
            if not atom.comparison.holds(Fraction(0), atom.bound):
                return None
        return {}
    index = {key: i for i, key in enumerate(variables)}

    upper_rows: list[list[float]] = []
    upper_bounds: list[float] = []
    equality_rows: list[list[float]] = []
    equality_bounds: list[float] = []

    for atom in atoms:
        row = [Fraction(0)] * len(variables)
        for key, coefficient in atom.coefficients:
            row[index[key]] += coefficient
        comparison, bound = atom.comparison, atom.bound
        if comparison in (Comparison.GT, Comparison.GE):
            row = [-value for value in row]
            bound = -bound
            comparison = Comparison.LT if comparison is Comparison.GT else Comparison.LE
        scale = _common_denominator([bound] + row)
        int_row = [int(value * scale) for value in row]
        int_bound = bound * scale
        if comparison is Comparison.EQ:
            if int_bound.denominator != 1:
                return None  # integer row can never equal a fractional bound
            equality_rows.append([float(v) for v in int_row])
            equality_bounds.append(float(int_bound))
        elif comparison is Comparison.LE:
            upper_rows.append([float(v) for v in int_row])
            upper_bounds.append(float(_floor_fraction(int_bound)))
        else:  # strict <, integer row: Σ a·x ≤ ceil(bound) - 1
            upper_rows.append([float(v) for v in int_row])
            upper_bounds.append(float(_strict_upper(int_bound)))

    result = linprog(
        c=np.zeros(len(variables)),
        A_ub=np.array(upper_rows) if upper_rows else None,
        b_ub=np.array(upper_bounds) if upper_bounds else None,
        A_eq=np.array(equality_rows) if equality_rows else None,
        b_eq=np.array(equality_bounds) if equality_bounds else None,
        bounds=[(None, None)] * len(variables),
        integrality=np.ones(len(variables)),
        method="highs",
    )
    if not result.success:
        return None
    return {key: int(round(result.x[i])) for key, i in index.items()}


def _common_denominator(values: list[Fraction]) -> int:
    denominator = 1
    for value in values:
        denominator = denominator * value.denominator // _gcd(denominator, value.denominator)
    return denominator


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _floor_fraction(value: Fraction) -> int:
    return value.numerator // value.denominator


def _strict_upper(value: Fraction) -> int:
    """Largest integer strictly below ``value``."""
    floor = _floor_fraction(value)
    return floor - 1 if value == floor else floor


# --------------------------------------------------------------------------
# candidate models
# --------------------------------------------------------------------------


def _fresh_label(counter: int) -> str:
    return f"__fresh_{counter}"


def _canonical_model(rules: Iterable[NGD], name: str) -> Graph:
    """Disjoint union of the canonical graphs of the given rules' patterns."""
    graph = Graph(name)
    fresh = itertools.count()
    for rule_index, rule in enumerate(rules):
        for variable in rule.pattern.variables:
            node = rule.pattern.node(variable)
            label = node.label if node.label != WILDCARD else _fresh_label(next(fresh))
            graph.add_node((rule_index, variable), label)
        for edge in rule.pattern.edges():
            graph.add_edge((rule_index, edge.source), (rule_index, edge.target), edge.label)
    return graph


def _quotient_models(rule: NGD, rule_index: int) -> list[Graph]:
    """Return quotients of one pattern's canonical graph (label-compatible merges)."""
    variables = list(rule.pattern.variables)
    if not variables or len(variables) > MAX_QUOTIENT_NODES:
        return []
    models: list[Graph] = []
    for partition in _set_partitions(variables):
        if len(partition) == len(variables):
            continue  # identical to the canonical model
        labels: list[Optional[str]] = []
        compatible = True
        for block in partition:
            block_labels = {rule.pattern.node(v).label for v in block} - {WILDCARD}
            if len(block_labels) > 1:
                compatible = False
                break
            labels.append(next(iter(block_labels)) if block_labels else None)
        if not compatible:
            continue
        graph = Graph(f"{rule.pattern.name}-quotient")
        fresh = itertools.count()
        block_of = {v: i for i, block in enumerate(partition) for v in block}
        for i, block in enumerate(partition):
            label = labels[i] if labels[i] is not None else _fresh_label(next(fresh))
            graph.add_node((rule_index, f"block{i}"), label)
        for edge in rule.pattern.edges():
            graph.add_edge(
                (rule_index, f"block{block_of[edge.source]}"),
                (rule_index, f"block{block_of[edge.target]}"),
                edge.label,
            )
        models.append(graph)
    return models


def _set_partitions(items: list[str]) -> Iterable[list[list[str]]]:
    """Enumerate all partitions of ``items`` (restricted growth strings)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        yield [[first]] + partition


# --------------------------------------------------------------------------
# model checking: does a candidate topology admit consistent attribute values?
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Requirement:
    """One rule-match pair: the match must satisfy ``¬sat(X) ∨ sat(Y)`` (or violate, for witnesses)."""

    rule: NGD
    match: tuple[tuple[str, object], ...]
    must_violate: bool = False

    def mapping(self) -> dict[str, object]:
        return dict(self.match)


def _collect_requirements(model: Graph, rules: RuleSet) -> list[_Requirement]:
    requirements: list[_Requirement] = []
    for rule in rules:
        matcher = HomomorphismMatcher(model, rule.pattern, use_literal_pruning=False)
        for match in matcher.matches():
            requirements.append(_Requirement(rule, tuple(sorted(match.items()))))
    return requirements


def _discharge_options(requirement: _Requirement) -> list[tuple[list[_PresenceAtom], list[_LinearAtom]]]:
    """Enumerate ways to discharge a requirement as (presence atoms, linear atoms).

    For ``¬sat(X) ∨ sat(Y)`` the options are: falsify one premise literal
    (either by dropping one of its attributes or by negating its comparison),
    or satisfy every conclusion literal.  A witness requirement
    (``must_violate``) instead needs sat(X) plus a falsified conclusion literal.
    """
    match = requirement.mapping()
    rule = requirement.rule
    options: list[tuple[list[_PresenceAtom], list[_LinearAtom]]] = []

    def satisfy_all(literals: Iterable[Literal]) -> tuple[list[_PresenceAtom], list[_LinearAtom]]:
        presence: list[_PresenceAtom] = []
        linear: list[_LinearAtom] = []
        for literal in literals:
            p, atom = _ground_literal(literal, match)
            presence.extend(p)
            linear.append(atom)
        return presence, linear

    def falsify_options(literal: Literal) -> list[tuple[list[_PresenceAtom], list[_LinearAtom]]]:
        result: list[tuple[list[_PresenceAtom], list[_LinearAtom]]] = []
        presence, atom = _ground_literal(literal, match)
        # negate the comparison, keeping every attribute present
        negated = _LinearAtom(atom.coefficients, atom.comparison.negate(), atom.bound)
        result.append((presence, [negated]))
        # or drop one referenced attribute
        for p in presence:
            result.append(([_PresenceAtom(p.node, p.attribute, False)], []))
        return result

    if requirement.must_violate:
        premise_presence, premise_linear = satisfy_all(rule.premise)
        if not rule.conclusion:
            return []  # an empty conclusion is always satisfied; no violation possible
        for literal in rule.conclusion:
            for presence, linear in falsify_options(literal):
                options.append((premise_presence + presence, premise_linear + linear))
        return options

    # normal requirement: ¬sat(X) ∨ sat(Y)
    for literal in rule.premise:
        options.extend(falsify_options(literal))
    conclusion_presence, conclusion_linear = satisfy_all(rule.conclusion)
    options.append((conclusion_presence, conclusion_linear))
    return options


def _model_admits_values(
    model: Graph, requirements: list[_Requirement]
) -> Optional[dict[tuple[object, str], int]]:
    """Search discharge combinations for one whose constraints are integer-feasible."""
    all_options = [_discharge_options(requirement) for requirement in requirements]
    if any(not options for options in all_options):
        return None
    total = 1
    for options in all_options:
        total *= len(options)
        if total > MAX_CASES:
            raise SatisfiabilityError(
                f"satisfiability search budget exceeded ({total} discharge combinations; cap {MAX_CASES})"
            )

    def search(index: int, presence: dict[tuple[object, str], bool], atoms: list[_LinearAtom]):
        if index == len(all_options):
            solution = _integer_feasible(atoms)
            return solution if solution is not None else None
        for option_presence, option_atoms in all_options[index]:
            merged = dict(presence)
            consistent = True
            for atom in option_presence:
                key = (atom.node, atom.attribute)
                if key in merged and merged[key] != atom.present:
                    consistent = False
                    break
                merged[key] = atom.present
            if not consistent:
                continue
            # a linear atom may only constrain attributes marked present
            usable = True
            for linear_atom in option_atoms:
                for key, _ in linear_atom.coefficients:
                    if merged.get(key, True) is False:
                        usable = False
                        break
                if not usable:
                    break
            if not usable:
                continue
            outcome = search(index + 1, merged, atoms + list(option_atoms))
            if outcome is not None:
                return outcome
        return None

    return search(0, {}, [])


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


def _reject_nonlinear(rules: RuleSet) -> None:
    for rule in rules:
        if not rule.is_linear():
            raise SatisfiabilityError(
                f"rule {rule.name} has non-linear literals; satisfiability/implication "
                "of non-linear NGDs is undecidable (Theorem 3)"
            )


def check_satisfiability(rules: RuleSet | list[NGD], strong: bool = False) -> SatisfiabilityResult:
    """Check (strong) satisfiability of a set of NGDs within the bounded model space.

    Returns a :class:`SatisfiabilityResult`; when satisfiable, ``witness`` is a
    model graph and ``witness_attributes`` an integer attribute assignment
    satisfying every rule.
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    if not len(rule_set):
        return SatisfiabilityResult(True, Graph("empty-model"), {})
    _reject_nonlinear(rule_set)

    candidates: list[Graph] = []
    if strong:
        candidates.append(_canonical_model(rule_set, "strong-canonical"))
    else:
        for index, rule in enumerate(rule_set):
            candidates.append(_canonical_model([rule], f"canonical-{rule.name}"))
            candidates.extend(_quotient_models(rule, index))

    for model in candidates:
        if model.node_count() == 0:
            continue
        requirements = _collect_requirements(model, rule_set)
        if strong:
            matched = {
                requirement.rule.name for requirement in requirements
            }
            if matched != {rule.name for rule in rule_set}:
                continue
        elif not requirements:
            continue
        solution = _model_admits_values(model, requirements)
        if solution is not None:
            witness = model.copy()
            for (node_id, attribute), value in solution.items():
                witness.set_attribute(node_id, attribute, value)
            return SatisfiabilityResult(True, witness, solution)
    return SatisfiabilityResult(False)


def is_satisfiable(rules: RuleSet | list[NGD]) -> bool:
    """Return True when the rule set has a model in which some pattern matches."""
    return check_satisfiability(rules, strong=False).satisfiable


def is_strongly_satisfiable(rules: RuleSet | list[NGD]) -> bool:
    """Return True when the rule set has a model in which every pattern matches."""
    return check_satisfiability(rules, strong=True).satisfiable


def implies(rules: RuleSet | list[NGD], candidate: NGD) -> bool:
    """Return True when Σ ⊨ φ within the bounded witness search.

    The checker searches for a counterexample: a model of Σ containing a match
    of φ's pattern that violates φ.  Candidate witness topologies are φ's
    canonical pattern graph and its quotients.  When no counterexample exists
    in that space the implication is reported to hold.
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    _reject_nonlinear(rule_set)
    _reject_nonlinear(RuleSet([candidate]))

    witness_models = [_canonical_model([candidate], f"witness-{candidate.name}")]
    witness_models.extend(_quotient_models(candidate, 0))

    for model in witness_models:
        if model.node_count() == 0:
            continue
        requirements = _collect_requirements(model, rule_set)
        matcher = HomomorphismMatcher(model, candidate.pattern, use_literal_pruning=False)
        for match in matcher.matches():
            witness_requirement = _Requirement(
                candidate, tuple(sorted(match.items())), must_violate=True
            )
            solution = _model_admits_values(model, requirements + [witness_requirement])
            if solution is not None:
                return False
    return True
