"""Batch validation: ``G ⊨ Σ`` and ``Vio(Σ, G)``.

Section 5.1: the *error detection problem* takes a set Σ of NGDs and a graph
``G`` and returns ``Vio(Σ, G)``, the set of all violating matches; its
decision version (the *validation problem*, ``Vio(Σ, G) = ∅``?) is
coNP-complete, the same as for GFDs — arithmetic adds only per-match constant
work (Corollary 4).

These functions are the sequential reference implementation used as ground
truth for the incremental and parallel algorithms; ``repro.detect`` wraps the
same machinery with the paper's algorithm names (Dect, IncDect, ...).
"""

from __future__ import annotations

from typing import Optional

from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.graph.graph import Graph
from repro.matching.candidates import MatchStatistics
from repro.matching.matchn import HomomorphismMatcher

__all__ = [
    "violations_of_rule",
    "find_violations",
    "graph_satisfies",
    "satisfies_rule",
]


def violations_of_rule(
    graph: Graph,
    rule: NGD,
    use_literal_pruning: bool = True,
    stats: Optional[MatchStatistics] = None,
) -> ViolationSet:
    """Return all violations of a single NGD in ``graph``."""
    matcher = HomomorphismMatcher(
        graph,
        rule.pattern,
        premise=rule.premise,
        conclusion=rule.conclusion,
        use_literal_pruning=use_literal_pruning,
        stats=stats,
    )
    result = ViolationSet()
    order = rule.pattern.variables
    for match in matcher.violations():
        result.add(Violation.from_mapping(rule.name, match, order))
    return result


def find_violations(
    graph: Graph,
    rules: RuleSet | list[NGD],
    use_literal_pruning: bool = True,
    stats: Optional[MatchStatistics] = None,
) -> ViolationSet:
    """Return ``Vio(Σ, G)``: every violation of every rule in Σ."""
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    result = ViolationSet()
    for rule in rule_set:
        result.update(violations_of_rule(graph, rule, use_literal_pruning, stats))
    return result


def satisfies_rule(graph: Graph, rule: NGD, use_literal_pruning: bool = True) -> bool:
    """Return True when ``G ⊨ φ`` (no match of the pattern violates X → Y)."""
    matcher = HomomorphismMatcher(
        graph,
        rule.pattern,
        premise=rule.premise,
        conclusion=rule.conclusion,
        use_literal_pruning=use_literal_pruning,
    )
    return next(iter(matcher.violations()), None) is None


def graph_satisfies(graph: Graph, rules: RuleSet | list[NGD], use_literal_pruning: bool = True) -> bool:
    """Return True when ``G ⊨ Σ`` (the validation problem)."""
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    return all(satisfies_rule(graph, rule, use_literal_pruning) for rule in rule_set)
