"""Graph repairing with NGDs (the paper's first future-work topic, Section 8).

Given a graph, a rule set and the violations detected in it, a *repair*
changes attribute values so that the previously violating matches satisfy
their rules again, changing as little as possible.  This module implements a
practical value-repair engine for the linear NGD fragment:

* every violating match contributes the constraint "the conclusion's literals
  must hold" (the premise is left untouched — we never repair a violation by
  breaking its premise, which would risk masking genuine errors);
* the attributes mentioned by those conclusion literals are the *repairable*
  unknowns; all other attribute occurrences keep their current value;
* the engine minimises the total absolute change Σ |new − old| over the
  repairable attributes, solving the resulting LP/MILP exactly with HiGHS
  (the same solver backbone as the satisfiability checker);
* repairs are returned as :class:`AttributeRepair` records and can be applied
  to (a copy of) the graph, after which the repaired matches no longer
  violate their rules.

Limitations (documented, enforced with clear errors): only linear literals
without absolute values or disequalities (``≠``) can be repaired — the same
normal form the satisfiability checker uses.  Violations whose conclusion
cannot be repaired (e.g. it is empty) are reported as unrepairable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from numbers import Real
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.errors import ValidationError
from repro.expr.literals import Comparison, Literal
from repro.graph.graph import Graph

__all__ = ["AttributeRepair", "RepairPlan", "plan_repairs", "apply_repairs", "repair_graph"]


@dataclass(frozen=True)
class AttributeRepair:
    """One attribute-value change: set ``node.attribute`` from ``old_value`` to ``new_value``."""

    node: object
    attribute: str
    old_value: Real
    new_value: Real

    def magnitude(self) -> float:
        """Return |new − old|, the cost this repair contributes."""
        return abs(float(self.new_value) - float(self.old_value))


@dataclass
class RepairPlan:
    """The outcome of repair planning: the changes plus anything that could not be fixed."""

    repairs: list[AttributeRepair] = field(default_factory=list)
    unrepairable: list[Violation] = field(default_factory=list)

    def total_cost(self) -> float:
        """Return the summed magnitude of all planned changes."""
        return sum(repair.magnitude() for repair in self.repairs)

    def is_complete(self) -> bool:
        """Return True when every violation handed to the planner was repairable."""
        return not self.unrepairable


def _conclusion_constraints(
    rule: NGD, violation: Violation
) -> list[tuple[dict[tuple[object, str], Fraction], Comparison, Fraction]]:
    """Ground the conclusion literals of ``rule`` over ``violation`` into linear constraints."""
    mapping = violation.mapping()
    constraints = []
    for literal in rule.conclusion:
        if not literal.is_linear() or literal.uses_absolute_value():
            raise ValidationError(
                f"literal {literal} of rule {rule.name} is outside the repairable fragment"
            )
        if literal.comparison is Comparison.NE:
            raise ValidationError(
                f"literal {literal} of rule {rule.name} uses ≠ and cannot be value-repaired deterministically"
            )
        normal = literal.to_linear_constraint()
        grounded: dict[tuple[object, str], Fraction] = {}
        for (variable, attribute), coefficient in normal.coefficients:
            key = (mapping[variable], attribute)
            grounded[key] = grounded.get(key, Fraction(0)) + coefficient
        constraints.append((grounded, normal.comparison, normal.bound))
    return constraints


def plan_repairs(
    graph: Graph,
    rules: RuleSet | list[NGD],
    violations: ViolationSet,
    integral: bool = True,
) -> RepairPlan:
    """Plan minimal attribute-value changes that fix every repairable violation.

    ``integral`` keeps the repaired values integer (the paper's attribute
    domain); pass False to allow fractional repairs.
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rules_by_name = {rule.name: rule for rule in rule_set}
    plan = RepairPlan()

    constraints: list[tuple[dict[tuple[object, str], Fraction], Comparison, Fraction]] = []
    repairable_keys: set[tuple[object, str]] = set()
    for violation in violations:
        rule = rules_by_name.get(violation.rule)
        if rule is None or not len(rule.conclusion):
            plan.unrepairable.append(violation)
            continue
        try:
            grounded = _conclusion_constraints(rule, violation)
        except ValidationError:
            plan.unrepairable.append(violation)
            continue
        missing_attribute = False
        for coefficients, _, _ in grounded:
            for node_id, attribute in coefficients:
                if not graph.has_node(node_id):
                    missing_attribute = True
        if missing_attribute:
            plan.unrepairable.append(violation)
            continue
        constraints.extend(grounded)
        for coefficients, _, _ in grounded:
            repairable_keys.update(coefficients.keys())

    if not constraints:
        return plan

    solution = _solve_minimal_change(graph, sorted(repairable_keys, key=repr), constraints, integral)
    if solution is None:
        # the conclusions of different violations contradict each other; report all as unrepairable
        plan.unrepairable.extend(
            violation for violation in violations if violation not in plan.unrepairable
        )
        return plan

    for (node_id, attribute), new_value in solution.items():
        old_value = graph.node(node_id).attribute(attribute, 0)
        if not isinstance(old_value, (int, float)) or isinstance(old_value, bool):
            old_value = 0
        if new_value != old_value:
            plan.repairs.append(AttributeRepair(node_id, attribute, old_value, new_value))
    return plan


def _solve_minimal_change(
    graph: Graph,
    keys: list[tuple[object, str]],
    constraints: list[tuple[dict[tuple[object, str], Fraction], Comparison, Fraction]],
    integral: bool,
) -> Optional[dict[tuple[object, str], Real]]:
    """Minimise Σ|x − current| subject to the grounded conclusion constraints.

    Standard LP trick: each repairable value x gets a companion deviation
    variable d with d ≥ x − current and d ≥ current − x, and the objective is
    Σ d.  Strict inequalities are tightened by one (integer domain) or by a
    small epsilon (continuous domain).
    """
    index = {key: i for i, key in enumerate(keys)}
    num_values = len(keys)
    num_variables = 2 * num_values  # values then deviations

    current = []
    for node_id, attribute in keys:
        value = graph.node(node_id).attribute(attribute, 0)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            value = 0
        current.append(Fraction(value))

    upper_rows: list[list[float]] = []
    upper_bounds: list[float] = []
    equality_rows: list[list[float]] = []
    equality_bounds: list[float] = []

    for coefficients, comparison, bound in constraints:
        row = [0.0] * num_variables
        for key, coefficient in coefficients.items():
            row[index[key]] += float(coefficient)
        target = float(bound)
        if comparison is Comparison.EQ:
            equality_rows.append(row)
            equality_bounds.append(target)
        elif comparison in (Comparison.LE, Comparison.LT):
            adjustment = 1.0 if (comparison is Comparison.LT and integral) else (1e-6 if comparison is Comparison.LT else 0.0)
            upper_rows.append(row)
            upper_bounds.append(target - adjustment)
        else:  # GE / GT
            adjustment = 1.0 if (comparison is Comparison.GT and integral) else (1e-6 if comparison is Comparison.GT else 0.0)
            upper_rows.append([-value for value in row])
            upper_bounds.append(-(target + adjustment))

    # deviation constraints: x_i - d_i <= current_i  and  -x_i - d_i <= -current_i
    for i in range(num_values):
        row = [0.0] * num_variables
        row[i] = 1.0
        row[num_values + i] = -1.0
        upper_rows.append(row)
        upper_bounds.append(float(current[i]))
        row = [0.0] * num_variables
        row[i] = -1.0
        row[num_values + i] = -1.0
        upper_rows.append(row)
        upper_bounds.append(float(-current[i]))

    objective = np.concatenate([np.zeros(num_values), np.ones(num_values)])
    integrality = np.concatenate(
        [np.ones(num_values) if integral else np.zeros(num_values), np.zeros(num_values)]
    )
    result = linprog(
        c=objective,
        A_ub=np.array(upper_rows),
        b_ub=np.array(upper_bounds),
        A_eq=np.array(equality_rows) if equality_rows else None,
        b_eq=np.array(equality_bounds) if equality_bounds else None,
        bounds=[(None, None)] * num_values + [(0, None)] * num_values,
        integrality=integrality,
        method="highs",
    )
    if not result.success:
        return None
    solution: dict[tuple[object, str], Real] = {}
    for key, i in index.items():
        value = result.x[i]
        solution[key] = int(round(value)) if integral else float(value)
    return solution


def apply_repairs(graph: Graph, plan: RepairPlan, in_place: bool = False) -> Graph:
    """Apply a repair plan, returning the repaired graph (a copy unless ``in_place``)."""
    target = graph if in_place else graph.copy()
    for repair in plan.repairs:
        target.set_attribute(repair.node, repair.attribute, repair.new_value)
    return target


def repair_graph(
    graph: Graph,
    rules: RuleSet | list[NGD],
    violations: Optional[ViolationSet] = None,
    integral: bool = True,
) -> tuple[Graph, RepairPlan]:
    """Detect (if needed), plan and apply repairs; return the repaired graph and the plan."""
    from repro.core.validation import find_violations

    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    found = violations if violations is not None else find_violations(graph, rule_set)
    plan = plan_repairs(graph, rule_set, found, integral=integral)
    return apply_repairs(graph, plan), plan
