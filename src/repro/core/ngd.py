"""Numeric graph dependencies (NGDs), the paper's central construct.

An NGD ``φ = Q[x̄](X → Y)`` pairs

* a graph pattern ``Q[x̄]`` (matched by homomorphism), and
* an attribute dependency ``X → Y`` where ``X`` and ``Y`` are conjunctions of
  comparison literals over linear arithmetic expressions of ``Q[x̄]``.

A match ``h(x̄)`` of ``Q`` in ``G`` *violates* φ when ``h(x̄) ⊨ X`` but
``h(x̄) ⊭ Y``; ``G ⊨ φ`` when no match violates it.

The classes here also expose the special cases the paper relates NGDs to:

* **GFDs** (graph functional dependencies): literals restricted to bare terms
  connected with equality;
* **CFDs** (relational conditional functional dependencies): GFDs over a
  single-node "tuple pattern" whose attributes model relation columns —
  :func:`cfd_as_ngd` builds that embedding.

By default NGD construction enforces the *linear* fragment (the decidable
class of Theorems 1 and 2).  Passing ``allow_nonlinear=True`` opts into the
extended class of Theorem 3, which the library accepts for validation (which
stays coNP) but whose satisfiability/implication the checkers refuse.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import Optional, Union

from repro.errors import DependencyError, NonLinearExpressionError
from repro.expr.format import format_literal_set
from repro.expr.literals import Literal, LiteralSet
from repro.expr.parser import parse_literal_set
from repro.graph.pattern import Pattern

__all__ = ["NGD", "RuleSet", "gfd", "cfd_as_ngd"]


class NGD:
    """A numeric graph dependency ``Q[x̄](X → Y)``."""

    def __init__(
        self,
        pattern: Pattern,
        premise: LiteralSet | Iterable[Literal] = (),
        conclusion: LiteralSet | Iterable[Literal] = (),
        name: Optional[str] = None,
        allow_nonlinear: bool = False,
    ) -> None:
        self.pattern = pattern
        self.premise = premise if isinstance(premise, LiteralSet) else LiteralSet(premise)
        self.conclusion = (
            conclusion if isinstance(conclusion, LiteralSet) else LiteralSet(conclusion)
        )
        self.name = name or f"ngd_{pattern.name}"
        self.allow_nonlinear = allow_nonlinear
        self._check_well_formed()

    # ------------------------------------------------------------ validation

    def _check_well_formed(self) -> None:
        pattern_variables = set(self.pattern.variables)
        used = self.premise.pattern_variables() | self.conclusion.pattern_variables()
        unknown = used - pattern_variables
        if unknown:
            raise DependencyError(
                f"{self.name}: literals reference variables {sorted(unknown)} "
                f"not bound by pattern {self.pattern.name!r}"
            )
        if not self.allow_nonlinear:
            for literal in self.all_literals():
                if not literal.is_linear():
                    raise NonLinearExpressionError(
                        f"{self.name}: literal {literal} has degree {literal.degree()}; "
                        "NGDs are restricted to linear arithmetic expressions "
                        "(pass allow_nonlinear=True for the extended, undecidable class)"
                    )

    # --------------------------------------------------------------- queries

    @classmethod
    def from_text(
        cls,
        pattern: Pattern,
        premise: str = "",
        conclusion: str = "",
        name: Optional[str] = None,
        allow_nonlinear: bool = False,
    ) -> "NGD":
        """Build an NGD from textual literal sets (see ``repro.expr.parser``)."""
        return cls(
            pattern,
            parse_literal_set(premise),
            parse_literal_set(conclusion),
            name=name,
            allow_nonlinear=allow_nonlinear,
        )

    @classmethod
    def from_dict(cls, document: dict) -> "NGD":
        """Rebuild an NGD from :meth:`to_dict` output.

        The premise and conclusion round-trip through the textual literal
        notation (:mod:`repro.expr.parser`), so a rule file is readable and
        editable by hand.  Raises :class:`DependencyError` on malformed
        documents and the usual parse/validation errors on bad literals.
        """
        if not isinstance(document, dict) or "pattern" not in document:
            raise DependencyError("NGD document must be a dict with a 'pattern' entry")
        premise = document.get("premise", "")
        conclusion = document.get("conclusion", "")
        if not isinstance(premise, str) or not isinstance(conclusion, str):
            raise DependencyError(
                "NGD 'premise' and 'conclusion' must be literal-set strings"
            )
        return cls.from_text(
            Pattern.from_dict(document["pattern"]),
            premise=premise,
            conclusion=conclusion,
            name=document.get("name"),
            allow_nonlinear=bool(document.get("allow_nonlinear", False)),
        )

    def to_dict(self) -> dict:
        """Return a JSON-serialisable description of this NGD.

        Shape: ``{"name", "pattern": Pattern.to_dict(), "premise",
        "conclusion"}`` with the literal sets rendered in the parser's
        textual notation (plus ``"allow_nonlinear": true`` for rules in the
        extended class), so ``NGD.from_dict(ngd.to_dict()) == ngd``.
        """
        document = {
            "name": self.name,
            "pattern": self.pattern.to_dict(),
            "premise": format_literal_set(self.premise),
            "conclusion": format_literal_set(self.conclusion),
        }
        if self.allow_nonlinear:
            document["allow_nonlinear"] = True
        return document

    def all_literals(self) -> Iterator[Literal]:
        """Iterate over the literals of X then Y."""
        yield from self.premise
        yield from self.conclusion

    def variables(self) -> tuple[str, ...]:
        """Return the pattern variable list x̄."""
        return self.pattern.variables

    def attributes_of(self, variable: str) -> frozenset[str]:
        """Return the attribute names the literals read from ``variable``."""
        return frozenset(
            attribute
            for literal in self.all_literals()
            for var_name, attribute in literal.variables()
            if var_name == variable
        )

    def diameter(self) -> int:
        """Return d_Q, the diameter of the pattern (Section 6.1)."""
        return self.pattern.diameter()

    def size(self) -> int:
        """Return |φ|: pattern size plus number of literals (the measure used in bounds)."""
        return self.pattern.size() + len(self.premise) + len(self.conclusion)

    def is_gfd(self) -> bool:
        """Return True when every literal lies in the GFD fragment (terms + equality)."""
        return all(literal.is_gfd_literal() for literal in self.all_literals())

    def is_linear(self) -> bool:
        """Return True when every literal is linear (the decidable NGD class)."""
        return all(literal.is_linear() for literal in self.all_literals())

    def uses_comparison_beyond_equality(self) -> bool:
        """Return True when some literal uses a predicate other than ``=``."""
        from repro.expr.literals import Comparison

        return any(literal.comparison is not Comparison.EQ for literal in self.all_literals())

    def max_expression_degree(self) -> int:
        """Return the maximum degree over all literals (0 when there are none)."""
        return max((literal.degree() for literal in self.all_literals()), default=0)

    # -------------------------------------------------------------- semantics

    def match_satisfies(self, assignment: Mapping[tuple[str, str], object]) -> bool:
        """Return True when a match (given as an attribute assignment) satisfies X → Y.

        The assignment maps ``(variable, attribute)`` pairs to the values
        carried by the matched nodes; missing attributes fail the literal that
        needs them.
        """
        if not self.premise.satisfied_by(assignment):
            return True
        return self.conclusion.satisfied_by(assignment)

    def match_violates(self, assignment: Mapping[tuple[str, str], object]) -> bool:
        """Return True when the match satisfies X but not Y."""
        return not self.match_satisfies(assignment)

    # ---------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NGD):
            return NotImplemented
        return (
            self.pattern == other.pattern
            and self.premise == other.premise
            and self.conclusion == other.conclusion
        )

    def __hash__(self) -> int:
        return hash((self.pattern, self.premise, self.conclusion))

    def __str__(self) -> str:
        return f"{self.name}: {self.pattern.name}[{', '.join(self.pattern.variables)}]({self.premise} → {self.conclusion})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"NGD({self.name!r}, |Q|={self.pattern.size()}, |X|={len(self.premise)}, |Y|={len(self.conclusion)})"


class RuleSet:
    """A set Σ of NGDs used as data quality rules."""

    def __init__(self, rules: Iterable[NGD] = (), name: str = "Σ") -> None:
        self.name = name
        self._rules: list[NGD] = list(rules)

    def add(self, rule: NGD) -> "RuleSet":
        """Append a rule and return self (builder style)."""
        self._rules.append(rule)
        return self

    def __iter__(self) -> Iterator[NGD]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, index: int) -> NGD:
        return self._rules[index]

    def __bool__(self) -> bool:
        return bool(self._rules)

    def rules(self) -> tuple[NGD, ...]:
        """Return the rules in declaration order."""
        return tuple(self._rules)

    def diameter(self) -> int:
        """Return dΣ: the maximum pattern diameter over the rules (Section 6.1)."""
        return max((rule.diameter() for rule in self._rules), default=0)

    def total_size(self) -> int:
        """Return |Σ|: the sum of the rule sizes (used in the cost analyses)."""
        return sum(rule.size() for rule in self._rules)

    def max_pattern_nodes(self) -> int:
        """Return |V_Σ|: the largest number of pattern nodes in any rule."""
        return max((rule.pattern.node_count() for rule in self._rules), default=0)

    def is_linear(self) -> bool:
        """Return True when every rule is in the linear (decidable) fragment."""
        return all(rule.is_linear() for rule in self._rules)

    def restrict(self, count: int) -> "RuleSet":
        """Return a rule set containing the first ``count`` rules (used by ‖Σ‖ sweeps)."""
        return RuleSet(self._rules[:count], name=f"{self.name}[:{count}]")

    def by_name(self, name: str) -> NGD:
        """Return the rule with the given name; raises :class:`DependencyError` when absent."""
        for rule in self._rules:
            if rule.name == name:
                return rule
        raise DependencyError(f"no rule named {name!r} in {self.name}")

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Return ``{"name": ..., "rules": [NGD.to_dict(), ...]}``."""
        return {"name": self.name, "rules": [rule.to_dict() for rule in self._rules]}

    @classmethod
    def from_dict(cls, document: dict) -> "RuleSet":
        """Rebuild a rule set from :meth:`to_dict` output."""
        if not isinstance(document, dict) or not isinstance(document.get("rules"), list):
            raise DependencyError("rule-set document must be a dict with a 'rules' list")
        return cls(
            (NGD.from_dict(entry) for entry in document["rules"]),
            name=document.get("name", "Σ"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise the rule set to a JSON string (the rule-file format).

        The literals are stored in the parser's textual notation, so the
        file is hand-editable; ``RuleSet.from_json(rules.to_json())``
        round-trips exactly (same names, patterns, and literal ASTs).
        """
        return json.dumps(self.to_dict(), indent=indent, ensure_ascii=False)

    @classmethod
    def from_json(cls, text: str) -> "RuleSet":
        """Rebuild a rule set from :meth:`to_json` output."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DependencyError(f"rule-set JSON is malformed: {exc}") from exc
        return cls.from_dict(document)

    def save(self, path: Union[str, Path]) -> None:
        """Write the rule set to ``path`` as JSON (see :meth:`to_json`)."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RuleSet":
        """Load a rule set previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RuleSet({self.name!r}, {len(self._rules)} rules, dΣ={self.diameter()})"


def gfd(
    pattern: Pattern,
    premise: str | LiteralSet = "",
    conclusion: str | LiteralSet = "",
    name: Optional[str] = None,
) -> NGD:
    """Build a GFD (the equality-only fragment) and verify it really is one.

    Raises :class:`DependencyError` when a literal falls outside the fragment.
    """
    premise_set = premise if isinstance(premise, LiteralSet) else parse_literal_set(premise)
    conclusion_set = (
        conclusion if isinstance(conclusion, LiteralSet) else parse_literal_set(conclusion)
    )
    rule = NGD(pattern, premise_set, conclusion_set, name=name)
    if not rule.is_gfd():
        offending = [str(l) for l in rule.all_literals() if not l.is_gfd_literal()]
        raise DependencyError(f"literals {offending} are outside the GFD fragment")
    return rule


def cfd_as_ngd(
    relation: str,
    premise: str,
    conclusion: str,
    name: Optional[str] = None,
) -> NGD:
    """Embed a relational CFD over one relation as an NGD.

    The tuple is modelled as a single pattern node labelled ``relation`` bound
    to variable ``t``; columns become attributes of that node, so a CFD such
    as ``[country = "UK"] → [zip determines street]`` is written with literals
    over ``t.column``.  This is the embedding the paper uses to argue NGDs
    subsume CFDs.
    """
    pattern = Pattern.from_edges(f"cfd_{relation}", nodes=[("t", relation)])
    return NGD.from_text(pattern, premise, conclusion, name=name or f"cfd_{relation}")
