"""Implication analysis and rule-set minimisation.

The implication problem (Σ ⊨ φ?) is Πp2-complete for NGDs (Theorem 1).  The
bounded checker lives in :mod:`repro.core.satisfiability`; this module adds
the practical applications the paper motivates it with (Section 1): removing
redundant rules before they are used for error detection, which directly
shrinks the detection workload.
"""

from __future__ import annotations

from repro.core.ngd import NGD, RuleSet
from repro.core.satisfiability import implies

__all__ = ["implies", "is_redundant", "minimal_cover"]


def is_redundant(rules: RuleSet, candidate: NGD) -> bool:
    """Return True when ``candidate`` is implied by the *other* rules of the set.

    A redundant rule can be dropped from Σ without changing ``Vio(Σ, G)`` for
    any graph G (every violation of the dropped rule is already ruled out or
    caught by the rest).
    """
    others = RuleSet([rule for rule in rules if rule is not candidate], name=f"{rules.name}-others")
    return implies(others, candidate)


def minimal_cover(rules: RuleSet) -> RuleSet:
    """Return a subset of Σ with redundant rules removed (a minimal cover).

    Rules are examined in declaration order; a rule implied by the currently
    kept rules plus the not-yet-examined ones is dropped.  The result is
    equivalent to Σ (implies the same dependencies) but may be smaller, which
    speeds up detection since its cost grows with ‖Σ‖ (Exp-3).
    """
    kept: list[NGD] = list(rules)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        remaining = RuleSet(kept[:index] + kept[index + 1 :])
        if len(remaining) and implies(remaining, candidate):
            kept.pop(index)
            continue
        index += 1
    return RuleSet(kept, name=f"{rules.name}-cover")
