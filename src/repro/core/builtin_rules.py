"""The NGDs and patterns used throughout the paper.

This module materialises, with the exact semantics described in the paper:

* patterns **Q1–Q4** (Figure 2) and the NGDs **φ1–φ4** of Example 3, which
  catch the four inconsistencies of Example 1 / Figure 1;
* the single-node NGDs **φ5–φ9** of Example 5, used to exercise the
  satisfiability checker;
* patterns **Q5–Q7** (Figure 4(o)) and the rules **NGD1–NGD3** of the
  effectiveness study (Exp-5).

Attribute conventions follow the paper: value-carrying nodes (dates, integer
literals, booleans) expose their value through the ``val`` attribute; typed
entity nodes carry domain attributes (``type``, ``numberOfWins``).
"""

from __future__ import annotations

from repro.core.ngd import NGD, RuleSet
from repro.expr.expressions import TermExpression, const, var
from repro.expr.literals import Comparison, Literal, LiteralSet
from repro.expr.terms import Constant
from repro.graph.graph import WILDCARD
from repro.graph.pattern import Pattern

__all__ = [
    "pattern_q1",
    "pattern_q2",
    "pattern_q3",
    "pattern_q4",
    "pattern_q5",
    "pattern_q6",
    "pattern_q7",
    "phi1",
    "phi2",
    "phi3",
    "phi4",
    "phi5",
    "phi6",
    "phi7",
    "phi8",
    "phi9",
    "ngd1",
    "ngd2",
    "ngd3",
    "example_rules",
    "effectiveness_rules",
]


# ---------------------------------------------------------------- Figure 2


def pattern_q1() -> Pattern:
    """Q1: an entity with creation and destruction dates (Yago)."""
    return Pattern.from_edges(
        "Q1",
        nodes=[("x", WILDCARD), ("y", "date"), ("z", "date")],
        edges=[("x", "y", "wasCreatedOnDate"), ("x", "z", "wasDestroyedOnDate")],
    )


def pattern_q2() -> Pattern:
    """Q2: an area with female, male and total population counts (Yago)."""
    return Pattern.from_edges(
        "Q2",
        nodes=[("x", "area"), ("y", "integer"), ("z", "integer"), ("w", "integer")],
        edges=[
            ("x", "y", "femalePopulation"),
            ("x", "z", "malePopulation"),
            ("x", "w", "populationTotal"),
        ],
    )


def pattern_q3() -> Pattern:
    """Q3: two places in the same region with populations and population ranks (DBpedia)."""
    return Pattern.from_edges(
        "Q3",
        nodes=[
            ("x", "place"),
            ("y", "place"),
            ("z", "place"),
            ("m1", "integer"),
            ("m2", "integer"),
            ("n1", "integer"),
            ("n2", "integer"),
        ],
        edges=[
            ("x", "z", "partof"),
            ("y", "z", "partof"),
            ("x", "m1", "population"),
            ("y", "m2", "population"),
            ("x", "n1", "populationRank"),
            ("y", "n2", "populationRank"),
        ],
    )


def pattern_q4() -> Pattern:
    """Q4: two accounts referring to the same company, with status/follower/following counts (Twitter)."""
    return Pattern.from_edges(
        "Q4",
        nodes=[
            ("x", "account"),
            ("y", "account"),
            ("w", "company"),
            ("s1", "boolean"),
            ("s2", "boolean"),
            ("m1", "integer"),
            ("m2", "integer"),
            ("n1", "integer"),
            ("n2", "integer"),
        ],
        edges=[
            ("x", "w", "keys"),
            ("y", "w", "keys"),
            ("x", "s1", "status"),
            ("y", "s2", "status"),
            ("x", "m1", "following"),
            ("y", "m2", "following"),
            ("x", "n1", "follower"),
            ("y", "n2", "follower"),
        ],
    )


# ------------------------------------------------------------- Figure 4(o)


def pattern_q5() -> Pattern:
    """Q5: a person with a birth year and a category (DBpedia)."""
    return Pattern.from_edges(
        "Q5",
        nodes=[("x", "person"), ("y", "integer"), ("z", "string")],
        edges=[("x", "y", "birthYear"), ("x", "z", "category")],
    )


def pattern_q6() -> Pattern:
    """Q6: a major event including a competition with nation and competitor counts."""
    return Pattern.from_edges(
        "Q6",
        nodes=[("w", "major_event"), ("x", "competition"), ("y", "integer"), ("z", "integer")],
        edges=[("w", "x", "includes"), ("x", "y", "competitors"), ("x", "z", "nations")],
    )


def pattern_q7() -> Pattern:
    """Q7: an F1 team and two of its drivers in the same year."""
    return Pattern.from_edges(
        "Q7",
        nodes=[("x", "team"), ("w1", "driver"), ("w2", "driver"), ("y", "year")],
        edges=[
            ("w1", "x", "team"),
            ("w2", "x", "team"),
            ("w1", "y", "year"),
            ("w2", "y", "year"),
            ("x", "y", "year"),
        ],
    )


# ---------------------------------------------------------------- Example 3


def phi1(min_days: int = 1) -> NGD:
    """φ1: an entity cannot be destroyed within ``min_days`` days of its creation."""
    return NGD.from_text(
        pattern_q1(),
        premise="",
        conclusion=f"z.val - y.val >= {min_days}",
        name="phi1",
    )


def phi2() -> NGD:
    """φ2: female population + male population = total population."""
    return NGD.from_text(
        pattern_q2(),
        premise="",
        conclusion="y.val + z.val = w.val",
        name="phi2",
    )


def phi3() -> NGD:
    """φ3: a smaller population implies a larger (worse) population rank."""
    return NGD.from_text(
        pattern_q3(),
        premise="m1.val < m2.val",
        conclusion="n1.val > n2.val",
        name="phi3",
    )


def phi4(weight_following: int = 1, weight_follower: int = 1, threshold: int = 50000) -> NGD:
    """φ4: an account dwarfed in followers/followings by a real account keyed to the same company is fake.

    ``weight_following`` and ``weight_follower`` are the integers a and b of
    Example 3, ``threshold`` is c.
    """
    premise = (
        f"s1.val = 1, {weight_following} * (m1.val - m2.val) "
        f"+ {weight_follower} * (n1.val - n2.val) > {threshold}"
    )
    return NGD.from_text(pattern_q4(), premise=premise, conclusion="s2.val = 0", name="phi4")


# ---------------------------------------------------------------- Example 5


def _single_node_pattern(label: str = WILDCARD, name: str = "Q") -> Pattern:
    return Pattern.from_edges(name, nodes=[("x", label)])


def phi5(label: str = WILDCARD) -> NGD:
    """φ5: every node has A = 7 and B = 7."""
    return NGD.from_text(
        _single_node_pattern(label, "Q_phi5"), premise="", conclusion="x.A = 7, x.B = 7", name="phi5"
    )


def phi6(label: str = WILDCARD) -> NGD:
    """φ6: every node has A + B = 11 (conflicts with φ5 on shared nodes)."""
    return NGD.from_text(
        _single_node_pattern(label, "Q_phi6"), premise="", conclusion="x.A + x.B = 11", name="phi6"
    )


def phi7(label: str = WILDCARD) -> NGD:
    """φ7: A ≤ 3 → B > 6."""
    return NGD.from_text(
        _single_node_pattern(label, "Q_phi7"), premise="x.A <= 3", conclusion="x.B > 6", name="phi7"
    )


def phi8(label: str = WILDCARD) -> NGD:
    """φ8: A > 3 → B > 6."""
    return NGD.from_text(
        _single_node_pattern(label, "Q_phi8"), premise="x.A > 3", conclusion="x.B > 6", name="phi8"
    )


def phi9(label: str = WILDCARD) -> NGD:
    """φ9: every node has B < 6 and A ≠ 0."""
    return NGD.from_text(
        _single_node_pattern(label, "Q_phi9"), premise="", conclusion="x.B < 6, x.A != 0", name="phi9"
    )


# ------------------------------------------------------------------- Exp-5


def ngd1(cutoff_year: int = 1800) -> NGD:
    """NGD1: a person born before ``cutoff_year`` cannot be categorised as living people."""
    literal = Literal(var("z", "val"), Comparison.NE, TermExpression(Constant("living people")))
    return NGD(
        pattern_q5(),
        premise=LiteralSet.of(Literal(var("y", "val"), Comparison.LT, const(cutoff_year))),
        conclusion=LiteralSet.of(literal),
        name="NGD1",
    )


def ngd2() -> NGD:
    """NGD2: in an Olympic competition, participating nations ≤ competitors."""
    premise = Literal(var("w", "type"), Comparison.EQ, TermExpression(Constant("Olympic")))
    conclusion = Literal(var("z", "val"), Comparison.LE, var("y", "val"))
    return NGD(
        pattern_q6(),
        premise=LiteralSet.of(premise),
        conclusion=LiteralSet.of(conclusion),
        name="NGD2",
    )


def ngd3() -> NGD:
    """NGD3: a team's season wins are at least the sum of its two drivers' wins."""
    conclusion = Literal(
        var("x", "numberOfWins"),
        Comparison.GE,
        var("w1", "numberOfWins") + var("w2", "numberOfWins"),
    )
    return NGD(pattern_q7(), conclusion=LiteralSet.of(conclusion), name="NGD3")


# ------------------------------------------------------------------- sets


def example_rules(threshold: int = 50000) -> RuleSet:
    """Return Σ = {φ1, φ2, φ3, φ4}: the rules that catch the Figure 1 inconsistencies."""
    return RuleSet([phi1(), phi2(), phi3(), phi4(threshold=threshold)], name="example-rules")


def effectiveness_rules() -> RuleSet:
    """Return the Exp-5 rule set {NGD1, NGD2, NGD3}."""
    return RuleSet([ngd1(), ngd2(), ngd3()], name="effectiveness-rules")
