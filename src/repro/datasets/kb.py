"""Scaled-down synthetic analogues of the paper's evaluation graphs.

The experiments of Section 7 use DBpedia (28M nodes / 33.4M edges, 200 node
types, 160 edge types), YAGO2 (3.5M / 7.35M, 13/36 types) and Pokec (1.63M /
30.6M, 269/11 types).  Those dumps are not available offline and would not be
tractable for a pure-Python matcher anyway, so this module generates
*structurally analogous* knowledge graphs:

* entities are typed (``type_i`` labels) and carry numeric facts through
  edges to ``integer`` value nodes (``rel_j`` edge labels), exactly the shape
  the example patterns Q1–Q7 rely on;
* entities link to each other with typed relations (``link_j``), giving the
  patterns of diameter ≥ 2 something to traverse;
* a configurable fraction of the numeric facts is perturbed
  (``error_rate``), planting the inconsistencies the NGDs are supposed to
  catch;
* the relative proportions mirror the real datasets: the DBpedia analogue is
  the largest and most heterogeneous, the YAGO2 analogue is small with few
  types, the Pokec analogue is denser in entity-entity links.

Every generator is deterministic given its seed, and ``scale`` rescales node
counts so benchmarks can be enlarged (``REPRO_SCALE``) without touching code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.graph.store import GraphStore

__all__ = ["KBConfig", "knowledge_graph", "dbpedia_like", "yago_like", "pokec_like"]


@dataclass(frozen=True)
class KBConfig:
    """Size and shape parameters of a synthetic knowledge graph."""

    name: str
    num_entities: int
    num_entity_types: int
    num_value_relations: int
    num_link_relations: int
    values_per_entity: int
    links_per_entity: float
    value_pool: int = 2000
    error_rate: float = 0.02
    seed: int = 0
    #: Fraction of entity-entity links whose target is one of the hub entities.
    #: Hubs give the graph the heavy-tailed adjacency lists (celebrities, capital
    #: cities, large companies) that make parallel workloads skewed — the very
    #: skew PIncDect's splitting and rebalancing are designed to absorb.
    hub_link_fraction: float = 0.0
    num_hubs: int = 0

    def scaled(self, scale: float) -> "KBConfig":
        """Return a copy with the entity count rescaled by ``scale``."""
        return self.replace(num_entities=max(10, int(self.num_entities * scale)))

    def replace(self, **overrides: object) -> "KBConfig":
        """Return a copy with selected fields overridden."""
        data = dict(self.__dict__)
        data.update(overrides)
        return KBConfig(**data)  # type: ignore[arg-type]


def knowledge_graph(config: KBConfig, store: str | GraphStore | None = None) -> Graph:
    """Generate a typed knowledge graph with planted numeric inconsistencies.

    Every entity of type ``type_t`` carries ``values_per_entity`` numeric
    facts.  The first two facts of each entity obey the invariant
    ``fact_0 ≤ fact_1`` (think "part ≤ whole": female population ≤ total
    population, nations ≤ competitors); with probability ``error_rate`` the
    invariant is deliberately broken.  The benchmark rule sets assert exactly
    these invariants, so the planted error rate controls the violation counts
    the detectors should find.
    """
    rng = random.Random(config.seed)
    graph = Graph(config.name, store=store)
    entity_ids = []
    for index in range(config.num_entities):
        entity_type = f"type_{index % config.num_entity_types}"
        entity_id = f"{config.name}/e{index}"
        graph.add_node(entity_id, entity_type, {"degree_hint": index % 7})
        entity_ids.append(entity_id)

        base = rng.randrange(config.value_pool // 2)
        whole = base + rng.randrange(config.value_pool // 2)
        if rng.random() < config.error_rate:
            base, whole = whole + 1 + rng.randrange(50), base  # planted "part > whole" error
        facts = [base, whole]
        for extra in range(2, config.values_per_entity):
            facts.append(rng.randrange(config.value_pool))
        for fact_index, value in enumerate(facts):
            relation = f"rel_{fact_index % config.num_value_relations}"
            value_id = f"{entity_id}/v{fact_index}"
            graph.add_node(value_id, "integer", {"val": value})
            graph.add_edge(entity_id, value_id, relation)

    hubs = entity_ids[: config.num_hubs] if config.num_hubs > 0 else []
    total_links = int(config.links_per_entity * config.num_entities)
    placed = 0
    attempts = 0
    while placed < total_links and attempts < 20 * max(1, total_links):
        attempts += 1
        source = rng.choice(entity_ids)
        if hubs and rng.random() < config.hub_link_fraction:
            target = rng.choice(hubs)
        else:
            target = rng.choice(entity_ids)
        if source == target:
            continue
        relation = f"link_{rng.randrange(config.num_link_relations)}"
        if graph.has_edge(source, target, relation):
            continue
        graph.add_edge(source, target, relation)
        placed += 1
    return graph


#: Default configurations; the proportions follow the paper's dataset table.
DBPEDIA_CONFIG = KBConfig(
    name="DBpedia-like",
    num_entities=1400,
    num_entity_types=20,
    num_value_relations=8,
    num_link_relations=8,
    values_per_entity=3,
    links_per_entity=0.45,
    seed=11,
    hub_link_fraction=0.35,
    num_hubs=4,
)
YAGO_CONFIG = KBConfig(
    name="YAGO2-like",
    num_entities=700,
    num_entity_types=6,
    num_value_relations=6,
    num_link_relations=6,
    values_per_entity=3,
    links_per_entity=0.6,
    seed=13,
    hub_link_fraction=0.3,
    num_hubs=3,
)
POKEC_CONFIG = KBConfig(
    name="Pokec-like",
    num_entities=500,
    num_entity_types=10,
    num_value_relations=5,
    num_link_relations=4,
    values_per_entity=3,
    links_per_entity=6.0,
    seed=17,
    hub_link_fraction=0.45,
    num_hubs=5,
)


def dbpedia_like(scale: float = 1.0, error_rate: float | None = None, seed: int | None = None) -> Graph:
    """Return the DBpedia analogue (largest, most heterogeneous)."""
    return _build(DBPEDIA_CONFIG, scale, error_rate, seed)


def yago_like(scale: float = 1.0, error_rate: float | None = None, seed: int | None = None) -> Graph:
    """Return the YAGO2 analogue (small, few types)."""
    return _build(YAGO_CONFIG, scale, error_rate, seed)


def pokec_like(scale: float = 1.0, error_rate: float | None = None, seed: int | None = None) -> Graph:
    """Return the Pokec analogue (densest entity-entity linkage)."""
    return _build(POKEC_CONFIG, scale, error_rate, seed)


def _build(config: KBConfig, scale: float, error_rate: float | None, seed: int | None) -> Graph:
    adjusted = config.scaled(scale)
    overrides: dict[str, object] = {}
    if error_rate is not None:
        overrides["error_rate"] = error_rate
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        adjusted = adjusted.replace(**overrides)
    return knowledge_graph(adjusted)
