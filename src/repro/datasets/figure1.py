"""The four example graphs of Figure 1.

``G1``–``G4`` reproduce, node for node, the real-life inconsistencies the
paper opens with:

* **G1** (Yago): BBC Trust created in 2007 but destroyed in 1946;
* **G2** (Yago): the village Bhonpur with 600 + 722 ≠ 1572 population counts;
* **G3** (DBpedia): Corona has a larger population than Downey but a worse
  (larger) population rank is expected — the recorded ranks are inconsistent;
* **G4** (Twitter): the fake account NatWest_Help keyed to the same company
  as the real NatWest Help support account.

Dates are stored through the ``val`` attribute as days since 1900-01-01 so
that φ1's arithmetic has an integer domain to work on.
"""

from __future__ import annotations

from datetime import date

from repro.graph.graph import Graph

__all__ = ["days_since_epoch", "figure1_g1", "figure1_g2", "figure1_g3", "figure1_g4", "figure1_graphs"]

_EPOCH = date(1900, 1, 1)


def days_since_epoch(year: int, month: int = 1, day: int = 1) -> int:
    """Return the number of days between 1900-01-01 and the given date."""
    return (date(year, month, day) - _EPOCH).days


def figure1_g1() -> Graph:
    """G1: BBC Trust with inconsistent creation/destruction dates (Yago)."""
    graph = Graph("G1")
    graph.add_node("BBC_Trust", "institution")
    graph.add_node("created", "date", {"val": days_since_epoch(2007, 1, 1)})
    graph.add_node("destroyed", "date", {"val": days_since_epoch(1946, 8, 28)})
    graph.add_edge("BBC_Trust", "created", "wasCreatedOnDate")
    graph.add_edge("BBC_Trust", "destroyed", "wasDestroyedOnDate")
    return graph


def figure1_g2() -> Graph:
    """G2: Bhonpur with female + male ≠ total population (Yago)."""
    graph = Graph("G2")
    graph.add_node("Bhonpur", "area")
    graph.add_node("female", "integer", {"val": 600})
    graph.add_node("male", "integer", {"val": 722})
    graph.add_node("total", "integer", {"val": 1572})
    graph.add_edge("Bhonpur", "female", "femalePopulation")
    graph.add_edge("Bhonpur", "male", "malePopulation")
    graph.add_edge("Bhonpur", "total", "populationTotal")
    return graph


def figure1_g3() -> Graph:
    """G3: Corona and Downey with inconsistent population ranks (DBpedia)."""
    graph = Graph("G3")
    graph.add_node("California", "place")
    for name, population, rank in (("Corona", 160000, 33), ("Downey", 111772, 11)):
        graph.add_node(name, "place")
        graph.add_node(f"{name}_pop", "integer", {"val": population})
        graph.add_node(f"{name}_rank", "integer", {"val": rank})
        graph.add_edge(name, "California", "partof")
        graph.add_edge(name, f"{name}_pop", "population")
        graph.add_edge(name, f"{name}_rank", "populationRank")
    return graph


def figure1_g4() -> Graph:
    """G4: the real NatWest Help account and the fake NatWest_Help account (Twitter)."""
    graph = Graph("G4")
    graph.add_node("NatWest", "company")
    accounts = (
        ("NatWest Help", 1, 22000, 75900),
        ("NatWest_Help", 1, 1, 2),
    )
    for name, status, following, followers in accounts:
        graph.add_node(name, "account")
        graph.add_node(f"{name}/status", "boolean", {"val": status})
        graph.add_node(f"{name}/following", "integer", {"val": following})
        graph.add_node(f"{name}/follower", "integer", {"val": followers})
        graph.add_edge(name, "NatWest", "keys")
        graph.add_edge(name, f"{name}/status", "status")
        graph.add_edge(name, f"{name}/following", "following")
        graph.add_edge(name, f"{name}/follower", "follower")
    return graph


def figure1_graphs() -> dict[str, Graph]:
    """Return all four example graphs keyed by their paper names."""
    return {"G1": figure1_g1(), "G2": figure1_g2(), "G3": figure1_g3(), "G4": figure1_g4()}
