"""Benchmark rule sets Σ.

Section 7 mines 100 "meaningful and diverse" NGDs per graph, with pattern
diameters 1–6 and 1–4 literals, and sweeps ‖Σ‖ (Figures 4(f)–(g)) and dΣ
(Figure 4(h)).  This module builds such rule sets directly against the
synthetic knowledge graphs of :mod:`repro.datasets.kb`:

* the graphs are introspected for their entity types, value relations and
  link relations, so every generated pattern is guaranteed to occur;
* rules are instantiated from a library of templates of increasing diameter
  (value stars, link paths of length 1–3 with value comparisons across the
  path), with literal counts between 1 and 4;
* the template asserting the planted invariant ``rel_0.val ≤ rel_1.val``
  catches the planted errors, so violation counts are non-trivial, while the
  remaining templates are (mostly) satisfied and contribute matching work —
  the same mix the paper's discovered rules exhibit.

The rule miner in :mod:`repro.discovery` produces comparable rule sets by
actually mining the graph; the template construction here is deterministic
and orders of magnitude faster, which matters for benchmark setup.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.core.ngd import NGD, RuleSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern

__all__ = ["benchmark_rules", "rules_with_diameter", "graph_schema"]


def graph_schema(graph: Graph) -> dict[str, list[str]]:
    """Return the entity types, value relations and link relations present in a graph.

    Entity types are node labels that have outgoing edges to ``integer``
    nodes; value relations are the labels of those edges; link relations are
    edge labels connecting two entity-typed nodes.
    """
    entity_types: Counter[str] = Counter()
    value_relations: Counter[str] = Counter()
    link_relations: Counter[str] = Counter()
    for edge in graph.edges():
        source_label = graph.node(edge.source).label
        target_label = graph.node(edge.target).label
        if target_label == "integer" and source_label != "integer":
            entity_types[source_label] += 1
            value_relations[edge.label] += 1
        elif source_label != "integer" and target_label != "integer":
            link_relations[edge.label] += 1
    return {
        "entity_types": [label for label, _ in entity_types.most_common()],
        "value_relations": [label for label, _ in value_relations.most_common()],
        "link_relations": [label for label, _ in link_relations.most_common()],
    }


def _value_star(entity_type: str, relations: list[str], arms: int, name: str) -> Pattern:
    """A pattern: one entity of ``entity_type`` with ``arms`` value nodes (diameter 2)."""
    nodes = [("x", entity_type)] + [(f"a{i}", "integer") for i in range(arms)]
    edges = [("x", f"a{i}", relations[i % len(relations)]) for i in range(arms)]
    return Pattern.from_edges(name, nodes=nodes, edges=edges)


def _link_path(
    entity_types: list[str],
    link_relations: list[str],
    value_relations: list[str],
    hops: int,
    name: str,
) -> Pattern:
    """A pattern: a path of ``hops`` link edges, with a value node at each end.

    Diameter = hops + 2 (value node – entity … entity – value node).
    """
    nodes = [(f"x{i}", entity_types[i % len(entity_types)]) for i in range(hops + 1)]
    nodes += [("a", "integer"), ("b", "integer")]
    edges = [
        (f"x{i}", f"x{i + 1}", link_relations[i % len(link_relations)]) for i in range(hops)
    ]
    edges += [
        ("x0", "a", value_relations[0]),
        (f"x{hops}", "b", value_relations[1 % len(value_relations)]),
    ]
    return Pattern.from_edges(name, nodes=nodes, edges=edges)


def _template_rules(schema: dict[str, list[str]], seed: int) -> list[NGD]:
    """Instantiate the full template library against a graph schema (diameters 1–6)."""
    rng = random.Random(seed)
    entity_types = schema["entity_types"] or ["type_0"]
    value_relations = schema["value_relations"] or ["rel_0", "rel_1"]
    link_relations = schema["link_relations"] or ["link_0"]
    rules: list[NGD] = []
    counter = 0

    def next_name(diameter: int) -> str:
        nonlocal counter
        counter += 1
        return f"bench_d{diameter}_{counter}"

    for entity_type in entity_types:
        # diameter 1: a single value edge, sanity literal (no violations, pure matching work)
        pattern = Pattern.from_edges(
            f"Q_{entity_type}_single",
            nodes=[("x", entity_type), ("a", "integer")],
            edges=[("x", "a", value_relations[0])],
        )
        rules.append(NGD.from_text(pattern, "", "a.val >= 0", name=next_name(1)))

        # diameter 2: the planted invariant rel_0.val <= rel_1.val (catches errors)
        star = _value_star(entity_type, value_relations, 2, f"Q_{entity_type}_star2")
        rules.append(NGD.from_text(star, "", "a0.val <= a1.val", name=next_name(2)))

        # diameter 2, conditional variant with 2 premise literals
        star_b = _value_star(entity_type, value_relations, 2, f"Q_{entity_type}_star2b")
        threshold = rng.randrange(100, 900)
        rules.append(
            NGD.from_text(
                star_b,
                f"a0.val >= 0, a0.val > {threshold}",
                "a1.val >= a0.val",
                name=next_name(2),
            )
        )

        # diameter 2 with 3 value arms and an additive literal
        if len(value_relations) >= 3:
            star3 = _value_star(entity_type, value_relations, 3, f"Q_{entity_type}_star3")
            rules.append(
                NGD.from_text(
                    star3,
                    "",
                    "a0.val + a1.val + a2.val >= 0, a0.val <= a1.val",
                    name=next_name(2),
                )
            )

        # diameters 3-6: link paths with cross-entity comparisons
        for hops in (1, 2, 3, 4):
            diameter = hops + 2
            path = _link_path(
                [entity_type] + entity_types,
                link_relations,
                value_relations,
                hops,
                f"Q_{entity_type}_path{hops}",
            )
            bound = rng.randrange(2000, 4500)
            premise = f"a.val >= {rng.randrange(0, 400)}"
            conclusion = f"a.val + b.val <= {bound}, b.val >= 0"
            rules.append(NGD.from_text(path, premise, conclusion, name=next_name(diameter)))

    return rules


def benchmark_rules(
    graph: Graph,
    count: int = 50,
    max_diameter: int = 5,
    seed: int = 0,
) -> RuleSet:
    """Return a benchmark rule set of ``count`` NGDs with diameters ≤ ``max_diameter``."""
    schema = graph_schema(graph)
    rules = [rule for rule in _template_rules(schema, seed) if rule.diameter() <= max_diameter]
    if not rules:
        raise ValueError("no benchmark rules could be generated for this graph")
    # cycle deterministically if more rules are requested than templates instantiated
    selected = [rules[i % len(rules)] for i in range(count)]
    renamed = [
        NGD(rule.pattern, rule.premise, rule.conclusion, name=f"{rule.name}_{i}")
        for i, rule in enumerate(selected)
    ]
    return RuleSet(renamed, name=f"Σ({graph.name},{count},d{max_diameter})")


def rules_with_diameter(graph: Graph, diameter: int, count: int = 50, seed: int = 0) -> RuleSet:
    """Return a rule set whose maximum pattern diameter is exactly ``diameter`` (Figure 4(h) sweep).

    The sets are built cumulatively: the pool contains every template of
    diameter ≤ ``diameter`` ordered by increasing diameter, and the selection
    cycles through it (always including at least one rule of the exact target
    diameter).  A sweep over growing dΣ therefore keeps the shallow rules and
    swaps progressively more of the repeats for deeper — more expensive —
    patterns, which is the monotone workload growth Figure 4(h) plots.
    """
    schema = graph_schema(graph)
    all_rules = sorted(_template_rules(schema, seed), key=lambda rule: rule.diameter())
    at_diameter = [rule for rule in all_rules if rule.diameter() == diameter]
    pool = [rule for rule in all_rules if rule.diameter() <= diameter]
    if not at_diameter:
        raise ValueError(f"no benchmark template has diameter {diameter}")
    selected = [at_diameter[0]] + [pool[i % len(pool)] for i in range(count - 1)]
    renamed = [
        NGD(rule.pattern, rule.premise, rule.conclusion, name=f"{rule.name}_d{diameter}_{i}")
        for i, rule in enumerate(selected)
    ]
    return RuleSet(renamed, name=f"Σ({graph.name},dΣ={diameter})")
