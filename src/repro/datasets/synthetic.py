"""The Synthetic graph family of Section 7.

The paper generates synthetic graphs controlled by |V| and |E| with labels
from an alphabet of 500 symbols and integer values from a pool of 2000.  For
the benchmark rule sets to have something to catch, this reproduction keeps
the same control knobs but layers the knowledge-graph motif of
``repro.datasets.kb`` (typed entities with numeric facts and planted errors)
on top of a uniform random background, so the graph has both the random bulk
(driving candidate-scan costs) and structured matches (driving expansion and
violation costs).
"""

from __future__ import annotations

from repro.datasets.kb import KBConfig, knowledge_graph
from repro.graph.generators import random_labeled_graph
from repro.graph.graph import Graph
from repro.graph.store import GraphStore

__all__ = ["synthetic_graph", "SYNTHETIC_SIZES"]

#: The (|V|, |E|) pairs of Figure 4(e), rescaled 1e-4 by default (10M → 1k).
SYNTHETIC_SIZES = [
    (10_000_000, 20_000_000),
    (20_000_000, 40_000_000),
    (30_000_000, 60_000_000),
    (60_000_000, 80_000_000),
    (80_000_000, 100_000_000),
]


def synthetic_graph(
    num_nodes: int = 4000,
    num_edges: int = 6000,
    structured_fraction: float = 0.5,
    num_labels: int = 500,
    value_pool: int = 2000,
    error_rate: float = 0.02,
    seed: int = 0,
    name: str = "Synthetic",
    store: str | GraphStore | None = None,
) -> Graph:
    """Return a synthetic graph of roughly ``num_nodes`` nodes and ``num_edges`` edges.

    ``structured_fraction`` of the nodes belong to the knowledge-graph motif
    (typed entities + value nodes + planted errors); the rest are uniform
    random labelled nodes and edges, mirroring the unconstrained synthetic
    generator of the paper.  ``store`` selects the storage backend, letting
    the storage benchmarks build byte-identical graphs on every engine.
    """
    structured_entities = max(5, int(num_nodes * structured_fraction / 4))
    config = KBConfig(
        name=name,
        num_entities=structured_entities,
        num_entity_types=12,
        num_value_relations=6,
        num_link_relations=6,
        values_per_entity=3,
        links_per_entity=1.0,
        value_pool=value_pool,
        error_rate=error_rate,
        seed=seed,
    )
    graph = knowledge_graph(config, store=store)

    background_nodes = max(0, num_nodes - graph.node_count())
    background_edges = max(0, num_edges - graph.edge_count())
    if background_nodes > 1:
        background = random_labeled_graph(
            background_nodes,
            background_edges,
            num_labels=num_labels,
            num_edge_labels=30,
            value_pool=value_pool,
            seed=seed + 1,
            name="background",
        )
        for node in background.nodes():
            graph.add_node(f"bg/{node.id}", node.label, node.attributes)
        for edge in background.edges():
            graph.add_edge(f"bg/{edge.source}", f"bg/{edge.target}", edge.label)
    return graph
