"""Example and benchmark datasets: Figure 1 graphs, KB analogues, synthetic graphs, rule sets."""

from repro.datasets.figure1 import (
    days_since_epoch,
    figure1_g1,
    figure1_g2,
    figure1_g3,
    figure1_g4,
    figure1_graphs,
)
from repro.datasets.kb import KBConfig, dbpedia_like, knowledge_graph, pokec_like, yago_like
from repro.datasets.rules import benchmark_rules, graph_schema, rules_with_diameter
from repro.datasets.synthetic import SYNTHETIC_SIZES, synthetic_graph

__all__ = [
    "KBConfig",
    "SYNTHETIC_SIZES",
    "benchmark_rules",
    "days_since_epoch",
    "dbpedia_like",
    "figure1_g1",
    "figure1_g2",
    "figure1_g3",
    "figure1_g4",
    "figure1_graphs",
    "graph_schema",
    "knowledge_graph",
    "pokec_like",
    "rules_with_diameter",
    "synthetic_graph",
    "yago_like",
]
