"""repro — a reproduction of "Catching Numeric Inconsistencies in Graphs" (SIGMOD 2018).

The package implements numeric graph dependencies (NGDs), their static
analyses, and the (incremental, parallel) error-detection algorithms of the
paper, together with the substrates they need: a property-graph store,
pattern matching by homomorphism, graph partitioning, a cluster simulator, a
rule miner, and synthetic analogues of the evaluation datasets.

Typical usage — a :class:`Detector` session unifies the paper's four
algorithms (Dect / IncDect / PDect / PIncDect) behind one configuration
surface with streaming and early termination::

    from repro import Detector, DetectionOptions, Graph
    from repro.core import phi2

    graph = Graph()
    graph.add_node("bhonpur", "area")
    graph.add_node("f", "integer", {"val": 600})
    graph.add_node("m", "integer", {"val": 722})
    graph.add_node("t", "integer", {"val": 1572})
    graph.add_edge("bhonpur", "f", "femalePopulation")
    graph.add_edge("bhonpur", "m", "malePopulation")
    graph.add_edge("bhonpur", "t", "populationTotal")

    detector = Detector([phi2()], options=DetectionOptions(max_violations=10))
    for violation in detector.stream(graph):   # the Figure 1 population error
        print(violation)
    result = detector.run(graph)               # or batch: a DetectionResult

Rule sets are data: ``RuleSet.to_json`` / ``RuleSet.from_json`` round-trip
rules through the textual literal notation, and the ``repro-detect`` CLI
(``run`` / ``incremental`` / ``rules`` / ``serve`` subcommands) drives
everything from the shell.  Violations are data too —
``Violation.to_dict`` / ``ViolationSet.to_json`` /
``ViolationDelta.to_dict`` define the wire form shared by the CLI's JSON
output and the streaming detection server in :mod:`repro.service`
(``repro-detect serve``: a graph registry with versioned updates, NDJSON
violation streams with per-request budgets, and continuous incremental
sessions).  The module-level functions ``dect`` / ``inc_dect`` / ``p_dect``
/ ``pinc_dect`` remain as the compatibility layer over the session API.
"""

from repro.core import (
    NGD,
    RuleSet,
    Violation,
    ViolationDelta,
    ViolationSet,
    find_violations,
    graph_satisfies,
    implies,
    is_satisfiable,
    is_strongly_satisfiable,
)
from repro.detect import (
    BalancingPolicy,
    CallbackSink,
    CollectingSink,
    DetectionBudget,
    DetectionOptions,
    Detector,
    ViolationEvent,
    ViolationSink,
    dect,
    inc_dect,
    p_dect,
    pinc_dect,
)
from repro.errors import ReproError
from repro.expr import (
    Comparison,
    Literal,
    LiteralSet,
    format_literal,
    format_literal_set,
    parse_expression,
    parse_literal,
    parse_literal_set,
)
from repro.graph import (
    BatchUpdate,
    Graph,
    Pattern,
    UpdateGenerator,
    apply_update,
)

__version__ = "1.2.0"

__all__ = [
    "BalancingPolicy",
    "BatchUpdate",
    "CallbackSink",
    "CollectingSink",
    "Comparison",
    "DetectionBudget",
    "DetectionOptions",
    "Detector",
    "Graph",
    "Literal",
    "LiteralSet",
    "NGD",
    "Pattern",
    "ReproError",
    "RuleSet",
    "UpdateGenerator",
    "Violation",
    "ViolationDelta",
    "ViolationEvent",
    "ViolationSet",
    "ViolationSink",
    "__version__",
    "apply_update",
    "dect",
    "find_violations",
    "format_literal",
    "format_literal_set",
    "graph_satisfies",
    "implies",
    "inc_dect",
    "is_satisfiable",
    "is_strongly_satisfiable",
    "p_dect",
    "parse_expression",
    "parse_literal",
    "parse_literal_set",
    "pinc_dect",
]
