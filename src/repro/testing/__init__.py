"""Test-support utilities shipped with the library.

Only deterministic fault injection lives here today (:mod:`repro.testing.faults`);
it ships in the package proper — not under ``tests/`` — because benchmarks,
the CI chaos job, and operators reproducing an incident all need it without
a test checkout.
"""

from repro.testing.faults import (
    FAULT_KINDS,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    WalFaultInjector,
    WorkerFaultInjector,
    resolve_fault_plan,
    wal_fault_injector,
)

__all__ = [
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "WalFaultInjector",
    "WorkerFaultInjector",
    "resolve_fault_plan",
    "wal_fault_injector",
]
