"""Deterministic fault injection for exercising recovery paths on purpose.

Every fault-tolerance path in the executor and the storage layer is driven
by events that are rare in development and routine in production: a worker
SIGKILLed by the OOM killer, a result queue that cannot accept a message, a
disk that refuses an fsync.  This module makes those events *schedulable*:
a :class:`FaultPlan` describes exactly which fault fires, in which process,
at which deterministic point — so tests, benchmarks, and the CI chaos job
exercise recovery on purpose instead of waiting for production to.

The plan travels through the ``REPRO_FAULTS`` environment variable (worker
processes inherit the environment under both ``fork`` and ``spawn``, so no
plumbing is needed through the execution stack) and is **off by default**:
when the variable is unset, :func:`resolve_fault_plan` returns ``None`` and
the hot paths pay a single ``is not None`` check per expansion.

Spec grammar (``REPRO_FAULTS``)::

    plan   := fault (";" fault)*
    fault  := kind (":" field ("," field)*)?
    field  := name "=" value
    kind   := "worker_death" | "hang_worker" | "slow_worker"
            | "queue_put" | "wal_fsync"

Fields (all optional):

``worker``
    Target worker id (default: any worker).
``epoch``
    Target incarnation — 0 is the original process, each supervised
    restart increments it.  Default: every incarnation, which makes a
    repeatedly-dying worker (a *poison* workload) out of ``worker_death``.
``after``
    Fire at the ``after``-th eligible event **in that process** — work
    units expanded for worker faults, result-queue puts for ``queue_put``,
    fsyncs for ``wal_fsync``.  When omitted it is derived from ``seed`` by
    a stable hash, so the same spec + seed always fails at the same point.
``times``
    How many times a repeatable fault (``queue_put``, ``wal_fsync``) fires
    (default 1, ``-1`` = unlimited).  One-shot faults ignore it.
``delay``
    Seconds slept per unit by ``slow_worker`` (default 0.01).
``seed``
    Determinism seed used when ``after`` is omitted (default 0).

Trigger points count *deterministic events* (units expanded, queue puts,
fsyncs), never wall-clock, so the same spec reproduces the same failure on
any machine.  Example specs::

    worker_death:worker=0,epoch=0,after=5    # kill worker 0's first
                                             # incarnation at its 5th unit
    worker_death:worker=1,after=3            # poison: every incarnation of
                                             # worker 1 dies at unit 3
    slow_worker:worker=2,after=1,delay=0.02  # straggler from the start
    wal_fsync:after=1                        # first WAL fsync fails once
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "WorkerFaultInjector",
    "WalFaultInjector",
    "resolve_fault_plan",
    "wal_fault_injector",
]

#: Environment variable carrying the serialized fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Every fault kind the spec grammar accepts.
FAULT_KINDS = ("worker_death", "hang_worker", "slow_worker", "queue_put", "wal_fsync")

#: Kinds that run inside executor worker processes.
_WORKER_KINDS = ("worker_death", "hang_worker", "slow_worker", "queue_put")

_INT_FIELDS = ("worker", "epoch", "after", "times", "seed")
_FLOAT_FIELDS = ("delay",)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what fires, where, and at which event count."""

    kind: str
    worker: Optional[int] = None
    epoch: Optional[int] = None
    after: Optional[int] = None
    times: int = 1
    delay: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if self.after is not None and self.after < 1:
            raise ReproError("fault field 'after' must be >= 1")

    def trigger_point(self) -> int:
        """The deterministic event count this fault fires at.

        Explicit ``after`` wins; otherwise the point is derived from
        ``seed`` (and the spec's identity) by a stable hash — same spec +
        seed, same failure point, on every machine.
        """
        if self.after is not None:
            return self.after
        digest = zlib.crc32(
            f"{self.seed}:{self.kind}:{self.worker}:{self.epoch}".encode()
        )
        return 1 + digest % 16

    def matches_worker(self, worker_id: int, epoch: int) -> bool:
        """Whether this spec is armed inside the given worker incarnation."""
        if self.kind not in _WORKER_KINDS:
            return False
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.epoch is not None and self.epoch != epoch:
            return False
        return True

    def to_text(self) -> str:
        """Serialize back to the spec grammar (round-trips through parse)."""
        fields = []
        for name in ("worker", "epoch", "after"):
            value = getattr(self, name)
            if value is not None:
                fields.append(f"{name}={value}")
        if self.times != 1:
            fields.append(f"times={self.times}")
        if self.kind == "slow_worker":
            fields.append(f"delay={self.delay}")
        if self.seed:
            fields.append(f"seed={self.seed}")
        return self.kind + (":" + ",".join(fields) if fields else "")


class FaultPlan:
    """A parsed, serializable schedule of deterministic faults."""

    def __init__(self, specs) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        specs = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, tail = part.partition(":")
            kwargs: dict = {}
            if tail:
                for item in tail.split(","):
                    name, sep, value = item.partition("=")
                    name = name.strip()
                    if not sep or not name:
                        raise ReproError(f"malformed fault field {item!r} in {part!r}")
                    try:
                        if name in _INT_FIELDS:
                            kwargs[name] = int(value)
                        elif name in _FLOAT_FIELDS:
                            kwargs[name] = float(value)
                        else:
                            raise ReproError(
                                f"unknown fault field {name!r} in {part!r}"
                            )
                    except ValueError as exc:
                        raise ReproError(
                            f"bad value for fault field {name!r} in {part!r}"
                        ) from exc
            specs.append(FaultSpec(kind=kind.strip(), **kwargs))
        if not specs:
            raise ReproError(f"fault plan {text!r} contains no faults")
        return cls(specs)

    def to_text(self) -> str:
        """Serialize to the spec grammar; ``parse`` round-trips it."""
        return ";".join(spec.to_text() for spec in self.specs)

    def for_worker(self, worker_id: int, epoch: int) -> Optional["WorkerFaultInjector"]:
        """The armed injector for one worker incarnation, or None."""
        specs = [spec for spec in self.specs if spec.matches_worker(worker_id, epoch)]
        return WorkerFaultInjector(specs) if specs else None

    def for_wal(self) -> Optional["WalFaultInjector"]:
        """The armed injector for WAL fsyncs, or None."""
        specs = [spec for spec in self.specs if spec.kind == "wal_fsync"]
        return WalFaultInjector(specs) if specs else None


class _Armed:
    """Mutable per-process trigger state for one spec."""

    __slots__ = ("spec", "point", "fired")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.point = spec.trigger_point()
        self.fired = 0

    def may_fire(self) -> bool:
        return self.spec.times < 0 or self.fired < self.spec.times


class WorkerFaultInjector:
    """Per-incarnation fault actor for one executor worker.

    Counters are process-local and reset with each incarnation — cross-
    restart targeting uses the spec's ``epoch`` field, which the supervisor
    increments on every respawn.
    """

    def __init__(self, specs) -> None:
        self._units = 0
        self._puts = 0
        self._on_unit = [_Armed(s) for s in specs if s.kind != "queue_put"]
        self._on_put = [_Armed(s) for s in specs if s.kind == "queue_put"]

    def on_unit(self) -> None:
        """Called before each work-unit expansion; may kill/hang/slow."""
        self._units += 1
        for armed in self._on_unit:
            kind = armed.spec.kind
            if kind == "slow_worker":
                if self._units >= armed.point:
                    time.sleep(armed.spec.delay)
            elif self._units == armed.point:
                if kind == "worker_death":
                    # the real failure mode under test: no cleanup, no
                    # goodbye message — exactly what the OOM killer does
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "hang_worker":
                    # a wedged worker that survives SIGTERM: forces the
                    # supervisor's terminate -> kill escalation
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    while True:
                        time.sleep(0.25)

    def on_put(self) -> None:
        """Called before result-queue puts; may raise an injected OSError."""
        self._puts += 1
        for armed in self._on_put:
            if self._puts >= armed.point and armed.may_fire():
                armed.fired += 1
                raise OSError(
                    f"injected result-queue put failure (put #{self._puts})"
                )


class WalFaultInjector:
    """Per-log fault actor for WAL fsyncs (lives in the parent process)."""

    def __init__(self, specs) -> None:
        self._fsyncs = 0
        self._armed = [_Armed(s) for s in specs]

    def on_fsync(self) -> None:
        """Called before each WAL fsync; may raise an injected OSError."""
        self._fsyncs += 1
        for armed in self._armed:
            if self._fsyncs >= armed.point and armed.may_fire():
                armed.fired += 1
                raise OSError(f"injected WAL fsync failure (fsync #{self._fsyncs})")


def resolve_fault_plan(text: Optional[str] = None) -> Optional[FaultPlan]:
    """Return the active :class:`FaultPlan`, or None when injection is off.

    ``text`` overrides the environment (for direct library use); otherwise
    the plan comes from ``REPRO_FAULTS``.  Callers keep the ``None`` and
    skip every hook — zero hot-path overhead when injection is off.
    """
    raw = text if text is not None else os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    return FaultPlan.parse(raw)


def wal_fault_injector() -> Optional[WalFaultInjector]:
    """Convenience: the armed WAL injector from the environment, or None."""
    plan = resolve_fault_plan()
    return plan.for_wal() if plan is not None else None
