"""Lightweight span tracing with a ring-buffer flight recorder.

A :class:`Span` is a named interval with a ``trace_id`` shared by every
span of one logical operation (a detection run, an HTTP request), its own
``span_id``, an optional ``parent_id``, a wall-clock start, a monotonic
duration, and a free-form attribute dict.  The current span propagates
through a :mod:`contextvars` variable so nested instrumentation picks up
its parent automatically; code that crosses generator or process
boundaries can pass the parent explicitly instead.

Completed spans land in the :class:`FlightRecorder` — a bounded deque, so
the service can expose recent traces (``GET /debug/traces``) without
unbounded memory.  Worker processes record into their own recorder and
ship completed spans back as plain dicts (:meth:`Span.to_dict`), which
the parent replays into its recorder.

Like the metrics registry, tracing is observe-only and must never perturb
detection output; with ``REPRO_OBS=off`` :func:`repro.obs.span` yields a
shared :data:`NULL_SPAN` and records nothing.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "FlightRecorder", "current_span_var", "new_id"]


def new_id() -> str:
    """A 16-hex-char random identifier (cheap, collision-safe enough)."""
    return os.urandom(8).hex()


class Span:
    """One timed interval of a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_time",
        "_start_mono",
        "duration",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attributes: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id or new_id()
        self.span_id = new_id()
        self.parent_id = parent_id
        self.start_time = time.time()
        self._start_mono = time.monotonic()
        self.duration: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes or {})

    def set(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def add(self, key: str, amount: float) -> None:
        self.attributes[key] = self.attributes.get(key, 0) + amount  # type: ignore[operator]

    def finish(self) -> float:
        if self.duration is None:
            self.duration = time.monotonic() - self._start_mono
        return self.duration

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Span({self.name!r}, trace={self.trace_id}, dur={self.duration})"


class NullSpan:
    """Shared no-op stand-in when observability is disabled."""

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    name = ""
    duration: Optional[float] = None
    attributes: Dict[str, object] = {}

    def set(self, **attributes: object) -> None:
        pass

    def add(self, key: str, amount: float) -> None:
        pass

    def finish(self) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = NullSpan()

current_span_var: ContextVar[Optional[Span]] = ContextVar("repro_current_span", default=None)


class FlightRecorder:
    """Bounded buffer of completed spans (most recent ``capacity``)."""

    def __init__(self, capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span.to_dict())

    def record_dict(self, payload: dict) -> None:
        """Replay a completed span shipped from another process."""
        if payload:
            with self._lock:
                self._spans.append(dict(payload))

    def snapshot(self, limit: Optional[int] = None) -> List[dict]:
        """Most recent spans, newest last."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def trace(self, trace_id: str) -> List[dict]:
        """Every recorded span of one trace, in recording order."""
        with self._lock:
            return [span for span in self._spans if span.get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


@contextlib.contextmanager
def span_scope(
    recorder: FlightRecorder,
    name: str,
    parent: Optional[Span] = None,
    trace_id: Optional[str] = None,
    **attributes: object,
) -> Iterator[Span]:
    """Open a span, make it current, record it on exit.

    The parent defaults to the contextvar's current span; pass ``parent``
    (or a bare ``trace_id``) explicitly when crossing a generator or
    process boundary where the context variable is not reliable.
    """
    if parent is None:
        parent = current_span_var.get()
    if parent is not None and not isinstance(parent, NullSpan):
        span = Span(name, trace_id=parent.trace_id, parent_id=parent.span_id, attributes=attributes)
    else:
        span = Span(name, trace_id=trace_id, attributes=attributes)
    token = current_span_var.set(span)
    try:
        yield span
    finally:
        current_span_var.reset(token)
        span.finish()
        recorder.record(span)


def format_span_tree(spans: List[dict], trace_id: Optional[str] = None) -> str:
    """Render recorded spans of one trace as an indented tree (``--profile``)."""
    if trace_id is not None:
        spans = [span for span in spans if span.get("trace_id") == trace_id]
    if not spans:
        return "(no spans recorded)"
    by_parent: Dict[Optional[str], List[dict]] = {}
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in ids:
            parent = None  # orphan (e.g. parent evicted from the ring) -> root
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.get("start_time") or 0.0)
    lines: List[str] = []

    def walk(parent: Optional[str], depth: int) -> None:
        for span in by_parent.get(parent, []):
            duration = span.get("duration")
            timing = f"{duration * 1000:.2f}ms" if isinstance(duration, (int, float)) else "?"
            attrs = span.get("attributes") or {}
            detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
            line = f"{'  ' * depth}- {span.get('name')} [{timing}]"
            if detail:
                line += f" {detail}"
            lines.append(line)
            walk(span.get("span_id"), depth + 1)

    walk(None, 0)
    return "\n".join(lines)
