"""Observability facade: one import surface for metrics + tracing.

Usage from instrumentation sites::

    from repro import obs

    obs.counter_inc("repro_wal_appends_total")
    obs.histogram_observe("repro_wal_fsync_seconds", value=elapsed)
    with obs.span("detect.run", algorithm="dect") as root:
        ...
        root.set(violations=len(found))

Everything routes through module-level singletons so the whole process
shares one registry and one flight recorder.  The kill switch is the
``REPRO_OBS`` environment variable: any of ``off``/``0``/``false``/
``disabled`` swaps in no-op stubs (:class:`~repro.obs.metrics.NullRegistry`
and a null span scope) at :func:`configure` time.  ``configure()`` is
called lazily on first use and explicitly by tests and worker bootstrap;
it re-reads the environment, so flipping ``REPRO_OBS`` mid-process takes
effect on the next ``configure()`` — not retroactively.

Hard rule for every instrumentation site: **observe, never steer.**  The
detection kernels must produce byte-identical ``ViolationSet``s whether
observability is on or off (enforced by ``tests/test_observability.py``).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Iterator, List, Mapping, Optional, Union

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    render_prometheus,
)
from repro.obs.tracing import (
    NULL_SPAN,
    FlightRecorder,
    NullSpan,
    Span,
    current_span_var,
    format_span_tree,
    new_id,
    span_scope,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "MetricsRegistry",
    "NullRegistry",
    "NullSpan",
    "Span",
    "absorb",
    "absorb_shipped",
    "configure",
    "drain_for_shipping",
    "counter_inc",
    "current_span",
    "current_trace_id",
    "dump",
    "enabled",
    "exposition",
    "format_span_tree",
    "gauge_add",
    "gauge_set",
    "histogram_observe",
    "metrics",
    "new_id",
    "record_remote_span",
    "recorder",
    "render_prometheus",
    "reset_for_worker",
    "snapshot",
    "span",
    "time_block",
    "traces",
]

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}

_lock = threading.Lock()
_configured = False
_enabled = True
_registry: Union[MetricsRegistry, NullRegistry] = NullRegistry()
_recorder = FlightRecorder()


def configure(enabled: Optional[bool] = None) -> bool:
    """(Re)resolve the enabled flag and rebuild the singletons.

    With ``enabled=None`` the flag comes from ``REPRO_OBS`` (default on).
    Always swaps in a *fresh* registry and recorder so tests and worker
    processes start from zero.
    """
    global _configured, _enabled, _registry, _recorder
    with _lock:
        if enabled is None:
            enabled = os.environ.get("REPRO_OBS", "on").strip().lower() not in _OFF_VALUES
        _enabled = bool(enabled)
        _registry = MetricsRegistry() if _enabled else NullRegistry()
        _recorder = FlightRecorder()
        _configured = True
    return _enabled


def _ensure_configured() -> None:
    if not _configured:
        configure()


def enabled() -> bool:
    _ensure_configured()
    return _enabled


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide registry (null object when disabled)."""
    _ensure_configured()
    return _registry


def recorder() -> FlightRecorder:
    """The process-wide flight recorder (records only when enabled)."""
    _ensure_configured()
    return _recorder


def reset_for_worker() -> None:
    """Bootstrap inside an executor worker process.

    ``fork`` children inherit the parent's shards and recorder contents;
    rebuilding both means every count the worker later ships is a *delta*
    attributable to that worker alone.  Re-reads ``REPRO_OBS`` so spawn
    children (fresh interpreter, env inherited) resolve the same flag.
    """
    configure()


# ------------------------------------------------------------------- metrics


def counter_inc(
    name: str, labels: Optional[Mapping[str, object]] = None, amount: float = 1.0
) -> None:
    _ensure_configured()
    _registry.counter_inc(name, labels, amount)


def gauge_set(name: str, labels: Optional[Mapping[str, object]] = None, value: float = 0.0) -> None:
    _ensure_configured()
    _registry.gauge_set(name, labels, value)


def gauge_add(name: str, labels: Optional[Mapping[str, object]] = None, amount: float = 1.0) -> None:
    _ensure_configured()
    _registry.gauge_add(name, labels, amount)


def histogram_observe(
    name: str, labels: Optional[Mapping[str, object]] = None, value: float = 0.0
) -> None:
    _ensure_configured()
    _registry.histogram_observe(name, labels, value)


def snapshot() -> dict:
    _ensure_configured()
    return _registry.snapshot()


def dump() -> Optional[dict]:
    """Worker wire form: the snapshot, or None when disabled/empty."""
    _ensure_configured()
    if not _enabled:
        return None
    payload = _registry.dump()
    if not payload["counters"] and not payload["gauges"] and not payload["histograms"]:
        return None
    return payload


def absorb(payload: Optional[dict], extra_labels: Optional[Mapping[str, object]] = None) -> None:
    _ensure_configured()
    _registry.absorb(payload, extra_labels)


def drain_for_shipping() -> Optional[dict]:
    """Worker-side: snapshot metrics + completed spans, then reset both.

    Returns a plain picklable dict (``{"metrics": ..., "spans": [...]}``)
    for piggybacking on an executor result-queue message, or None when
    disabled or nothing accumulated.  Because the registry is reset after
    every drain, consecutive payloads are disjoint deltas — the parent can
    absorb each one additively.
    """
    _ensure_configured()
    if not _enabled:
        return None
    payload = {"metrics": _registry.dump(), "spans": _recorder.snapshot()}
    metrics_payload = payload["metrics"]
    if (
        not metrics_payload["counters"]
        and not metrics_payload["gauges"]
        and not metrics_payload["histograms"]
        and not payload["spans"]
    ):
        return None
    configure(_enabled)
    return payload


def absorb_shipped(payload: Optional[dict], extra_labels: Optional[Mapping[str, object]] = None) -> None:
    """Parent-side: merge one :func:`drain_for_shipping` payload."""
    if not payload:
        return
    _ensure_configured()
    if not _enabled:
        return
    _registry.absorb(payload.get("metrics"), extra_labels)
    for span in payload.get("spans") or ():
        _recorder.record_dict(span)


def exposition() -> str:
    _ensure_configured()
    return _registry.exposition()


@contextlib.contextmanager
def time_block(name: str, labels: Optional[Mapping[str, object]] = None) -> Iterator[None]:
    """Observe the wall time of a ``with`` block into a histogram."""
    _ensure_configured()
    if not _enabled:
        yield
        return
    start = time.monotonic()
    try:
        yield
    finally:
        _registry.histogram_observe(name, labels, time.monotonic() - start)


# ------------------------------------------------------------------- tracing


@contextlib.contextmanager
def span(
    name: str,
    parent: Optional[Span] = None,
    trace_id: Optional[str] = None,
    **attributes: object,
) -> Iterator[Union[Span, NullSpan]]:
    """Open a span as a context manager; no-op when disabled."""
    _ensure_configured()
    if not _enabled:
        yield NULL_SPAN
        return
    with span_scope(_recorder, name, parent=parent, trace_id=trace_id, **attributes) as opened:
        yield opened


def current_span() -> Optional[Span]:
    _ensure_configured()
    if not _enabled:
        return None
    return current_span_var.get()


def current_trace_id() -> Optional[str]:
    active = current_span()
    return active.trace_id if active is not None else None


def record_remote_span(payload: Optional[dict]) -> None:
    """Replay a completed span dict shipped from a worker process."""
    _ensure_configured()
    if _enabled and payload:
        _recorder.record_dict(payload)


def traces(limit: Optional[int] = None) -> List[dict]:
    _ensure_configured()
    return _recorder.snapshot(limit)
