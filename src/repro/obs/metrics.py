"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the write side of the observability subsystem
(:mod:`repro.obs`).  Hot paths — per-step candidate counts inside the
match executor, per-unit expansion in the parallel kernels — increment
counters at high frequency, so writes go to *per-thread shards*: each
thread owns a plain dict it mutates without taking any lock, and readers
merge every shard under the registry lock when a snapshot or exposition
is requested.  Gauges are the exception (``set`` is not additive across
threads) and live in a single locked map.

Histograms use fixed bucket boundaries declared up front (per family),
stored as cumulative-style counts at merge time only; the shard keeps a
plain per-bucket count list plus sum/count so the observe path is two
index operations.

Cross-process flow: executor worker processes build a *fresh* registry
(:func:`repro.obs.reset_for_worker`), accumulate deltas locally, and ship
``registry.dump()`` — a plain JSON-serializable dict — back over the
existing result queue.  The parent merges with
``registry.absorb(dump, extra_labels={"worker": wid})`` so per-worker
attribution survives both ``fork`` and ``spawn`` start methods.

Everything here is observe-only: no metric ever influences detection
order, planning, or output.  ``REPRO_OBS=off`` swaps the module-level
singleton for :class:`NullRegistry`, whose methods are empty.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "render_prometheus",
]

# Latency-oriented defaults (seconds): spans fsync (~100us) through slow
# multi-second detection runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, object]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Shard:
    """One thread's unshared write buffer."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        # (name, label_items) -> float
        self.counters: Dict[Tuple[str, LabelItems], float] = {}
        # (name, label_items) -> [bucket_counts..., sum, count]
        self.histograms: Dict[Tuple[str, LabelItems], List[float]] = {}


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms with label sets."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: List[_Shard] = []
        # family name -> (kind, help, buckets-or-None)
        self._families: Dict[str, Tuple[str, str, Optional[Tuple[float, ...]]]] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}

    # ------------------------------------------------------------- metadata

    def describe(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Register family metadata (idempotent; first description wins)."""
        with self._lock:
            if name not in self._families:
                bucket_tuple = tuple(buckets) if buckets is not None else (
                    DEFAULT_BUCKETS if kind == "histogram" else None
                )
                self._families[name] = (kind, help_text, bucket_tuple)

    def _family(self, name: str, kind: str) -> Tuple[str, str, Optional[Tuple[float, ...]]]:
        family = self._families.get(name)
        if family is None:
            self.describe(name, kind)
            family = self._families[name]
        return family

    # ---------------------------------------------------------------- writes

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    def counter_inc(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        amount: float = 1.0,
    ) -> None:
        if name not in self._families:
            self._family(name, "counter")
        key = (name, _label_key(labels))
        counters = self._shard().counters
        counters[key] = counters.get(key, 0.0) + amount

    def gauge_set(
        self, name: str, labels: Optional[Mapping[str, object]] = None, value: float = 0.0
    ) -> None:
        if name not in self._families:
            self._family(name, "gauge")
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def gauge_add(
        self, name: str, labels: Optional[Mapping[str, object]] = None, amount: float = 1.0
    ) -> None:
        if name not in self._families:
            self._family(name, "gauge")
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = self._gauges.get(key, 0.0) + amount

    def histogram_observe(
        self, name: str, labels: Optional[Mapping[str, object]] = None, value: float = 0.0
    ) -> None:
        kind, _, buckets = self._family(name, "histogram")
        if kind != "histogram" or buckets is None:
            return
        key = (name, _label_key(labels))
        histograms = self._shard().histograms
        cells = histograms.get(key)
        if cells is None:
            # bucket counts + [sum, count] appended at the end
            cells = [0.0] * (len(buckets) + 2)
            histograms[key] = cells
        for index, bound in enumerate(buckets):
            if value <= bound:
                cells[index] += 1.0
                break
        cells[-2] += value
        cells[-1] += 1.0

    # ----------------------------------------------------------------- reads

    def snapshot(self) -> dict:
        """Merge every shard into one plain dict (also the wire ``dump``).

        Shape::

            {"families": {name: {"kind": ..., "help": ..., "buckets": [...]}},
             "counters": [[name, [[k, v]...], value], ...],
             "gauges":   [[name, [[k, v]...], value], ...],
             "histograms": [[name, [[k, v]...], [bucket_counts..., sum, count]], ...]}
        """
        with self._lock:
            shards = list(self._shards)
            families = {
                name: {"kind": kind, "help": help_text, "buckets": list(buckets) if buckets else None}
                for name, (kind, help_text, buckets) in self._families.items()
            }
            gauges = dict(self._gauges)
        counters: Dict[Tuple[str, LabelItems], float] = {}
        histograms: Dict[Tuple[str, LabelItems], List[float]] = {}
        for shard in shards:
            for key, value in list(shard.counters.items()):
                counters[key] = counters.get(key, 0.0) + value
            for key, cells in list(shard.histograms.items()):
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = list(cells)
                else:
                    for index, cell in enumerate(cells):
                        merged[index] += cell
        return {
            "families": families,
            "counters": [[name, [list(kv) for kv in key], value] for (name, key), value in counters.items()],
            "gauges": [[name, [list(kv) for kv in key], value] for (name, key), value in gauges.items()],
            "histograms": [
                [name, [list(kv) for kv in key], list(cells)]
                for (name, key), cells in histograms.items()
            ],
        }

    dump = snapshot  # the worker->parent wire form is just the snapshot

    def absorb(self, dump: Optional[dict], extra_labels: Optional[Mapping[str, object]] = None) -> None:
        """Merge a worker's ``dump()`` into this registry.

        ``extra_labels`` (e.g. ``{"worker": 3}``) are appended to every
        sample's label set so per-worker attribution survives the merge.
        Gauges are summed (worker gauges are deltas by construction).
        """
        if not dump:
            return
        extra = _label_key(extra_labels)
        for name, meta in dump.get("families", {}).items():
            self.describe(name, meta.get("kind", "counter"), meta.get("help", ""), meta.get("buckets"))
        shard = self._shard()
        for name, key_items, value in dump.get("counters", []):
            key = (name, tuple(sorted(tuple(map(str, kv)) for kv in key_items) + list(extra)))
            shard.counters[key] = shard.counters.get(key, 0.0) + value
        for name, key_items, cells in dump.get("histograms", []):
            key = (name, tuple(sorted(tuple(map(str, kv)) for kv in key_items) + list(extra)))
            merged = shard.histograms.get(key)
            if merged is None:
                shard.histograms[key] = list(cells)
            else:
                for index, cell in enumerate(cells):
                    merged[index] += cell
        with self._lock:
            for name, key_items, value in dump.get("gauges", []):
                key = (name, tuple(sorted(tuple(map(str, kv)) for kv in key_items) + list(extra)))
                self._gauges[key] = self._gauges.get(key, 0.0) + value

    def value(self, name: str, labels: Optional[Mapping[str, object]] = None) -> float:
        """Read one counter/gauge value from a fresh snapshot (tests, /health)."""
        wanted = _label_key(labels)
        snap = self.snapshot()
        for metric_name, key_items, value in snap["counters"] + snap["gauges"]:
            if metric_name == name and tuple(tuple(kv) for kv in key_items) == wanted:
                return value
        return 0.0

    def total(self, name: str) -> float:
        """Sum a counter family across every label set."""
        snap = self.snapshot()
        return sum(value for metric_name, _, value in snap["counters"] if metric_name == name)

    def exposition(self) -> str:
        return render_prometheus(self.snapshot())

    def reset(self) -> None:
        """Drop all recorded samples (tests; worker bootstrap)."""
        with self._lock:
            self._shards = []
            self._gauges = {}
        self._local = threading.local()


class NullRegistry:
    """``REPRO_OBS=off``: every write is a no-op, every read is empty."""

    def describe(self, *args, **kwargs) -> None:
        pass

    def counter_inc(self, *args, **kwargs) -> None:
        pass

    def gauge_set(self, *args, **kwargs) -> None:
        pass

    def gauge_add(self, *args, **kwargs) -> None:
        pass

    def histogram_observe(self, *args, **kwargs) -> None:
        pass

    def snapshot(self) -> dict:
        return {"families": {}, "counters": [], "gauges": [], "histograms": []}

    dump = snapshot

    def absorb(self, *args, **kwargs) -> None:
        pass

    def value(self, *args, **kwargs) -> float:
        return 0.0

    def total(self, *args, **kwargs) -> float:
        return 0.0

    def exposition(self) -> str:
        return "# observability disabled (REPRO_OBS=off)\n"

    def reset(self) -> None:
        pass


# ------------------------------------------------------------------ exposition


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(items: Iterable[Sequence[str]]) -> str:
    rendered = ",".join(f'{key}="{_escape_label_value(str(value))}"' for key, value in items)
    return "{" + rendered + "}" if rendered else ""


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format."""
    families = snapshot.get("families", {})
    by_family: Dict[str, List[str]] = {}

    def add(name: str, line: str) -> None:
        by_family.setdefault(name, []).append(line)

    for name, key_items, value in sorted(snapshot.get("counters", [])):
        add(name, f"{name}{_format_labels(key_items)} {_format_value(value)}")
    for name, key_items, value in sorted(snapshot.get("gauges", [])):
        add(name, f"{name}{_format_labels(key_items)} {_format_value(value)}")
    for name, key_items, cells in sorted(snapshot.get("histograms", [])):
        meta = families.get(name) or {}
        buckets = meta.get("buckets") or list(DEFAULT_BUCKETS)
        cumulative = 0.0
        for index, bound in enumerate(buckets):
            cumulative += cells[index] if index < len(cells) - 2 else 0.0
            items = list(key_items) + [["le", repr(float(bound))]]
            add(name, f"{name}_bucket{_format_labels(items)} {_format_value(cumulative)}")
        total_count = cells[-1]
        items = list(key_items) + [["le", "+Inf"]]
        add(name, f"{name}_bucket{_format_labels(items)} {_format_value(total_count)}")
        add(name, f"{name}_sum{_format_labels(key_items)} {_format_value(cells[-2])}")
        add(name, f"{name}_count{_format_labels(key_items)} {_format_value(total_count)}")

    lines: List[str] = []
    for name in sorted(set(by_family) | set(families)):
        meta = families.get(name) or {}
        help_text = meta.get("help") or name.replace("_", " ")
        kind = meta.get("kind", "untyped")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(by_family.get(name, []))
    return "\n".join(lines) + "\n"
