"""repro.service — a streaming, multi-tenant detection server.

The paper's IncDect regime — keep ``Vio(Σ, G)`` current as ΔG updates
arrive — is naturally a long-lived service, not a batch CLI.  This package
turns the :class:`~repro.detect.session.Detector` session API into exactly
that, with nothing beyond the standard library:

* :mod:`repro.service.registry` — named, versioned graphs behind per-graph
  locks; updates build new snapshots, so detections are version-isolated;
* :mod:`repro.service.jobs` — per-request budgeted detection jobs and
  *continuous sessions* that maintain a ``ViolationSet`` incrementally,
  recording the :class:`~repro.core.violations.ViolationDelta` per version;
* :mod:`repro.service.protocol` — JSON request schemas and the NDJSON
  streaming wire format (one violation per line, terminal summary record);
* :mod:`repro.service.server` — the ``ThreadingHTTPServer`` front end
  (:class:`DetectionService`), started by ``repro-detect serve``;
* :mod:`repro.service.client` — the stdlib HTTP client
  (:class:`ServiceClient`), thread-safe by construction.
"""

from repro.service.client import DetectReply, ServiceClient
from repro.service.jobs import ContinuousSession, DetectionJobPool, SessionManager
from repro.service.protocol import (
    MIME_JSON,
    MIME_NDJSON,
    DetectRequest,
    decode_record,
    encode_record,
    error_record,
    parse_detect_request,
    summary_record,
    violation_record,
)
from repro.service.registry import GraphRegistry, RegisteredGraph, UpdateOutcome
from repro.service.server import DetectionService

__all__ = [
    "ContinuousSession",
    "DetectReply",
    "DetectRequest",
    "DetectionJobPool",
    "DetectionService",
    "GraphRegistry",
    "MIME_JSON",
    "MIME_NDJSON",
    "RegisteredGraph",
    "ServiceClient",
    "SessionManager",
    "UpdateOutcome",
    "decode_record",
    "encode_record",
    "error_record",
    "parse_detect_request",
    "summary_record",
    "violation_record",
]
