"""Detection jobs and continuous incremental sessions.

Two execution shapes live here, both built on the
:class:`~repro.detect.session.Detector` session API:

* **One-shot streaming jobs** (:meth:`SessionManager.stream_detection`) —
  the HTTP handler snapshots ``(graph, version)`` from the registry, then
  iterates the generator this module returns; each yielded record is one
  NDJSON line.  Every request gets its *own* ``Detector`` with its own
  :class:`~repro.detect.observers.DetectionBudget`, which is the
  multi-tenant fairness mechanism: a tenant asking for ``max_cost=500``
  cannot make the server do more than 500 work units on its behalf, no
  matter what the graph looks like.

* **Continuous sessions** (:class:`ContinuousSession`) — a session pins a
  registered graph, runs one full batch detection at its base version, and
  from then on keeps its ``ViolationSet`` current by feeding every accepted
  update through ``Detector.run_incremental`` (the paper's IncDect regime).
  The per-version :class:`~repro.core.violations.ViolationDelta` is
  recorded, so a client can ask "what changed between versions 4 and 9"
  without replaying detection.  Session maintenance runs inside the graph
  lock (see :mod:`repro.service.registry`), so deltas are observed exactly
  once, in version order.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Iterator, Optional

from repro import obs
from repro.core.ngd import RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.parallel import WarmExecutorPool
from repro.detect.session import DetectionOptions, Detector
from repro.errors import (
    DeadlineExceededError,
    PoolSaturatedError,
    ServiceError,
    WorkerPoolCollapse,
)
from repro.service.protocol import (
    DetectRequest,
    error_record,
    summary_record,
    violation_record,
)
from repro.service.registry import GraphRegistry, UpdateOutcome, validate_resource_name

__all__ = ["ContinuousSession", "DetectionJobPool", "JobStream", "SessionManager"]

#: Default size of a service's detection job pool (``serve --max-jobs``).
DEFAULT_MAX_JOBS = 8

#: Records buffered between a job thread and its HTTP writer before the
#: producer blocks (backpressure toward the detection kernel).
JOB_QUEUE_CAPACITY = 256


#: A session's cached plans are recompiled once the graph's |V|+|E| has
#: drifted by more than this fraction from the statistics they were compiled
#: against (update-driven invalidation of the cross-version plan reuse).
PLAN_DRIFT_TOLERANCE = 0.2


class ContinuousSession:
    """A long-lived incremental session over one registered graph.

    ``violations`` is kept equal to ``Vio(Σ, G_v)`` for the session's
    ``current_version`` ``v``; ``deltas[v]`` records the ΔVio that took the
    session from version ``v - 1`` to ``v``.

    Two bounded-resource mechanisms ride along:

    * **plan reuse** — the :class:`~repro.matching.plan.MatchPlan`\\ s the
      detector compiled at the base version are passed back to every
      ``run_incremental``, so per-update maintenance skips the statistics
      pass; an update that drifts ``|V| + |E|`` beyond
      :data:`PLAN_DRIFT_TOLERANCE` invalidates them (recompiled against the
      new snapshot, counted in ``plan_compilations``);
    * **delta-log compaction** — :meth:`compact` squashes deltas older than
      a retention window into one net delta
      (:meth:`~repro.core.violations.ViolationDelta.compose`), so
      long-running update loops hold a bounded number of per-version
      entries.
    """

    def __init__(
        self,
        session_id: str,
        graph_name: str,
        rules: RuleSet,
        detector: Detector,
        base_version: int,
        violations: ViolationSet,
        plans=None,
        plan_size: int = 0,
        request_document: Optional[dict] = None,
    ) -> None:
        self.session_id = session_id
        self.graph_name = graph_name
        self.rules = rules
        self.detector = detector
        self.base_version = base_version
        self.current_version = base_version
        self.violations = violations
        self.deltas: dict[int, ViolationDelta] = {}
        self.plans = plans
        self.plan_size = plan_size
        self.plan_compilations = 1 if plans is not None else 0
        self.compacted_through: Optional[int] = None
        self._squashed: Optional[ViolationDelta] = None
        self._lock = threading.Lock()
        #: The request document the session was opened with; the durability
        #: layer persists it so recovery can rebuild an identical detector.
        self.request_document = request_document

    def plans_for(self, graph) -> object:
        """Return the session's cached plans, recompiling on statistics drift."""
        if self.plans is None:
            return None
        size = graph.total_size()
        reference = max(self.plan_size, 1)
        if abs(size - self.plan_size) > PLAN_DRIFT_TOLERANCE * reference:
            self.plans = self.detector.compile_plans(graph)
            self.plan_size = size
            self.plan_compilations += 1
        return self.plans

    def advance(self, version: int, delta: ViolationDelta) -> None:
        """Record ΔVio for ``version`` and roll the violation set forward."""
        with self._lock:
            self.violations = self.violations.apply_delta(delta)
            self.deltas[version] = delta
            self.current_version = version

    def compact(self, retain_versions: int) -> None:
        """Squash deltas older than the last ``retain_versions`` into one net delta."""
        with self._lock:
            cutoff = self.current_version - retain_versions
            stale = sorted(version for version in self.deltas if version <= cutoff)
            if not stale:
                return
            squashed = self._squashed if self._squashed is not None else ViolationDelta.empty()
            for version in stale:
                squashed = squashed.compose(self.deltas.pop(version))
            self._squashed = squashed
            self.compacted_through = stale[-1]

    def deltas_since(self, since: int) -> list[dict]:
        """Return ``[{"version", "introduced", "removed"}, ...]`` for versions > ``since``.

        When compaction has squashed part of the requested range, the first
        entry is the net squashed delta, flagged ``"squashed": true`` and
        spanning ``(base_version, compacted_through]``.  That record is only
        a valid catch-up from the session's *base version* — a client whose
        last synced version lies strictly inside the squashed window cannot
        be brought up to date from the net delta (intermediate
        remove/reintroduce pairs have cancelled out of it), so such a
        request is refused with :class:`ServiceError`; the client must
        resync from the full session state (``GET /sessions/{id}``).
        """
        with self._lock:
            records: list[dict] = []
            if (
                self._squashed is not None
                and self.compacted_through is not None
                and since < self.compacted_through
            ):
                if since > self.base_version:
                    raise ServiceError(
                        f"session {self.session_id!r} has squashed deltas through "
                        f"version {self.compacted_through}; a catch-up from version "
                        f"{since} is no longer reconstructible — resync from the "
                        "full session state (GET /sessions/{id}) or request "
                        f"since<={self.base_version}"
                    )
                records.append(
                    {
                        "version": self.compacted_through,
                        "squashed": True,
                        "squashed_from": self.base_version,
                        **self._squashed.to_dict(),
                    }
                )
            records.extend(
                {"version": version, **self.deltas[version].to_dict()}
                for version in sorted(self.deltas)
                if version > since
            )
            return records

    def delta_count(self) -> int:
        """Return the number of per-version deltas currently held."""
        with self._lock:
            return len(self.deltas)

    def durable_document(self) -> dict:
        """Return the session's full durable state (checkpoints + WAL open).

        Everything recovery needs to adopt an equivalent session without
        re-running the initial batch detection: the opening request, the
        current violation set, the per-version delta log (with the
        squashed prefix, if compaction ran), and the plan-reuse counters.
        Detectors and compiled plans are *not* serialized — they are
        rebuilt from the request document against the recovered graph.
        """
        with self._lock:
            document = {
                "session": self.session_id,
                "graph": self.graph_name,
                "base_version": self.base_version,
                "current_version": self.current_version,
                "request": self.request_document or {},
                "violations": self.violations.to_dict(),
                "deltas": {
                    str(version): self.deltas[version].to_dict()
                    for version in sorted(self.deltas)
                },
                "squashed": self._squashed.to_dict() if self._squashed is not None else None,
                "compacted_through": self.compacted_through,
                "plan_compilations": self.plan_compilations,
                "plan_size": self.plan_size,
            }
            return document

    def restore_progress(
        self,
        current_version: int,
        deltas: "dict[int, ViolationDelta]",
        squashed: Optional[ViolationDelta],
        compacted_through: Optional[int],
        plan_compilations: int,
        plan_size: int,
    ) -> None:
        """Reapply recovered delta-log state (inverse of :meth:`durable_document`)."""
        with self._lock:
            self.current_version = current_version
            self.deltas = dict(deltas)
            self._squashed = squashed
            self.compacted_through = compacted_through
            self.plan_compilations = plan_compilations
            self.plan_size = plan_size

    def state_document(self) -> dict:
        """Return the JSON description served by ``GET /sessions/{id}``."""
        with self._lock:
            document = {
                "session": self.session_id,
                "graph": self.graph_name,
                "rules": self.rules.name,
                "rule_count": len(self.rules),
                "base_version": self.base_version,
                "current_version": self.current_version,
                "violation_count": len(self.violations),
                "plan_compilations": self.plan_compilations,
                **self.violations.to_dict(),
            }
            if self.compacted_through is not None:
                document["compacted_through"] = self.compacted_through
            return document


class JobStream:
    """An NDJSON record iterator plus the job metadata the handler logs.

    ``job_id`` identifies the pool slot's job thread; ``trace_id`` is the
    observability trace the detection runs under (None with REPRO_OBS=off).
    The HTTP handler surfaces both: the trace id as the ``X-Repro-Trace``
    response header, both in the access-log line.
    """

    __slots__ = ("_iterator", "job_id", "trace_id")

    def __init__(
        self,
        iterator: Iterator[dict],
        job_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self._iterator = iterator
        self.job_id = job_id
        self.trace_id = trace_id

    def __iter__(self) -> "JobStream":
        return self

    def __next__(self) -> dict:
        return next(self._iterator)

    def close(self) -> None:
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()


class DetectionJobPool:
    """A bounded pool of detection job threads with admission control.

    One-shot detection streams used to run *on* the HTTP handler thread:
    every connection admitted by the listener became an unbounded amount
    of matching work.  The pool decouples the two — :meth:`run_stream`
    admits a job only while a slot is free (429 via
    :class:`~repro.errors.PoolSaturatedError` otherwise), runs the
    detection generator on a pool thread, and hands the handler a bounded
    queue to drain, so a slow client applies backpressure to its own job
    without ever occupying more than one slot.

    A job's slot is held from admission until its generator finishes (or
    its consumer disconnects — the producer observes the cancellation
    flag between records and winds down).  Continuous-session maintenance
    does not go through the pool: it runs under the graph lock in version
    order and must never be refused.
    """

    _SENTINEL = object()

    def __init__(self, max_jobs: int = DEFAULT_MAX_JOBS, queue_capacity: int = JOB_QUEUE_CAPACITY) -> None:
        if max_jobs < 1:
            raise ServiceError(f"max_jobs must be >= 1, got {max_jobs}")
        self.max_jobs = max_jobs
        self._queue_capacity = queue_capacity
        self._slots = threading.BoundedSemaphore(max_jobs)
        self._active = 0
        self._lock = threading.Lock()
        self._job_ids = itertools.count(1)

    def active_jobs(self) -> int:
        """Return the number of jobs currently holding a slot."""
        with self._lock:
            return self._active

    def run_stream(
        self, records: Iterator[dict], timeout_seconds: Optional[float] = None
    ) -> Iterator[dict]:
        """Run ``records`` on a job thread; return the consuming iterator.

        Raises :class:`PoolSaturatedError` without starting anything when
        every slot is busy.  A mid-stream exception inside the producer is
        converted to the protocol's ``error`` record (the HTTP status line
        is long gone by then), matching the handler-thread behaviour; a
        :class:`~repro.errors.WorkerPoolCollapse` escaping the kernel marks
        its error record ``retryable`` (transient — a retry gets a fresh
        crew).

        ``timeout_seconds`` arms a per-request deadline measured from
        admission: when it elapses the consumer raises
        :class:`~repro.errors.DeadlineExceededError` and cancels the job
        (the producer observes the flag between records and winds down).
        """
        if not self._slots.acquire(blocking=False):
            obs.counter_inc("repro_jobs_refused_total")
            raise PoolSaturatedError(
                f"detection job pool is saturated ({self.max_jobs} jobs in flight); "
                "retry after a backoff or raise serve --max-jobs"
            )
        with self._lock:
            self._active += 1
        obs.counter_inc("repro_jobs_total")
        obs.gauge_add("repro_jobs_active", None, 1)
        buffer: queue.Queue = queue.Queue(maxsize=self._queue_capacity)
        cancelled = threading.Event()

        def _put_until_cancelled(record: object) -> None:
            while not cancelled.is_set():
                try:
                    buffer.put(record, timeout=0.1)
                    return
                except queue.Full:
                    continue

        def produce() -> None:
            try:
                for record in records:
                    if cancelled.is_set():
                        break
                    _put_until_cancelled(record)
            except Exception as exc:  # noqa: BLE001 - report in-band, never crash the pool
                # same backpressure loop as ordinary records: a full buffer
                # must delay the error record, not drop it — the client is
                # owed a terminal record (summary or error) on every stream
                _put_until_cancelled(
                    error_record(f"{exc!r}", retryable=isinstance(exc, WorkerPoolCollapse))
                )
            finally:
                # nothing below may be skipped: the sentinel unblocks the
                # consumer and the release frees the slot, so a close() that
                # raises (e.g. a kernel generator failing during shutdown)
                # must not abort this block
                try:
                    close = getattr(records, "close", None)
                    if close is not None:
                        close()
                except Exception:  # noqa: BLE001 - shutdown failure must not leak the slot
                    pass
                while True:
                    try:
                        buffer.put(self._SENTINEL, timeout=0.1)
                        break
                    except queue.Full:
                        if cancelled.is_set():
                            break
                        continue
                with self._lock:
                    self._active -= 1
                obs.gauge_add("repro_jobs_active", None, -1)
                self._slots.release()

        job_id = f"job-{next(self._job_ids)}"
        thread = threading.Thread(target=produce, name=f"repro-{job_id}", daemon=True)
        thread.start()
        deadline = (
            time.monotonic() + timeout_seconds if timeout_seconds is not None else None
        )

        def consume() -> Iterator[dict]:
            try:
                while True:
                    if deadline is None:
                        record = buffer.get()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise DeadlineExceededError(
                                f"detection request exceeded its timeout_seconds="
                                f"{timeout_seconds} deadline"
                            )
                        try:
                            record = buffer.get(timeout=remaining)
                        except queue.Empty:
                            raise DeadlineExceededError(
                                f"detection request exceeded its timeout_seconds="
                                f"{timeout_seconds} deadline"
                            ) from None
                    if record is self._SENTINEL:
                        break
                    yield record
            finally:
                cancelled.set()

        return JobStream(consume(), job_id=job_id)


class SessionManager:
    """Runs detection jobs and owns the continuous sessions of a service.

    ``retain_versions`` (matching the registry's snapshot window) bounds the
    per-session delta logs: after each advance, deltas older than the last K
    versions are squashed into one net delta.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        catalogs: Optional[dict[str, RuleSet]] = None,
        retain_versions: Optional[int] = None,
        job_pool: Optional[DetectionJobPool] = None,
    ) -> None:
        self.registry = registry
        self.retain_versions = retain_versions
        self.job_pool = job_pool if job_pool is not None else DetectionJobPool()
        self.catalogs: dict[str, RuleSet] = dict(catalogs or {})
        self._catalog_lock = threading.Lock()
        self._sessions: dict[str, ContinuousSession] = {}
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._executor_pools: dict[int, WarmExecutorPool] = {}
        self._executor_pools_lock = threading.Lock()
        #: Durability hook (duck-typed, see ``GraphRegistry.journal``):
        #: catalog registrations and session open/close are logged through
        #: it; attached after recovery so replayed state is not re-logged.
        self.journal = None
        #: Optional provider of durable spool directories for the warm
        #: executor pools (the ``--data-dir`` segment cache); None keeps
        #: the tempdir behaviour.
        self.spool_cache = None
        registry.add_listener(self._on_update)

    # ---------------------------------------------------- warm executor pools

    def executor_pool(self, processors: Optional[int]) -> WarmExecutorPool:
        """Return the shared warm pool for ``processors``, creating it lazily.

        Pools are keyed by processor count (a :class:`WarmExecutorPool`
        pins its crew size), shared by every ``execution="processes"`` job
        and continuous session of this manager, and live until
        :meth:`shutdown` — that is what lets the second request for the
        same ``(snapshot, rules)`` skip worker start-up and runtime
        loading entirely.
        """
        count = max(1, processors or 1)
        with self._executor_pools_lock:
            pool = self._executor_pools.get(count)
            if pool is None:
                pool = WarmExecutorPool(count, spool_cache=self.spool_cache)
                self._executor_pools[count] = pool
            return pool

    def maintain_pools(self) -> None:
        """Opportunistic upkeep: evict warm crews idle past their TTL."""
        with self._executor_pools_lock:
            pools = list(self._executor_pools.values())
        for pool in pools:
            pool.maintain()

    def describe_pools(self) -> dict[str, dict]:
        """Warm/cold hit counters per executor pool, keyed by crew size.

        The ``GET /health`` payload surfaces this so operators can see
        whether process-backed requests are actually reusing warm crews.
        """
        with self._executor_pools_lock:
            pools = dict(self._executor_pools)
        return {str(count): pool.stats() for count, pool in sorted(pools.items())}

    def shutdown(self) -> None:
        """Stop every warm worker crew owned by this manager."""
        with self._executor_pools_lock:
            pools = list(self._executor_pools.values())
            self._executor_pools.clear()
        for pool in pools:
            pool.shutdown()

    # -------------------------------------------------------------- catalogs

    def register_catalog(self, name: str, rules: RuleSet) -> None:
        """Register a named rule catalog requests can reference."""
        validate_resource_name(name, "catalog")
        with self._catalog_lock:
            if name in self.catalogs:
                raise ServiceError(f"rule catalog {name!r} is already registered")
            self.catalogs[name] = rules
        if self.journal is not None:
            self.journal.record_catalog_registered(name, rules)

    def catalog(self, name: str) -> RuleSet:
        """Return a registered catalog or raise :class:`ServiceError`."""
        with self._catalog_lock:
            try:
                return self.catalogs[name]
            except KeyError:
                raise ServiceError(f"no rule catalog registered under {name!r}") from None

    def describe_catalogs(self) -> list[dict]:
        """Return ``{"name", "rules", "diameter"}`` for every catalog."""
        with self._catalog_lock:
            names = sorted(self.catalogs)
            return [
                {
                    "name": name,
                    "rules": len(self.catalogs[name]),
                    "diameter": self.catalogs[name].diameter(),
                }
                for name in names
            ]

    def resolve_rules(self, request: DetectRequest) -> RuleSet:
        """Return the rule set a request asks for (inline beats catalog)."""
        if request.rules is not None:
            return request.rules
        if request.catalog is not None:
            return self.catalog(request.catalog)
        raise ServiceError("detect request must carry inline 'rules' or name a 'catalog'")

    # -------------------------------------------------------- one-shot jobs

    def stream_detection(self, graph_name: str, request: DetectRequest) -> Iterator[dict]:
        """Return the NDJSON record stream of one budgeted detection request.

        Request validation — rule resolution and the graph snapshot —
        happens eagerly, so a bad name still raises before any HTTP status
        is committed.  The detection itself is then *admitted* to the
        bounded :class:`DetectionJobPool` (429 via
        :class:`PoolSaturatedError` when saturated) and runs on a job
        thread, off the HTTP handler; the handler drains the returned
        iterator.  The snapshot freezes ``(graph, version)``: concurrent
        updates bump the registry but never affect this stream.  The final
        record is the summary carrying ``graph_version`` and the budget
        outcome.
        """
        rules = self.resolve_rules(request)
        graph, version = self.registry.get(graph_name).snapshot()
        processes = request.execution == "processes"
        detector = Detector(
            rules,
            engine=request.engine,
            processors=request.processors,
            options=DetectionOptions(
                use_literal_pruning=request.use_literal_pruning,
                max_violations=request.max_violations,
                max_cost=request.max_cost,
                execution=request.execution,
            ),
            # process-backed jobs draw workers from the manager's shared
            # warm pool: repeated requests against the same snapshot reuse
            # live crews instead of paying runtime setup per request
            executor_pool=self.executor_pool(request.processors) if processes else None,
        )

        # the trace id is fixed before the job starts so the HTTP handler
        # can send it as X-Repro-Trace while the stream is still running
        trace_id = obs.new_id() if obs.enabled() else None

        def generate() -> Iterator[dict]:
            try:
                with obs.span(
                    "service.detect",
                    trace_id=trace_id,
                    graph=graph_name,
                    graph_version=version,
                    execution=request.execution,
                ):
                    # the detector's root span parents under service.detect
                    # via the job thread's contextvar, joining this trace
                    for violation in detector.stream(graph):
                        yield violation_record(violation, introduced=True)
                yield summary_record(detector.last_result, graph_name, version)
            finally:
                if processes:
                    self.maintain_pools()

        stream = self.job_pool.run_stream(
            generate(), timeout_seconds=request.timeout_seconds
        )
        stream.trace_id = trace_id
        return stream

    # ---------------------------------------------------------------- sessions

    def create_session(self, graph_name: str, request: DetectRequest) -> ContinuousSession:
        """Open a continuous session: full run now, incremental forever after.

        Budgets are refused: a truncated run (full or incremental) would
        leave the maintained violation set a strict subset of the truth,
        and every later delta would compound the error.

        The initial batch run executes while *holding the graph lock*, so
        no update can slip between "snapshot the base version" and "start
        observing deltas"; updates queued behind the lock are applied (and
        fed to the new session) as soon as registration completes.
        """
        if request.max_violations is not None or request.max_cost is not None:
            raise ServiceError(
                "continuous sessions cannot run under a budget: a truncated "
                "violation set cannot be kept consistent by later deltas"
            )
        rules = self.resolve_rules(request)
        registered = self.registry.get(graph_name)
        processes = request.execution == "processes"
        pool = self.executor_pool(request.processors) if processes else None
        with registered.lock:
            graph, version = registered.snapshot()
            batch = Detector(
                rules,
                engine=request.engine,
                processors=request.processors,
                options=DetectionOptions(
                    use_literal_pruning=request.use_literal_pruning,
                    execution=request.execution,
                ),
                executor_pool=pool,
            )
            violations = batch.run(graph).violations
            # the maintenance detector keeps the per-version incremental
            # regime; under execution="processes" it routes through the
            # parallel kernel and reuses the manager's warm crew across
            # version bumps (processes survive, delta images reload)
            incremental = Detector(
                rules,
                engine="auto" if processes else "incremental",
                processors=request.processors if processes else None,
                options=DetectionOptions(
                    use_literal_pruning=request.use_literal_pruning,
                    execution=request.execution,
                ),
                executor_pool=pool,
            )
            # compile the maintenance plans once against the base snapshot;
            # the session reuses them across versions until statistics drift
            plans = incremental.compile_plans(graph)
            session = ContinuousSession(
                session_id=f"s{next(self._session_ids)}",
                graph_name=graph_name,
                rules=rules,
                detector=incremental,
                base_version=version,
                violations=violations,
                plans=plans,
                plan_size=graph.total_size(),
                request_document=request.to_document(),
            )
            with self._sessions_lock:
                self._sessions[session.session_id] = session
            # logged inside the graph lock: no update can interleave
            # between the base snapshot and the open record, so replay
            # sees exactly the version order the live sessions saw
            if self.journal is not None:
                self.journal.record_session_opened(session)
            return session

    def adopt_session(self, session: ContinuousSession) -> ContinuousSession:
        """Install a recovered session and advance the id counter past it.

        Recovery-only: never journals.  The id counter is bumped so newly
        created sessions cannot collide with recovered ids.
        """
        with self._sessions_lock:
            if session.session_id in self._sessions:
                raise ServiceError(f"session {session.session_id!r} is already registered")
            self._sessions[session.session_id] = session
            numeric = session.session_id.lstrip("s")
            if numeric.isdigit():
                floor = int(numeric) + 1
                probe = next(self._session_ids)
                self._session_ids = itertools.count(max(probe, floor))
            return session

    def sessions_for(self, graph_name: str) -> list[ContinuousSession]:
        """Return the live sessions pinned to ``graph_name`` (id-sorted)."""
        with self._sessions_lock:
            return sorted(
                (s for s in self._sessions.values() if s.graph_name == graph_name),
                key=lambda s: s.session_id,
            )

    def session(self, session_id: str) -> ContinuousSession:
        """Return a live session or raise :class:`ServiceError`."""
        with self._sessions_lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise ServiceError(f"no session {session_id!r}") from None

    def close_session(self, session_id: str) -> None:
        """Drop a session (its recorded deltas go with it)."""
        with self._sessions_lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServiceError(f"no session {session_id!r}")
        if self.journal is not None:
            self.journal.record_session_closed(session_id)

    def describe_sessions(self) -> list[dict]:
        """Return a compact listing of every live session."""
        with self._sessions_lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.session_id)
        return [
            {
                "session": s.session_id,
                "graph": s.graph_name,
                "current_version": s.current_version,
                "violation_count": len(s.violations),
            }
            for s in sessions
        ]

    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # ------------------------------------------------------- update fan-out

    def _on_update(self, outcome: UpdateOutcome) -> None:
        """Registry listener: advance every session of the updated graph.

        Runs inside the graph's lock (see the registry), so sessions see
        versions strictly in order.  ``graph_after`` is handed to the
        incremental kernel directly — ``G ⊕ ΔG`` is already materialised by
        the registry, exactly the "storage layer maintains the updated
        graph" assumption the paper makes.
        """
        with self._sessions_lock:
            sessions = [s for s in self._sessions.values() if s.graph_name == outcome.name]
        for session in sessions:
            if session.current_version >= outcome.version:
                # already past this version — happens only during WAL
                # replay, when a session recovered from a checkpoint taken
                # after the update observes the update's record again;
                # re-applying would corrupt the violation set
                continue
            result = session.detector.run_incremental(
                outcome.graph_before,
                outcome.delta,
                graph_after=outcome.graph_after,
                plans=session.plans_for(outcome.graph_after),
            )
            session.advance(outcome.version, result.delta)
            if self.retain_versions is not None:
                session.compact(self.retain_versions)
        # a version bump obsoletes every batch runtime the warm crews hold
        # (their images describe the pre-update snapshot); invalidate() is
        # non-blocking, so this is safe inside the graph lock even while a
        # pool is mid-run on a job thread
        with self._executor_pools_lock:
            pools = list(self._executor_pools.values())
        for pool in pools:
            pool.invalidate()
