"""Detection jobs and continuous incremental sessions.

Two execution shapes live here, both built on the
:class:`~repro.detect.session.Detector` session API:

* **One-shot streaming jobs** (:meth:`SessionManager.stream_detection`) —
  the HTTP handler snapshots ``(graph, version)`` from the registry, then
  iterates the generator this module returns; each yielded record is one
  NDJSON line.  Every request gets its *own* ``Detector`` with its own
  :class:`~repro.detect.observers.DetectionBudget`, which is the
  multi-tenant fairness mechanism: a tenant asking for ``max_cost=500``
  cannot make the server do more than 500 work units on its behalf, no
  matter what the graph looks like.

* **Continuous sessions** (:class:`ContinuousSession`) — a session pins a
  registered graph, runs one full batch detection at its base version, and
  from then on keeps its ``ViolationSet`` current by feeding every accepted
  update through ``Detector.run_incremental`` (the paper's IncDect regime).
  The per-version :class:`~repro.core.violations.ViolationDelta` is
  recorded, so a client can ask "what changed between versions 4 and 9"
  without replaying detection.  Session maintenance runs inside the graph
  lock (see :mod:`repro.service.registry`), so deltas are observed exactly
  once, in version order.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator, Optional

from repro.core.ngd import RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.session import DetectionOptions, Detector
from repro.errors import ServiceError
from repro.service.protocol import DetectRequest, summary_record, violation_record
from repro.service.registry import GraphRegistry, UpdateOutcome, validate_resource_name

__all__ = ["ContinuousSession", "SessionManager"]


class ContinuousSession:
    """A long-lived incremental session over one registered graph.

    ``violations`` is kept equal to ``Vio(Σ, G_v)`` for the session's
    ``current_version`` ``v``; ``deltas[v]`` records the ΔVio that took the
    session from version ``v - 1`` to ``v``.
    """

    def __init__(
        self,
        session_id: str,
        graph_name: str,
        rules: RuleSet,
        detector: Detector,
        base_version: int,
        violations: ViolationSet,
    ) -> None:
        self.session_id = session_id
        self.graph_name = graph_name
        self.rules = rules
        self.detector = detector
        self.base_version = base_version
        self.current_version = base_version
        self.violations = violations
        self.deltas: dict[int, ViolationDelta] = {}
        self._lock = threading.Lock()

    def advance(self, version: int, delta: ViolationDelta) -> None:
        """Record ΔVio for ``version`` and roll the violation set forward."""
        with self._lock:
            self.violations = self.violations.apply_delta(delta)
            self.deltas[version] = delta
            self.current_version = version

    def deltas_since(self, since: int) -> list[dict]:
        """Return ``[{"version", "introduced", "removed"}, ...]`` for versions > ``since``."""
        with self._lock:
            return [
                {"version": version, **self.deltas[version].to_dict()}
                for version in sorted(self.deltas)
                if version > since
            ]

    def state_document(self) -> dict:
        """Return the JSON description served by ``GET /sessions/{id}``."""
        with self._lock:
            return {
                "session": self.session_id,
                "graph": self.graph_name,
                "rules": self.rules.name,
                "rule_count": len(self.rules),
                "base_version": self.base_version,
                "current_version": self.current_version,
                "violation_count": len(self.violations),
                **self.violations.to_dict(),
            }


class SessionManager:
    """Runs detection jobs and owns the continuous sessions of a service."""

    def __init__(self, registry: GraphRegistry, catalogs: Optional[dict[str, RuleSet]] = None) -> None:
        self.registry = registry
        self.catalogs: dict[str, RuleSet] = dict(catalogs or {})
        self._catalog_lock = threading.Lock()
        self._sessions: dict[str, ContinuousSession] = {}
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        registry.add_listener(self._on_update)

    # -------------------------------------------------------------- catalogs

    def register_catalog(self, name: str, rules: RuleSet) -> None:
        """Register a named rule catalog requests can reference."""
        validate_resource_name(name, "catalog")
        with self._catalog_lock:
            if name in self.catalogs:
                raise ServiceError(f"rule catalog {name!r} is already registered")
            self.catalogs[name] = rules

    def catalog(self, name: str) -> RuleSet:
        """Return a registered catalog or raise :class:`ServiceError`."""
        with self._catalog_lock:
            try:
                return self.catalogs[name]
            except KeyError:
                raise ServiceError(f"no rule catalog registered under {name!r}") from None

    def describe_catalogs(self) -> list[dict]:
        """Return ``{"name", "rules", "diameter"}`` for every catalog."""
        with self._catalog_lock:
            names = sorted(self.catalogs)
            return [
                {
                    "name": name,
                    "rules": len(self.catalogs[name]),
                    "diameter": self.catalogs[name].diameter(),
                }
                for name in names
            ]

    def resolve_rules(self, request: DetectRequest) -> RuleSet:
        """Return the rule set a request asks for (inline beats catalog)."""
        if request.rules is not None:
            return request.rules
        if request.catalog is not None:
            return self.catalog(request.catalog)
        raise ServiceError("detect request must carry inline 'rules' or name a 'catalog'")

    # -------------------------------------------------------- one-shot jobs

    def stream_detection(self, graph_name: str, request: DetectRequest) -> Iterator[dict]:
        """Yield the NDJSON records of one budgeted detection request.

        Snapshots the graph once, then runs a per-request ``Detector``
        against that frozen version: concurrent updates bump the registry
        but never affect this stream.  The final record is the summary
        carrying ``graph_version`` and the budget outcome.
        """
        rules = self.resolve_rules(request)
        graph, version = self.registry.get(graph_name).snapshot()
        detector = Detector(
            rules,
            engine=request.engine,
            processors=request.processors,
            options=DetectionOptions(
                use_literal_pruning=request.use_literal_pruning,
                max_violations=request.max_violations,
                max_cost=request.max_cost,
            ),
        )
        for violation in detector.stream(graph):
            yield violation_record(violation, introduced=True)
        yield summary_record(detector.last_result, graph_name, version)

    # ---------------------------------------------------------------- sessions

    def create_session(self, graph_name: str, request: DetectRequest) -> ContinuousSession:
        """Open a continuous session: full run now, incremental forever after.

        Budgets are refused: a truncated run (full or incremental) would
        leave the maintained violation set a strict subset of the truth,
        and every later delta would compound the error.

        The initial batch run executes while *holding the graph lock*, so
        no update can slip between "snapshot the base version" and "start
        observing deltas"; updates queued behind the lock are applied (and
        fed to the new session) as soon as registration completes.
        """
        if request.max_violations is not None or request.max_cost is not None:
            raise ServiceError(
                "continuous sessions cannot run under a budget: a truncated "
                "violation set cannot be kept consistent by later deltas"
            )
        rules = self.resolve_rules(request)
        registered = self.registry.get(graph_name)
        with registered.lock:
            graph, version = registered.snapshot()
            batch = Detector(
                rules,
                engine=request.engine,
                processors=request.processors,
                options=DetectionOptions(use_literal_pruning=request.use_literal_pruning),
            )
            violations = batch.run(graph).violations
            incremental = Detector(
                rules,
                engine="incremental",
                options=DetectionOptions(use_literal_pruning=request.use_literal_pruning),
            )
            session = ContinuousSession(
                session_id=f"s{next(self._session_ids)}",
                graph_name=graph_name,
                rules=rules,
                detector=incremental,
                base_version=version,
                violations=violations,
            )
            with self._sessions_lock:
                self._sessions[session.session_id] = session
            return session

    def session(self, session_id: str) -> ContinuousSession:
        """Return a live session or raise :class:`ServiceError`."""
        with self._sessions_lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise ServiceError(f"no session {session_id!r}") from None

    def close_session(self, session_id: str) -> None:
        """Drop a session (its recorded deltas go with it)."""
        with self._sessions_lock:
            if self._sessions.pop(session_id, None) is None:
                raise ServiceError(f"no session {session_id!r}")

    def describe_sessions(self) -> list[dict]:
        """Return a compact listing of every live session."""
        with self._sessions_lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.session_id)
        return [
            {
                "session": s.session_id,
                "graph": s.graph_name,
                "current_version": s.current_version,
                "violation_count": len(s.violations),
            }
            for s in sessions
        ]

    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # ------------------------------------------------------- update fan-out

    def _on_update(self, outcome: UpdateOutcome) -> None:
        """Registry listener: advance every session of the updated graph.

        Runs inside the graph's lock (see the registry), so sessions see
        versions strictly in order.  ``graph_after`` is handed to the
        incremental kernel directly — ``G ⊕ ΔG`` is already materialised by
        the registry, exactly the "storage layer maintains the updated
        graph" assumption the paper makes.
        """
        with self._sessions_lock:
            sessions = [s for s in self._sessions.values() if s.graph_name == outcome.name]
        for session in sessions:
            result = session.detector.run_incremental(
                outcome.graph_before, outcome.delta, graph_after=outcome.graph_after
            )
            session.advance(outcome.version, result.delta)
