"""A stdlib (``http.client``) client for the detection service.

One :class:`ServiceClient` per server URL; every call opens its own
connection (the server speaks HTTP/1.0, one request per connection), so a
single client instance may be shared freely between threads — the
concurrency tests hammer one client from N threads.

The streaming call is a generator::

    client = ServiceClient("http://127.0.0.1:8731")
    for record in client.stream_detect("yago", catalog="example", max_violations=5):
        if record["type"] == "violation":
            print(record["rule"], record["nodes"])
        elif record["type"] == "summary":
            print("version", record["graph_version"], record["stop_reason"])

:meth:`ServiceClient.detect` is the buffered convenience on top: it drains
the stream into ``(violations, summary)`` with the violations already
rebuilt as :class:`~repro.core.violations.Violation` objects.

Timeouts and retries
--------------------

``connect_timeout`` bounds TCP connection establishment; ``read_timeout``
bounds each socket read after the connection is up (a streaming detect can
legitimately idle between records while the kernel searches, so it defaults
much higher).  Both default to the legacy single ``timeout``.

``retries=N`` opts into automatic retry with exponential backoff + jitter —
**for idempotent GET requests only** (``health``, ``metrics``,
``list_rules``, ``list_graphs``, ``list_sessions``, and the other read-only
lookups).  POST requests are *never* retried by the client: a detect stream
re-run repeats real matching work, an update POST re-applied is a double
mutation.  Transient conditions on those paths are surfaced instead — a
429/503 raises :class:`~repro.errors.ServiceError` with the status in the
message, and the caller decides whether re-issuing is safe.
"""

from __future__ import annotations

import json
import random
import time
from typing import Iterator, Optional
from urllib.parse import urlsplit

from http.client import HTTPConnection, HTTPResponse

from repro.core.ngd import RuleSet
from repro.core.violations import Violation
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.graph.io import graph_to_dict, update_to_list
from repro.graph.updates import BatchUpdate
from repro.service.protocol import decode_record
from repro.service.registry import validate_resource_name

__all__ = ["ServiceClient", "DetectReply"]


class DetectReply:
    """The buffered form of one detection stream: violations + summary."""

    def __init__(self, violations: list[Violation], summary: dict) -> None:
        self.violations = violations
        self.summary = summary

    @property
    def graph_version(self) -> int:
        return self.summary["graph_version"]

    @property
    def stopped_early(self) -> bool:
        return bool(self.summary.get("stopped_early"))

    def __len__(self) -> int:
        return len(self.violations)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DetectReply({len(self.violations)} violations @ v{self.summary.get('graph_version')})"


class ServiceClient:
    """Talks the service wire protocol; raises :class:`ServiceError` on 4xx/5xx.

    ``connect_timeout`` / ``read_timeout`` split the legacy ``timeout`` into
    its two phases (both default to ``timeout``); ``retries`` opts into
    backoff-retry on transient failures **for idempotent GETs only** — see
    the module docstring for the idempotency rule.
    """

    #: statuses worth retrying on an idempotent request (the server uses
    #: 429 for pool saturation and 503 + Retry-After for transient faults)
    RETRYABLE_STATUSES = (429, 502, 503, 504)

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.1,
    ) -> None:
        parsed = urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(f"service URL must be http://host:port, got {base_url!r}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retries = retries
        self.retry_backoff = retry_backoff

    # -------------------------------------------------------------- plumbing

    def _request(self, method: str, path: str, body: Optional[object] = None) -> HTTPResponse:
        # the HTTPConnection timeout governs connect(); once the socket is
        # up, the (usually longer) read_timeout takes over so a slow search
        # streaming records is not killed by an aggressive connect bound
        connection = HTTPConnection(self.host, self.port, timeout=self.connect_timeout)
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.connect()
        if connection.sock is not None:
            connection.sock.settimeout(self.read_timeout)
        connection.request(method, path, body=payload, headers=headers)
        return connection.getresponse()

    def _json(self, method: str, path: str, body: Optional[object] = None) -> dict:
        # only idempotent GETs are ever retried — re-sending a POST would
        # repeat a mutation or re-run real detection work (module docstring)
        attempts = 1 + (self.retries if method == "GET" else 0)
        failure: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                # exponential backoff with full jitter: 0..backoff*2^(n-1)
                time.sleep(random.uniform(0, self.retry_backoff * (2 ** (attempt - 1))))
            try:
                response = self._request(method, path, body)
            except OSError as exc:
                # connection failures keep their OSError type (callers
                # distinguish "server gone" from a protocol-level error)
                failure = exc
                continue
            try:
                raw = response.read()
            finally:
                response.close()
            document = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                failure = ServiceError(
                    f"{method} {path} failed with {response.status}: "
                    f"{document.get('error', raw.decode('utf-8', 'replace'))}"
                )
                if method == "GET" and response.status in self.RETRYABLE_STATUSES:
                    continue
                raise failure
            return document
        assert failure is not None
        raise failure

    @staticmethod
    def _detect_body(
        rules: Optional[RuleSet],
        catalog: Optional[str],
        engine: str,
        processors: Optional[int],
        max_violations: Optional[int],
        max_cost: Optional[float],
        use_literal_pruning: bool,
        execution: str = "simulated",
        timeout_seconds: Optional[float] = None,
    ) -> dict:
        body: dict = {
            "engine": engine,
            "use_literal_pruning": use_literal_pruning,
            "execution": execution,
        }
        if timeout_seconds is not None:
            body["timeout_seconds"] = timeout_seconds
        if rules is not None:
            body["rules"] = rules.to_dict()
        if catalog is not None:
            body["catalog"] = catalog
        if processors is not None:
            body["processors"] = processors
        if max_violations is not None:
            body["max_violations"] = max_violations
        if max_cost is not None:
            body["max_cost"] = max_cost
        return body

    # ---------------------------------------------------------------- basics

    def health(self) -> dict:
        return self._json("GET", "/health")

    def metrics(self) -> str:
        """Return the raw Prometheus text exposition of ``GET /metrics``."""
        attempts = 1 + self.retries
        failure: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(random.uniform(0, self.retry_backoff * (2 ** (attempt - 1))))
            try:
                response = self._request("GET", "/metrics")
            except OSError as exc:
                failure = exc
                continue
            try:
                raw = response.read()
            finally:
                response.close()
            if response.status >= 400:
                failure = ServiceError(f"GET /metrics failed with {response.status}")
                if response.status in self.RETRYABLE_STATUSES:
                    continue
                raise failure
            return raw.decode("utf-8")
        assert failure is not None
        raise failure

    def list_graphs(self) -> list[dict]:
        return self._json("GET", "/graphs")["graphs"]

    def register_graph(self, name: str, graph: Graph) -> dict:
        """Upload a graph (``graph_to_dict`` wire form) and register it."""
        validate_resource_name(name, "graph")
        return self._json("POST", f"/graphs/{name}", graph_to_dict(graph))

    def graph_info(self, name: str) -> dict:
        return self._json("GET", f"/graphs/{name}")

    def post_update(self, name: str, delta: BatchUpdate) -> dict:
        """Apply ΔG to a registered graph; returns the new version."""
        return self._json("POST", f"/graphs/{name}/updates", update_to_list(delta))

    def register_rules(self, name: str, rules: RuleSet) -> dict:
        validate_resource_name(name, "catalog")
        return self._json("POST", f"/rules/{name}", rules.to_dict())

    def list_rules(self) -> list[dict]:
        return self._json("GET", "/rules")["catalogs"]

    def checkpoint(self) -> dict:
        """Force a durability checkpoint (server must run with --data-dir)."""
        return self._json("POST", "/admin/checkpoint")

    # ------------------------------------------------------------- detection

    def stream_detect(
        self,
        graph: str,
        rules: Optional[RuleSet] = None,
        catalog: Optional[str] = None,
        engine: str = "auto",
        processors: Optional[int] = None,
        max_violations: Optional[int] = None,
        max_cost: Optional[float] = None,
        use_literal_pruning: bool = True,
        execution: str = "simulated",
        timeout_seconds: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield the NDJSON records of one detection request as they arrive.

        Raises :class:`ServiceError` if the request is rejected up front
        (4xx/5xx before the stream starts — including 429 when the server's
        detection job pool is saturated and 503 + Retry-After for transient
        faults, which callers should treat as retry-after-backoff) or if
        the stream terminates with an ``error`` record instead of a
        summary.  Detect streams are never retried automatically — see the
        module docstring.

        ``timeout_seconds`` is the *server-side* per-request deadline; the
        server aborts the job when it elapses (503 before any record, an
        in-band error record after).
        """
        body = self._detect_body(
            rules,
            catalog,
            engine,
            processors,
            max_violations,
            max_cost,
            use_literal_pruning,
            execution,
            timeout_seconds,
        )
        response = self._request("POST", f"/graphs/{graph}/detect", body)
        try:
            if response.status >= 400:
                raw = response.read().decode("utf-8", "replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except json.JSONDecodeError:
                    message = raw
                raise ServiceError(f"detect on {graph!r} failed with {response.status}: {message}")
            finished = False
            for line in response:
                line = line.strip()
                if not line:
                    continue
                record = decode_record(line)
                if record["type"] == "error":
                    raise ServiceError(f"detection stream failed: {record['error']}")
                yield record
                if record["type"] == "summary":
                    finished = True
            if not finished:
                raise ServiceError("detection stream ended without a summary record")
        finally:
            response.close()

    def detect(self, graph: str, **kwargs) -> DetectReply:
        """Run one detection request to completion; buffered convenience."""
        violations: list[Violation] = []
        summary: Optional[dict] = None
        for record in self.stream_detect(graph, **kwargs):
            if record["type"] == "violation":
                violations.append(Violation.from_dict(record))
            else:
                summary = record
        assert summary is not None  # stream_detect guarantees a summary
        return DetectReply(violations, summary)

    # -------------------------------------------------------------- sessions

    def create_session(
        self,
        graph: str,
        rules: Optional[RuleSet] = None,
        catalog: Optional[str] = None,
        engine: str = "auto",
        processors: Optional[int] = None,
        use_literal_pruning: bool = True,
    ) -> dict:
        """Open a continuous session; returns its initial state document."""
        body = self._detect_body(rules, catalog, engine, processors, None, None, use_literal_pruning)
        return self._json("POST", f"/graphs/{graph}/sessions", body)

    def list_sessions(self) -> list[dict]:
        return self._json("GET", "/sessions")["sessions"]

    def session_state(self, session_id: str) -> dict:
        return self._json("GET", f"/sessions/{session_id}")

    def session_deltas(self, session_id: str, since: int = 0) -> dict:
        return self._json("GET", f"/sessions/{session_id}/deltas?since={since}")

    def close_session(self, session_id: str) -> dict:
        return self._json("DELETE", f"/sessions/{session_id}")
