"""The service wire protocol: request schemas and NDJSON streaming records.

Detection responses are streamed as NDJSON (``application/x-ndjson``): one
JSON object per line, written and flushed the moment the detection kernel
yields the violation, so a slow search delivers its first findings while it
is still running.  A stream is a sequence of ``violation`` records followed
by exactly one terminal ``summary`` record::

    {"type": "violation", "introduced": true, "rule": "φ2",
     "variables": ["x", "y", "z", "w"], "nodes": ["Bhonpur", ...]}
    ...
    {"type": "summary", "algorithm": "Dect", "violation_count": 3,
     "stopped_early": false, "stop_reason": null, "cost": 841.0,
     "graph": "yago", "graph_version": 7, "wall_time": 0.012}

A failed stream ends with an ``error`` record instead of a summary, so a
client can always distinguish "completed" from "died mid-flight" even
though the HTTP status line was sent long before the failure.

Detection *requests* are one JSON object.  Rules come either inline
(``{"rules": <RuleSet.to_dict() document>}``) or by reference to a catalog
registered with the server (``{"catalog": "name"}``); budgets, engine,
processor count and execution mode ride along::

    {"catalog": "example", "engine": "auto", "processors": 1,
     "max_violations": 10, "max_cost": null, "use_literal_pruning": true,
     "execution": "simulated"}

``execution`` is ``"simulated"`` (default — the deterministic cluster
simulator) or ``"processes"`` (the real multi-process backend; the server
does actual parallel matching work on ``processors`` OS processes).

:func:`parse_detect_request` validates the document into a
:class:`DetectRequest`; resolution of catalog names against the server's
registry happens in :mod:`repro.service.jobs`.

Admission control
-----------------

Detection streams run on a bounded job pool
(:class:`~repro.service.jobs.DetectionJobPool`, sized by
``serve --max-jobs N``).  When every slot is busy a new detect request is
refused **before** any record is written, with status ``429 Too Many
Requests`` and the standard JSON error body::

    {"error": "detection job pool is saturated (8 jobs in flight); ..."}

A 429 is not a failure of the request itself — the client should retry
after a backoff.  Graph/session/catalog management endpoints and
continuous-session maintenance never consume pool slots, so a saturated
pool still accepts updates and serves state documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.ngd import RuleSet
from repro.core.violations import Violation
from repro.detect.base import DetectionResult, IncrementalDetectionResult
from repro.errors import ReproError, SerializationError, ServiceError

__all__ = [
    "MIME_NDJSON",
    "MIME_JSON",
    "DetectRequest",
    "parse_detect_request",
    "violation_record",
    "summary_record",
    "error_record",
    "encode_record",
    "decode_record",
]

MIME_NDJSON = "application/x-ndjson"
MIME_JSON = "application/json"

#: Engines a detection request may ask for (``incremental`` is driven by the
#: updates endpoint + continuous sessions, not by one-shot detect requests).
REQUEST_ENGINES = ("auto", "batch", "parallel")

#: Execution modes a detection request may ask for (see module docstring).
REQUEST_EXECUTION_MODES = ("simulated", "processes")


@dataclass(frozen=True)
class DetectRequest:
    """One validated detection request (rules inline xor by catalog name)."""

    rules: Optional[RuleSet] = None
    catalog: Optional[str] = None
    engine: str = "auto"
    processors: Optional[int] = None
    max_violations: Optional[int] = None
    max_cost: Optional[float] = None
    use_literal_pruning: bool = True
    execution: str = "simulated"
    #: per-request deadline in seconds; ``None`` means no deadline.  When it
    #: elapses before the first record the request fails with 503 +
    #: ``Retry-After``; once streaming has begun it becomes a terminal
    #: in-band ``error`` record.
    timeout_seconds: Optional[float] = None

    def to_document(self) -> dict:
        """Return the JSON request document this request parsed from.

        The round trip ``parse_detect_request(request.to_document())``
        reproduces the request exactly; the durability layer logs this
        form in session-open WAL records and checkpoints so recovery can
        rebuild a session's detector with identical configuration.
        """
        document: dict = {
            "engine": self.engine,
            "use_literal_pruning": self.use_literal_pruning,
            "execution": self.execution,
        }
        if self.rules is not None:
            document["rules"] = self.rules.to_dict()
        if self.catalog is not None:
            document["catalog"] = self.catalog
        if self.processors is not None:
            document["processors"] = self.processors
        if self.max_violations is not None:
            document["max_violations"] = self.max_violations
        if self.max_cost is not None:
            document["max_cost"] = self.max_cost
        if self.timeout_seconds is not None:
            document["timeout_seconds"] = self.timeout_seconds
        return document


def _optional_positive_int(document: Mapping, key: str) -> Optional[int]:
    value = document.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ServiceError(f"{key!r} must be a positive integer, got {value!r}")
    return value


def _optional_positive_number(document: Mapping, key: str) -> Optional[float]:
    value = document.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ServiceError(f"{key!r} must be a positive number, got {value!r}")
    return float(value)


def parse_detect_request(document: object) -> DetectRequest:
    """Validate a request JSON document into a :class:`DetectRequest`.

    Raises :class:`~repro.errors.ServiceError` on shape errors: both or
    neither rule source, unknown engines, non-positive budgets.  An inline
    rule document is parsed eagerly so a malformed rule fails the request
    up front, not mid-stream.
    """
    if document is None:
        document = {}
    if not isinstance(document, Mapping):
        raise ServiceError(f"detect request must be a JSON object, got {type(document).__name__}")
    inline = document.get("rules")
    catalog = document.get("catalog")
    if inline is not None and catalog is not None:
        raise ServiceError("detect request must name 'rules' inline or a 'catalog', not both")
    rules: Optional[RuleSet] = None
    if inline is not None:
        try:
            rules = RuleSet.from_dict(inline)
        except ReproError as exc:
            raise ServiceError(f"inline rule set is malformed: {exc}") from exc
    if catalog is not None and not isinstance(catalog, str):
        raise ServiceError(f"'catalog' must be a string, got {catalog!r}")
    engine = document.get("engine", "auto")
    if engine not in REQUEST_ENGINES:
        raise ServiceError(f"unknown engine {engine!r}; expected one of {REQUEST_ENGINES}")
    execution = document.get("execution", "simulated")
    if execution not in REQUEST_EXECUTION_MODES:
        raise ServiceError(
            f"unknown execution mode {execution!r}; expected one of {REQUEST_EXECUTION_MODES}"
        )
    return DetectRequest(
        rules=rules,
        catalog=catalog,
        engine=engine,
        processors=_optional_positive_int(document, "processors"),
        max_violations=_optional_positive_int(document, "max_violations"),
        max_cost=_optional_positive_number(document, "max_cost"),
        use_literal_pruning=bool(document.get("use_literal_pruning", True)),
        execution=execution,
        timeout_seconds=_optional_positive_number(document, "timeout_seconds"),
    )


# ------------------------------------------------------------------ records


def violation_record(violation: Violation, introduced: bool = True) -> dict:
    """Return the NDJSON record for one streamed violation."""
    return {"type": "violation", "introduced": introduced, **violation.to_dict()}


def summary_record(
    result: "DetectionResult | IncrementalDetectionResult",
    graph_name: str,
    graph_version: int,
) -> dict:
    """Return the terminal record of a stream: counts, budget outcome, cost.

    ``graph_version`` is the registry version the run was snapshotted at —
    the client's proof of which consistent graph state its stream reflects.
    """
    record = {
        "type": "summary",
        "algorithm": result.algorithm,
        "cost": result.cost,
        "wall_time": result.wall_time,
        "processors": result.processors,
        "stopped_early": result.stopped_early,
        "stop_reason": result.stop_reason,
        "graph": graph_name,
        "graph_version": graph_version,
        # True when the worker pool collapsed or poison units were
        # quarantined and the run was completed on the parent's serial
        # path — the violations are still exact (see docs/ARCHITECTURE.md,
        # "Fault tolerance")
        "degraded": getattr(result, "degraded", False),
        # the run's observability trace (GET /debug/traces); null with
        # REPRO_OBS=off or when the result predates the traced session API
        "trace_id": getattr(result, "trace_id", None),
    }
    if isinstance(result, IncrementalDetectionResult):
        record["introduced_count"] = len(result.introduced())
        record["removed_count"] = len(result.removed())
        record["total_changes"] = result.total_changes()
    else:
        record["violation_count"] = result.violation_count()
    return record


def error_record(message: str, retryable: bool = False) -> dict:
    """Return the terminal record of a stream that failed mid-flight.

    ``retryable=True`` marks transient conditions (worker pool collapse,
    per-request deadline) where an identical retry may succeed; if the
    failure surfaces before the first record was written the HTTP layer
    turns it into ``503`` + ``Retry-After`` instead of a ``400``.
    """
    record = {"type": "error", "error": message}
    if retryable:
        record["retryable"] = True
    return record


def encode_record(record: Mapping) -> bytes:
    """Encode one record as an NDJSON line (sorted keys, ``default=str``).

    ``default=str`` applies the :func:`~repro.core.violations.wire_node_id`
    convention to anything a record smuggled past it (the violation records
    are already wire-safe).
    """
    return (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")


def decode_record(line: "bytes | str") -> dict:
    """Decode one NDJSON line back into a record dictionary."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed NDJSON record {line!r}: {exc}") from exc
    if not isinstance(record, dict) or "type" not in record:
        raise SerializationError(f"NDJSON record must be an object with a 'type': {line!r}")
    return record
