"""The graph registry: named, versioned graphs behind per-graph locks.

The service treats every registered graph as an *immutable snapshot chain*:
``POST /graphs/{name}/updates`` never mutates the current graph object in
place — it builds ``G ⊕ ΔG`` on a bulk clone (:func:`repro.graph.updates
.apply_update` with ``in_place=False``), bumps the monotonic version, and
swaps the reference, all under the graph's lock.  Detection jobs therefore
snapshot ``(graph, version)`` once and run lock-free against an object no
writer will ever touch: a stream started at version ``v`` sees exactly
``G_v`` even while updates land, which is the version-isolation guarantee
the concurrency tests assert.

Update listeners (the session manager) are invoked *inside* the graph lock,
after the swap.  That serialises the per-version ``run_incremental`` work
of continuous sessions with the update stream itself, so every session
observes every version exactly once and in order — the same regime the
paper's IncDect assumes ("ΔG updates arrive one batch at a time").
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.graph.io import PathLike, load_graph
from repro.graph.updates import BatchUpdate, apply_update

__all__ = [
    "RegisteredGraph",
    "GraphRegistry",
    "UpdateOutcome",
    "registry_from_specs",
    "validate_resource_name",
]

#: Names of registered graphs and rule catalogs become URL path segments
#: (``/graphs/{name}/detect``), so they must survive the router's ``/``
#: split and need no percent-encoding in the stdlib client.
_RESOURCE_NAME = re.compile(r"^[A-Za-z0-9._-]+$")


def validate_resource_name(name: object, kind: str) -> str:
    """Return ``name`` if it is URL-addressable, else raise :class:`ServiceError`."""
    if not isinstance(name, str) or not _RESOURCE_NAME.match(name):
        raise ServiceError(
            f"{kind} name must match [A-Za-z0-9._-]+ (it becomes a URL path "
            f"segment), got {name!r}"
        )
    return name


@dataclass(frozen=True)
class UpdateOutcome:
    """What one accepted batch update did: ΔG plus the before/after snapshots."""

    name: str
    version: int
    delta: BatchUpdate
    graph_before: Graph
    graph_after: Graph
    applied: int


#: Listener signature: called inside the graph lock after a version bump.
UpdateListener = Callable[[UpdateOutcome], None]


class RegisteredGraph:
    """One named graph plus its version counter and lock.

    ``version`` starts at 1 on registration and increases by one per
    accepted batch update.  ``graph`` always points at the snapshot for the
    current version; older snapshots stay alive for as long as some
    detection job or session still holds a reference.

    ``retain_versions`` optionally keeps a bounded window of recent
    snapshots addressable by version (:meth:`snapshot_at`): the last K
    versions are pinned, anything older is dropped from the window on each
    update — the registry's snapshot GC.  With the default ``None`` no
    history is pinned at all (exactly the pre-GC behaviour: old snapshots
    survive only through outstanding references).
    """

    def __init__(self, name: str, graph: Graph, retain_versions: Optional[int] = None) -> None:
        if retain_versions is not None and retain_versions < 1:
            raise ServiceError(f"retain_versions must be >= 1, got {retain_versions}")
        self.name = name
        self.graph = graph
        self.version = 1
        self.retain_versions = retain_versions
        self.lock = threading.RLock()
        self._snapshots: dict[int, Graph] = {1: graph} if retain_versions else {}

    def snapshot(self) -> tuple[Graph, int]:
        """Return the current ``(graph, version)`` pair atomically."""
        with self.lock:
            return self.graph, self.version

    def snapshot_at(self, version: int) -> Graph:
        """Return a retained snapshot by version, or raise :class:`ServiceError`."""
        with self.lock:
            try:
                return self._snapshots[version]
            except KeyError:
                raise ServiceError(
                    f"graph {self.name!r} has no retained snapshot for version {version} "
                    f"(retained: {sorted(self._snapshots) or 'none'})"
                ) from None

    def retained_versions(self) -> list[int]:
        """Return the versions currently pinned by the retention window."""
        with self.lock:
            return sorted(self._snapshots)

    def _record_snapshot(self, version: int, graph: Graph) -> None:
        """Pin a new snapshot and drop the ones that fell out of the window."""
        if not self.retain_versions:
            return
        self._snapshots[version] = graph
        cutoff = version - self.retain_versions
        for old_version in [v for v in self._snapshots if v <= cutoff]:
            del self._snapshots[old_version]

    def info(self) -> dict:
        """Return the JSON description served by ``GET /graphs/{name}``."""
        graph, version = self.snapshot()
        return {
            "name": self.name,
            "version": version,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "store": graph.store_backend,
        }


class GraphRegistry:
    """Thread-safe name → :class:`RegisteredGraph` map with update fan-out.

    ``retain_versions`` is handed to every registered graph: keep the last K
    snapshots addressable (and GC older ones); ``None`` pins no history.
    """

    def __init__(self, retain_versions: Optional[int] = None) -> None:
        self._graphs: dict[str, RegisteredGraph] = {}
        self._lock = threading.Lock()
        self._listeners: list[UpdateListener] = []
        self.retain_versions = retain_versions
        #: Durability hook (duck-typed to avoid a storage-layer import): when
        #: set, ``record_graph_registered`` is called for every successful
        #: registration before the caller sees it — the WAL's
        #: ack-implies-logged contract.  Recovery attaches this only after
        #: replay, so restored registrations are never re-logged.
        self.journal = None

    # ------------------------------------------------------------ membership

    def register(self, name: str, graph: Graph) -> RegisteredGraph:
        """Register ``graph`` under ``name`` at version 1.

        Duplicate names are refused — replacing a live graph would silently
        invalidate the versions its sessions have recorded.
        """
        validate_resource_name(name, "graph")
        with self._lock:
            if name in self._graphs:
                raise ServiceError(f"graph {name!r} is already registered")
            registered = RegisteredGraph(name, graph, retain_versions=self.retain_versions)
            self._graphs[name] = registered
        if self.journal is not None:
            self.journal.record_graph_registered(registered)
        return registered

    def restore(
        self,
        name: str,
        graph: Graph,
        version: int,
        snapshots: Optional[dict[int, Graph]] = None,
    ) -> RegisteredGraph:
        """Re-register a graph at a recovered version (recovery only).

        Unlike :meth:`register` this places the graph at an arbitrary
        version with an explicit retained-snapshot window, and never
        journals — the caller is replaying state that is already durable.
        """
        validate_resource_name(name, "graph")
        with self._lock:
            if name in self._graphs:
                raise ServiceError(f"graph {name!r} is already registered")
            registered = RegisteredGraph(name, graph, retain_versions=self.retain_versions)
            registered.version = version
            if self.retain_versions:
                registered._snapshots = dict(snapshots) if snapshots else {version: graph}
            self._graphs[name] = registered
            return registered

    def register_file(self, name: str, path: PathLike, store: Optional[str] = None) -> RegisteredGraph:
        """Load a graph JSON file (:func:`repro.graph.io.load_graph`) and register it."""
        return self.register(name, load_graph(path, store=store))

    def get(self, name: str) -> RegisteredGraph:
        """Return the registered graph or raise :class:`ServiceError`."""
        with self._lock:
            try:
                return self._graphs[name]
            except KeyError:
                raise ServiceError(f"no graph registered under {name!r}") from None

    def names(self) -> list[str]:
        """Return the registered names, sorted."""
        with self._lock:
            return sorted(self._graphs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs

    # --------------------------------------------------------------- updates

    def add_listener(self, listener: UpdateListener) -> None:
        """Subscribe to accepted updates (called inside the graph's lock)."""
        self._listeners.append(listener)

    def apply_update(self, name: str, delta: BatchUpdate) -> UpdateOutcome:
        """Apply ΔG to the named graph: new snapshot, version + 1, fan-out.

        The whole transition happens under the graph's lock.  A delta that
        cannot be applied (:class:`~repro.errors.UpdateError`) leaves the
        graph and its version untouched — ``apply_update`` raises before
        the swap, so readers never observe a half-applied batch.
        """
        registered = self.get(name)
        with registered.lock:
            graph_before = registered.graph
            graph_after = apply_update(graph_before, delta)
            registered.graph = graph_after
            registered.version += 1
            registered._record_snapshot(registered.version, graph_after)
            outcome = UpdateOutcome(
                name=name,
                version=registered.version,
                delta=delta,
                graph_before=graph_before,
                graph_after=graph_after,
                applied=len(delta),
            )
            for listener in self._listeners:
                listener(outcome)
            return outcome

    # ------------------------------------------------------------- reporting

    def describe(self) -> list[dict]:
        """Return ``RegisteredGraph.info()`` for every graph, name-sorted."""
        return [self.get(name).info() for name in self.names()]


def registry_from_specs(specs: Iterable[tuple[str, str]], store: Optional[str] = None) -> GraphRegistry:
    """Build a registry from ``(name, path)`` pairs (the CLI's ``--graph name=path``)."""
    registry = GraphRegistry()
    for name, path in specs:
        registry.register_file(name, path, store=store)
    return registry
