"""The HTTP detection server (stdlib ``http.server.ThreadingHTTPServer``).

Endpoints (all request/response bodies are JSON; detection streams are
NDJSON, flushed per record):

========  ================================  =====================================
Method    Path                              Meaning
========  ================================  =====================================
GET       /health                           liveness + graph/session counts
GET       /graphs                           list registered graphs
POST      /graphs/{name}                    register a graph (body: graph doc)
GET       /graphs/{name}                    name, version, node/edge counts
POST      /graphs/{name}/updates            apply a BatchUpdate, bump version
POST      /graphs/{name}/detect             stream one budgeted detection (NDJSON)
POST      /graphs/{name}/sessions           open a continuous session
GET       /sessions                         list live sessions
GET       /sessions/{id}                    current ViolationSet + version
GET       /sessions/{id}/deltas?since=V     per-version ViolationDeltas after V
DELETE    /sessions/{id}                    close a session
GET       /rules                            list rule catalogs
POST      /rules/{name}                     register a catalog (RuleSet document)
POST      /admin/checkpoint                 force a durability checkpoint
GET       /metrics                          Prometheus text exposition
GET       /debug/traces?limit=N             recent completed spans (JSON)
========  ================================  =====================================

Durability: constructing the service with ``data_dir`` makes it crash-safe
— state is recovered from the directory's checkpoint + WAL before the
socket binds, every accepted mutation is WAL-logged before its response,
and a checkpoint runs every ``checkpoint_every`` accepted updates (or on
demand via ``POST /admin/checkpoint``).  See :mod:`repro.storage.manager`.

Error mapping: malformed requests and unknown names raise
:class:`~repro.errors.ReproError` subclasses, which become a 4xx JSON body
``{"error": message}`` (404 for unknown resources, 409 for duplicate
registrations, 429 when the detection job pool is saturated — see below —
and 400 otherwise).  A failure *after* a stream has started cannot change
the status line any more, so the stream is terminated with an ``error``
record instead (see :mod:`repro.service.protocol`).

Detection streams do **not** run on the HTTP handler thread: each detect
request is admitted to a bounded :class:`~repro.service.jobs.
DetectionJobPool` (``max_jobs`` slots, ``serve --max-jobs N``) and the
kernel runs on a job thread while the handler drains a bounded record
queue.  A saturated pool refuses the request up front with ``429 Too Many
Requests`` — admission control, not failure; management endpoints and
continuous-session maintenance never occupy slots.

Responses use HTTP/1.0 framing (connection closes at end of body), which is
what lets detection streams run without a Content-Length: the client reads
NDJSON lines until EOF.  :class:`DetectionService` wraps server + registry +
session manager into one object with ``start()`` / ``stop()`` and context-
manager support; ``port=0`` binds an ephemeral port, reported via ``url``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import obs
from repro.core.ngd import RuleSet
from repro.detect.parallel.executor import fault_tolerance_counters
from repro.errors import (
    DeadlineExceededError,
    PoolSaturatedError,
    ReproError,
    ServiceError,
)
from repro.graph.graph import Graph
from repro.graph.io import graph_from_dict, update_from_list
from repro.service.jobs import DEFAULT_MAX_JOBS, DetectionJobPool, SessionManager
from repro.service.protocol import (
    MIME_JSON,
    MIME_NDJSON,
    encode_record,
    error_record,
    parse_detect_request,
)
from repro.service.registry import GraphRegistry

__all__ = ["DetectionService"]

#: Refuse request bodies beyond this size (a malformed client should not be
#: able to balloon server memory; 64 MiB comfortably fits every test graph).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service's registry and session manager.

    One instance per request (http.server semantics); the shared state lives
    on ``self.server.service``.  Request handling must stay re-entrant: the
    ThreadingHTTPServer runs each connection on its own thread.
    """

    server_version = "repro-detect"
    # HTTP/1.0: responses are framed by connection close, enabling unbounded
    # NDJSON streams without chunked-encoding bookkeeping.
    protocol_version = "HTTP/1.0"

    # ------------------------------------------------------------- plumbing

    @property
    def service(self) -> "DetectionService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        # BaseHTTPRequestHandler's default per-request noise is replaced by
        # the service's structured access log (one line per request, written
        # from _observe); --verbose restores the stdlib lines on top.
        if self.service.verbose:
            super().log_message(format, *args)

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        self._last_status = code
        super().send_response(code, message)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # drain what the client declared before erroring, else it is
            # still blocked sending the body when we close the socket and
            # sees ECONNRESET instead of the JSON error explaining the limit
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 1 << 20))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise ServiceError(f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} byte limit")
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _send_json(
        self,
        document: object,
        status: int = 200,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(document, sort_keys=True, default=str) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", MIME_JSON)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: Exception) -> None:
        message = str(exc)
        status = 400
        headers: Optional[dict[str, str]] = None
        if isinstance(exc, PoolSaturatedError):
            status = 429
        elif isinstance(exc, DeadlineExceededError):
            # transient: the deadline elapsed before anything streamed, a
            # retry (ideally with a larger timeout_seconds) may succeed
            status = 503
            headers = {"Retry-After": "1"}
        elif isinstance(exc, ServiceError):
            if message.startswith("no "):
                status = 404
            elif "already registered" in message:
                status = 409
        self._send_json({"error": message}, status=status, headers=headers)

    def _path_parts(self) -> tuple[list[str], dict[str, str]]:
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        params: dict[str, str] = {}
        for pair in query.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                params[key] = value
        return parts, params

    # ------------------------------------------------------------- dispatch

    def _route_label(self) -> str:
        """Collapse the request path to a bounded metric label.

        Resource names become ``{name}`` placeholders so the
        ``repro_http_requests_total`` label set stays small no matter how
        many graphs or sessions a tenant creates.
        """
        parts, _ = self._path_parts()
        if not parts:
            return "/"
        head = parts[0]
        if head in ("health", "metrics", "rules", "graphs", "sessions"):
            pattern = [head]
            if len(parts) >= 2:
                pattern.append("{name}" if head in ("graphs", "sessions", "rules") else parts[1])
            if len(parts) >= 3:
                pattern.append(parts[2])
            return "/" + "/".join(pattern[:3])
        if head in ("admin", "debug") and len(parts) >= 2:
            return f"/{head}/{parts[1]}"
        return "/unknown"

    def _observe(self, handler) -> None:
        """Time one request, emit HTTP metrics, write the access-log line."""
        self._last_status = 0
        self._trace_id: Optional[str] = None
        self._job_id: Optional[str] = None
        started = time.monotonic()
        try:
            handler()
        finally:
            duration = time.monotonic() - started
            route = self._route_label()
            if obs.enabled():
                obs.counter_inc(
                    "repro_http_requests_total",
                    {"method": self.command, "route": route, "status": str(self._last_status)},
                )
                obs.histogram_observe("repro_http_request_seconds", {"route": route}, duration)
            self.service.log_access(
                method=self.command,
                path=self.path,
                status=self._last_status,
                duration=duration,
                trace_id=self._trace_id,
                job_id=self._job_id,
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._observe(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._observe(self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._observe(self._handle_delete)

    def _handle_get(self) -> None:
        parts, params = self._path_parts()
        try:
            if parts == ["health"]:
                self._send_json(self.service.health())
            elif parts == ["graphs"]:
                self._send_json({"graphs": self.service.registry.describe()})
            elif len(parts) == 2 and parts[0] == "graphs":
                self._send_json(self.service.registry.get(parts[1]).info())
            elif parts == ["sessions"]:
                self._send_json({"sessions": self.service.manager.describe_sessions()})
            elif len(parts) == 2 and parts[0] == "sessions":
                self._send_json(self.service.manager.session(parts[1]).state_document())
            elif len(parts) == 3 and parts[0] == "sessions" and parts[2] == "deltas":
                session = self.service.manager.session(parts[1])
                since = self._parse_since(params)
                self._send_json(
                    {
                        "session": session.session_id,
                        "since": since,
                        "current_version": session.current_version,
                        "deltas": session.deltas_since(since),
                    }
                )
            elif parts == ["rules"]:
                self._send_json({"catalogs": self.service.manager.describe_catalogs()})
            elif parts == ["metrics"]:
                self._send_metrics()
            elif parts == ["debug", "traces"]:
                self._send_traces(params)
            else:
                raise ServiceError(f"no resource at {self.path!r}")
        except ReproError as exc:
            self._send_error_json(exc)
        except Exception as exc:  # noqa: BLE001 - a crashed handler drops the connection
            self._send_json({"error": f"internal error: {exc!r}"}, status=500)

    def _handle_post(self) -> None:
        parts, _ = self._path_parts()
        try:
            body = self._read_json_body()
            if len(parts) == 2 and parts[0] == "graphs":
                self._register_graph(parts[1], body)
            elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "updates":
                self._apply_update(parts[1], body)
            elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "detect":
                self._stream_detect(parts[1], body)
            elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "sessions":
                self._create_session(parts[1], body)
            elif len(parts) == 2 and parts[0] == "rules":
                self._register_catalog(parts[1], body)
            elif parts == ["admin", "checkpoint"]:
                self._force_checkpoint()
            else:
                raise ServiceError(f"no resource at {self.path!r}")
        except ReproError as exc:
            self._send_error_json(exc)
        except Exception as exc:  # noqa: BLE001 - a crashed handler drops the connection
            # _stream_detect never lets non-socket errors escape once the
            # 200 is committed, so replying here is always still possible
            self._send_json({"error": f"internal error: {exc!r}"}, status=500)

    def _handle_delete(self) -> None:
        parts, _ = self._path_parts()
        try:
            if len(parts) == 2 and parts[0] == "sessions":
                self.service.manager.close_session(parts[1])
                self._send_json({"closed": parts[1]})
            else:
                raise ServiceError(f"no resource at {self.path!r}")
        except ReproError as exc:
            self._send_error_json(exc)
        except Exception as exc:  # noqa: BLE001 - a crashed handler drops the connection
            self._send_json({"error": f"internal error: {exc!r}"}, status=500)

    # ------------------------------------------------------------- handlers

    @staticmethod
    def _parse_since(params: dict[str, str]) -> int:
        raw = params.get("since", "0")
        try:
            return int(raw)
        except ValueError:
            raise ServiceError(f"'since' must be an integer version, got {raw!r}") from None

    def _register_graph(self, name: str, body: object) -> None:
        if not isinstance(body, dict):
            raise ServiceError("graph registration body must be a graph JSON document")
        # the io decoders raise builtin exceptions on malformed-but-JSON
        # shapes (a nodes entry missing its label, a non-list edges value);
        # convert them so the tenant gets the documented 4xx error body
        try:
            graph = graph_from_dict(body, store=self.service.store)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(f"graph document is malformed: {exc!r}") from exc
        registered = self.service.registry.register(name, graph)
        self._send_json(registered.info(), status=201)

    def _apply_update(self, name: str, body: object) -> None:
        if not isinstance(body, list):
            raise ServiceError("update body must be a list of unit-update objects")
        try:
            delta = update_from_list(body)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(f"update document is malformed: {exc!r}") from exc
        outcome = self.service.registry.apply_update(name, delta)
        # the update (and its session deltas) is WAL-logged by the time
        # apply_update returns; the periodic checkpoint runs here, after
        # the graph lock is released, so it never extends the lock hold
        persistence = self.service.persistence
        if persistence is not None:
            persistence.maybe_checkpoint()
        self._send_json(
            {
                "graph": outcome.name,
                "version": outcome.version,
                "applied": outcome.applied,
                "sessions_advanced": sum(
                    1
                    for s in self.service.manager.describe_sessions()
                    if s["graph"] == name and s["current_version"] == outcome.version
                ),
            }
        )

    def _create_session(self, name: str, body: object) -> None:
        request = parse_detect_request(body)
        session = self.service.manager.create_session(name, request)
        self._send_json(session.state_document(), status=201)

    def _register_catalog(self, name: str, body: object) -> None:
        if not isinstance(body, dict):
            raise ServiceError("catalog body must be a RuleSet JSON document")
        try:
            rules = RuleSet.from_dict(body)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(f"rule-set document is malformed: {exc!r}") from exc
        self.service.manager.register_catalog(name, rules)
        self._send_json({"catalog": name, "rules": len(rules)}, status=201)

    def _send_metrics(self) -> None:
        """``GET /metrics``: the process-wide registry in Prometheus text form."""
        body = obs.exposition().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_traces(self, params: dict[str, str]) -> None:
        """``GET /debug/traces?limit=N``: recent completed spans, newest last."""
        raw = params.get("limit", "200")
        try:
            limit = int(raw)
        except ValueError:
            raise ServiceError(f"'limit' must be an integer, got {raw!r}") from None
        if limit < 1:
            raise ServiceError(f"'limit' must be >= 1, got {limit}")
        spans = obs.traces(limit)
        self._send_json({"enabled": obs.enabled(), "count": len(spans), "spans": spans})

    def _force_checkpoint(self) -> None:
        persistence = self.service.persistence
        if persistence is None:
            raise ServiceError(
                "no durability layer: the service was started without --data-dir"
            )
        self._send_json(persistence.checkpoint())

    def _stream_detect(self, name: str, body: object) -> None:
        request = parse_detect_request(body)
        records = self.service.manager.stream_detection(name, request)
        self._trace_id = getattr(records, "trace_id", None)
        self._job_id = getattr(records, "job_id", None)
        # pull the first record before committing the 200: a bad catalog
        # name or unknown graph still gets a clean JSON error response
        try:
            first = next(records)
        except StopIteration:
            first = None
        if first is not None and first.get("type") == "error":
            # the job thread converts kernel exceptions to in-band error
            # records; one arriving before anything streamed means the
            # detection failed to start — the status line is still ours
            # to set, so report it as a proper error response
            close = getattr(records, "close", None)
            if close is not None:
                close()
            if first.get("retryable"):
                # transient (worker pool collapse): 503 + Retry-After so
                # well-behaved clients back off and retry on a fresh crew
                self._send_json(
                    {"error": f"detection failed to start: {first.get('error')}"},
                    status=503,
                    headers={"Retry-After": "1"},
                )
                return
            raise ServiceError(f"detection failed to start: {first.get('error')}")
        self.send_response(200)
        self.send_header("Content-Type", MIME_NDJSON)
        if self._trace_id is not None:
            self.send_header("X-Repro-Trace", self._trace_id)
        self.end_headers()
        try:
            if first is not None:
                self.wfile.write(encode_record(first))
                self.wfile.flush()
            for record in records:
                self.wfile.write(encode_record(record))
                self.wfile.flush()
        except OSError:
            pass  # the client hung up mid-stream; nothing left to tell it
        except Exception as exc:  # noqa: BLE001 - headers are sent: report in-band
            try:
                self.wfile.write(
                    encode_record(
                        error_record(
                            f"{exc!r}", retryable=isinstance(exc, DeadlineExceededError)
                        )
                    )
                )
                self.wfile.flush()
            except OSError:
                pass
        finally:
            # closing the consumer iterator signals the job pool to cancel
            # the producing detection job and free its slot promptly
            close = getattr(records, "close", None)
            if close is not None:
                close()


class DetectionService:
    """Registry + session manager + threaded HTTP server, as one object.

    ::

        service = DetectionService(port=0)
        service.registry.register("g", graph)
        service.manager.register_catalog("example", example_rules())
        with service:                      # start() / stop()
            client = ServiceClient(service.url)
            ...

    ``stop()`` shuts the listener down and joins the serving thread; in-
    flight request threads are daemonic, so shutdown does not hang on a
    slow stream.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[GraphRegistry] = None,
        store: Optional[str] = None,
        verbose: bool = False,
        retain_versions: Optional[int] = None,
        max_jobs: int = DEFAULT_MAX_JOBS,
        data_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        access_log: bool = False,
    ) -> None:
        if registry is not None and retain_versions is not None:
            # a caller-supplied registry carries its own retention window; a
            # mismatched retain_versions here would silently no-op the
            # snapshot half of the GC while the session half still compacts
            if registry.retain_versions != retain_versions:
                raise ServiceError(
                    f"retain_versions={retain_versions} conflicts with the supplied "
                    f"registry's retain_versions={registry.retain_versions}; construct "
                    "the registry with GraphRegistry(retain_versions=...) instead"
                )
        self.registry = (
            registry if registry is not None else GraphRegistry(retain_versions=retain_versions)
        )
        self.manager = SessionManager(
            self.registry,
            retain_versions=retain_versions,
            job_pool=DetectionJobPool(max_jobs=max_jobs),
        )
        self.store = store
        self.verbose = verbose
        #: one structured line per request on stderr (``serve`` turns this
        #: on unless --quiet); independent of the stdlib lines ``verbose``
        #: restores
        self.access_log = access_log
        self._started_at = time.time()
        self.persistence = None
        if data_dir is not None:
            # recovery runs before the socket binds: by the time any client
            # can connect, the registry and sessions are back to the exact
            # acknowledged state, and the journal hooks are attached
            from repro.storage.manager import DEFAULT_CHECKPOINT_EVERY, PersistenceManager

            self.persistence = PersistenceManager(
                data_dir,
                self.registry,
                self.manager,
                checkpoint_every=(
                    checkpoint_every if checkpoint_every is not None else DEFAULT_CHECKPOINT_EVERY
                ),
            )
            self.persistence.recover()
        elif checkpoint_every is not None:
            raise ServiceError("checkpoint_every requires data_dir")
        self._httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — the port is concrete even for port=0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "DetectionService":
        """Serve requests on a background thread; returns self."""
        if self._thread is not None:
            raise ServiceError("service is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-service:{self.address[1]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections and join the serving thread."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None
        self.manager.shutdown()
        if self.persistence is not None:
            self.persistence.close()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -------------------------------------------------------------- reporting

    def log_access(
        self,
        method: str,
        path: str,
        status: int,
        duration: float,
        trace_id: Optional[str] = None,
        job_id: Optional[str] = None,
    ) -> None:
        """Write one structured access-log line to stderr (if enabled)."""
        if not self.access_log:
            return
        fields = [
            f"method={method}",
            f"path={path}",
            f"status={status}",
            f"duration_ms={duration * 1000.0:.2f}",
        ]
        if trace_id is not None:
            fields.append(f"trace={trace_id}")
        if job_id is not None:
            fields.append(f"job={job_id}")
        print(" ".join(fields), file=sys.stderr, flush=True)

    def health(self) -> dict:
        """The ``GET /health`` document.

        Beyond liveness it carries an operational snapshot: process uptime,
        the job pool's occupancy, per-size warm-executor-pool hit/miss
        counters, and (with a durability layer) the WAL LSN and the age of
        the last checkpoint.
        """
        pool = self.manager.job_pool
        document = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "observability": obs.enabled(),
            "graphs": len(self.registry),
            "sessions": self.manager.session_count(),
            "jobs": {"active": pool.active_jobs(), "max": pool.max_jobs},
            "executor_pools": self.manager.describe_pools(),
            # process-wide supervision counters (worker_restarts,
            # units_retried, degraded_runs) — kept outside the obs registry
            # so they are visible even with REPRO_OBS=off
            "fault_tolerance": fault_tolerance_counters(),
        }
        if self.persistence is not None:
            document["persistence"] = self.persistence.info()
        return document

    # ---------------------------------------------------------- convenience

    def register_graph(self, name: str, graph: Graph) -> None:
        """Register an in-process graph (the HTTP-free path for embedding)."""
        self.registry.register(name, graph)
