"""Command-line entry point: detect NGD violations in a graph file.

Installed as ``repro-detect``.  Usage::

    repro-detect GRAPH.json [--rules example] [--update UPDATE.json] [--processors 8]

``--rules example`` uses the paper's Example 3 rules (φ1–φ4);
``--rules effectiveness`` uses NGD1–NGD3 of Exp-5.  With ``--update`` the
incremental algorithm runs against the batch update stored in the JSON file;
otherwise batch detection runs on the whole graph.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.builtin_rules import effectiveness_rules, example_rules
from repro.detect import dect, inc_dect, pinc_dect
from repro.graph.io import load_graph, load_update
from repro.graph.store import STORE_REGISTRY, default_store_name

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-detect", description=__doc__)
    parser.add_argument("graph", help="path to a graph JSON file (see repro.graph.io)")
    parser.add_argument(
        "--rules",
        choices=("example", "effectiveness"),
        default="example",
        help="which built-in rule set to apply (default: example = φ1–φ4)",
    )
    parser.add_argument("--update", help="path to a batch-update JSON file; enables incremental mode")
    parser.add_argument("--processors", type=int, default=1, help="simulated processors (>1 uses PIncDect)")
    parser.add_argument(
        "--store",
        choices=sorted(STORE_REGISTRY),
        default=None,
        help=(
            "graph storage backend (default: $REPRO_GRAPH_STORE or "
            f"{default_store_name()!r}); 'dict' is the reference engine, "
            "'indexed' the label-indexed optimized one"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    graph = load_graph(args.graph, store=args.store)
    rules = example_rules() if args.rules == "example" else effectiveness_rules()

    if args.update:
        delta = load_update(args.update)
        if args.processors > 1:
            result = pinc_dect(graph, rules, delta, processors=args.processors)
        else:
            result = inc_dect(graph, rules, delta)
        print(f"{result.algorithm}: +{len(result.introduced())} / -{len(result.removed())} violations")
        for violation in sorted(result.introduced(), key=str):
            print(f"  + {violation}")
        for violation in sorted(result.removed(), key=str):
            print(f"  - {violation}")
    else:
        result = dect(graph, rules)
        print(f"{result.algorithm}: {result.violation_count()} violations")
        for violation in sorted(result.violations, key=str):
            print(f"  {violation}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
