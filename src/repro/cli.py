"""Command-line entry point: detect NGD violations in a graph file.

Installed as ``repro-detect``.  Subcommands::

    repro-detect run GRAPH.json [--rules example] [--rules-file RULES.json]
                                [--engine auto|batch|parallel] [--processors 8]
                                [--execution simulated|processes]
                                [--plans-file PLANS.json]
                                [--format text|json] [--max-violations N]
    repro-detect incremental GRAPH.json --update UPDATE.json [--processors 8] [...]
    repro-detect explain GRAPH.json [--rules example] [--format text|json]
                                [--save-plans PLANS.json]
    repro-detect rules list|export [--rules effectiveness] [--output RULES.json]
    repro-detect rules discover GRAPH.json [-o RULES.json] [--min-support N]
                                [--min-confidence C] [--max-rules N]
    repro-detect serve [--host 127.0.0.1] [--port 8731] [--max-jobs N]
                       [--graph NAME=GRAPH.json ...] [--catalog NAME=RULES.json ...]

``--execution processes`` runs the parallel engine on real OS worker
processes (wall-clock parallelism over a sharded store) instead of the
deterministic cluster simulator; ``--plans-file`` / ``--save-plans``
persist compiled match plans next to their rule catalog so restarts and
worker processes skip recompilation.

``run`` performs batch detection of ``Vio(Σ, G)``; ``incremental`` computes
ΔVio(Σ, G, ΔG) against the batch update stored in ``--update``; ``explain``
compiles and prints the cost-based :class:`~repro.matching.plan.MatchPlan`
of every rule (variable order, per-variable candidate strategy with
estimated cardinality, literal schedule) without running detection; ``rules``
inspects or exports rule sets in the JSON rule-file format
(:meth:`repro.core.ngd.RuleSet.to_json`), which ``--rules-file`` loads back;
``rules discover`` mines NGDs from a graph (:mod:`repro.discovery`) straight
into that same rule-file format; ``serve`` starts the streaming detection
server (:mod:`repro.service`) with the named graphs and rule catalogs
pre-registered, printing one ``serving on http://…`` line once it is ready.

Exit codes are stable for scripting: **0** — the graph is verified clean
(the search completed with no violations / empty ΔVio), **1** — violations
were found, **2** — usage or input error (bad flags, unreadable files,
malformed rules), **3** — the search stopped early (``--max-violations`` /
``--max-cost``) without finding anything, so cleanliness was *not* verified.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from collections.abc import Sequence
from typing import Optional, Union

from repro.core.builtin_rules import effectiveness_rules, example_rules
from repro.core.ngd import RuleSet
from repro.detect import (
    DetectionOptions,
    DetectionResult,
    Detector,
    IncrementalDetectionResult,
)
from repro.errors import ReproError
from repro.graph.io import load_graph, load_update
from repro.graph.store import STORE_REGISTRY, default_store_name

__all__ = ["main", "format_result", "result_to_dict"]

#: Stable exit codes (documented in the module docstring).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2
EXIT_INCOMPLETE = 3


# ---------------------------------------------------------------- formatting


def result_to_dict(result: Union[DetectionResult, IncrementalDetectionResult]) -> dict:
    """Return the JSON document for a detection result (the ``--format json`` schema).

    Batch results carry ``violations``; incremental results carry
    ``introduced`` / ``removed`` and ``total_changes``.  Violations are
    sorted by their textual form, so output is deterministic.
    """

    def violation_entry(violation) -> dict:
        # the wire form shared with the service protocol, plus the
        # variable → node dictionary for human consumption
        entry = violation.to_dict()
        entry["assignment"] = dict(zip(entry["variables"], entry["nodes"]))
        return entry

    document: dict = {
        "algorithm": result.algorithm,
        "cost": result.cost,
        "processors": result.processors,
        "stopped_early": result.stopped_early,
        "stop_reason": result.stop_reason,
    }
    if isinstance(result, IncrementalDetectionResult):
        document["introduced"] = [
            violation_entry(v) for v in sorted(result.introduced(), key=str)
        ]
        document["removed"] = [violation_entry(v) for v in sorted(result.removed(), key=str)]
        document["total_changes"] = result.total_changes()
    else:
        document["violations"] = [
            violation_entry(v) for v in sorted(result.violations, key=str)
        ]
        document["violation_count"] = result.violation_count()
    return document


def format_result(
    result: Union[DetectionResult, IncrementalDetectionResult],
    output_format: str = "text",
) -> str:
    """Render a detection result for the terminal (shared by every subcommand).

    ``output_format`` is ``"text"`` (the human-readable listing) or
    ``"json"`` (the :func:`result_to_dict` document, indented).
    """
    if output_format == "json":
        return json.dumps(result_to_dict(result), indent=2, default=str, sort_keys=True)

    lines: list[str] = []
    suffix = f" (stopped early: {result.stop_reason})" if result.stopped_early else ""
    if isinstance(result, IncrementalDetectionResult):
        lines.append(
            f"{result.algorithm}: +{len(result.introduced())} / "
            f"-{len(result.removed())} violations{suffix}"
        )
        for violation in sorted(result.introduced(), key=str):
            lines.append(f"  + {violation}")
        for violation in sorted(result.removed(), key=str):
            lines.append(f"  - {violation}")
    else:
        lines.append(f"{result.algorithm}: {result.violation_count()} violations{suffix}")
        for violation in sorted(result.violations, key=str):
            lines.append(f"  {violation}")
    return "\n".join(lines)


# ------------------------------------------------------------------- parsing


def _add_rules_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rules",
        choices=("example", "effectiveness"),
        default="example",
        help="which built-in rule set to apply (default: example = φ1–φ4)",
    )
    parser.add_argument(
        "--rules-file",
        help="load the rule set from a JSON rule file instead of the built-ins "
        "(see 'repro-detect rules export')",
    )


def _add_detection_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="path to a graph JSON file (see repro.graph.io)")
    _add_rules_arguments(parser)
    parser.add_argument(
        "--processors",
        type=int,
        default=1,
        help="simulated processors (>1 selects the parallel kernels)",
    )
    parser.add_argument(
        "--store",
        choices=sorted(STORE_REGISTRY),
        default=None,
        help=(
            "graph storage backend (default: $REPRO_GRAPH_STORE or "
            f"{default_store_name()!r}); 'dict' is the reference engine, "
            "'indexed' the label-indexed optimized one"
        ),
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--max-violations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N violations (early termination inside the kernel)",
    )
    parser.add_argument(
        "--max-cost",
        type=float,
        default=None,
        metavar="C",
        help="stop once the cost measure reaches C work units",
    )
    parser.add_argument(
        "--no-literal-pruning",
        action="store_true",
        help="disable literal-driven pruning of partial solutions",
    )
    parser.add_argument(
        "--execution",
        choices=("simulated", "processes"),
        default="simulated",
        help="parallel execution backend: 'simulated' = deterministic cluster "
        "simulator (cost = makespan), 'processes' = real OS worker processes "
        "over a sharded store (cost = aggregate work, wall-clock speedup); "
        "implies the parallel engine",
    )
    parser.add_argument(
        "--plans-file",
        default=None,
        metavar="PLANS.json",
        help="load pre-compiled match plans from this file instead of "
        "compiling (see 'repro-detect explain --save-plans')",
    )
    parser.add_argument(
        "--warm-pool",
        action="store_true",
        help="with --execution processes: keep worker processes alive "
        "between runs of this detector (the service reuses one pool "
        "across requests; here the flag mainly exercises the same path)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="disable adaptive replanning from observed cardinalities "
        "(default: $REPRO_ADAPTIVE_REPLAN, on)",
    )
    parser.add_argument(
        "--no-compiled",
        action="store_true",
        help="disable closure-compiled literal schedules and run the "
        "interpreted evaluator (default: $REPRO_COMPILED_EVAL, on); "
        "violations and statistics are identical either way",
    )
    parser.add_argument(
        "--save-history",
        default=None,
        metavar="HISTORY.json",
        help="persist the cardinalities observed during this run; feed "
        "them back with 'explain --observed' or embed via --save-plans",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after the run, print the observability span tree (plan "
        "compile, per-rule work, per-step candidate counts) to stderr; "
        "needs REPRO_OBS unset or 'on'",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="batch detection of Vio(Σ, G) over a whole graph"
    )
    _add_detection_arguments(run_parser)
    run_parser.add_argument(
        "--engine",
        choices=("auto", "batch", "parallel"),
        default="auto",
        help="execution engine (default: auto = batch unless --processors > 1)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    incremental_parser = subparsers.add_parser(
        "incremental", help="incremental detection of ΔVio(Σ, G, ΔG) against an update"
    )
    _add_detection_arguments(incremental_parser)
    incremental_parser.add_argument(
        "--update", required=True, help="path to a batch-update JSON file"
    )
    incremental_parser.set_defaults(handler=_cmd_incremental)

    explain_parser = subparsers.add_parser(
        "explain", help="print the compiled match plan of every rule against a graph"
    )
    explain_parser.add_argument("graph", help="path to a graph JSON file (see repro.graph.io)")
    _add_rules_arguments(explain_parser)
    explain_parser.add_argument(
        "--store",
        choices=sorted(STORE_REGISTRY),
        default=None,
        help="graph storage backend (default: process default)",
    )
    explain_parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    explain_parser.add_argument(
        "--save-plans",
        default=None,
        metavar="PLANS.json",
        help="persist the compiled plans to this file (loadable with "
        "run/incremental --plans-file; skips recompilation on restart)",
    )
    explain_parser.add_argument(
        "--observed",
        default=None,
        metavar="HISTORY.json",
        help="fold a persisted cardinality history (run/incremental "
        "--save-history) into compilation as priors; matching steps are "
        "marked '(observed prior)' and --save-plans embeds the history",
    )
    explain_parser.set_defaults(handler=_cmd_explain)

    rules_parser = subparsers.add_parser(
        "rules", help="list, export, or discover rule sets in the JSON rule-file format"
    )
    rules_parser.add_argument("action", choices=("list", "export", "discover"))
    rules_parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="graph JSON file to mine rules from ('discover' only)",
    )
    _add_rules_arguments(rules_parser)
    rules_parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="output format for 'list' (default: text)",
    )
    rules_parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="write 'export'/'discover' output to this file instead of stdout",
    )
    rules_parser.add_argument(
        "--min-support", type=int, default=5, help="discovery: pattern support threshold (default: 5)"
    )
    rules_parser.add_argument(
        "--min-confidence",
        type=float,
        default=0.95,
        help="discovery: literal confidence threshold (default: 0.95)",
    )
    rules_parser.add_argument(
        "--max-rules", type=int, default=100, help="discovery: cap on mined rules (default: 100)"
    )
    rules_parser.add_argument(
        "--seed", type=int, default=0, help="discovery: miner RNG seed (default: 0)"
    )
    rules_parser.add_argument(
        "--store",
        choices=sorted(STORE_REGISTRY),
        default=None,
        help="graph storage backend for 'discover' (default: process default)",
    )
    rules_parser.set_defaults(handler=_cmd_rules)

    serve_parser = subparsers.add_parser(
        "serve", help="start the streaming detection server (repro.service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=8731, help="TCP port; 0 picks an ephemeral one (default: 8731)"
    )
    serve_parser.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="NAME=GRAPH.json",
        help="pre-register a graph under NAME (repeatable)",
    )
    serve_parser.add_argument(
        "--catalog",
        action="append",
        default=[],
        metavar="NAME=RULES.json",
        help="pre-register a rule catalog under NAME (repeatable); "
        "'example' and 'effectiveness' built-ins are always available",
    )
    serve_parser.add_argument(
        "--store",
        choices=sorted(STORE_REGISTRY),
        default=None,
        help="graph storage backend for registered/uploaded graphs",
    )
    serve_parser.add_argument(
        "--retain-versions",
        type=int,
        default=None,
        metavar="K",
        help="snapshot GC: keep the last K graph snapshots addressable and "
        "squash session deltas older than the window (default: unbounded)",
    )
    serve_parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="bound the detection job pool at N concurrent streams; a "
        "saturated pool refuses new detect requests with HTTP 429 "
        "(default: 8)",
    )
    serve_parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable service state: recover from DIR on boot, write-ahead "
        "log every accepted mutation, checkpoint periodically (crash-safe "
        "kill -9 semantics; see docs/ARCHITECTURE.md)",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="with --data-dir: checkpoint after every N accepted updates "
        "(default: 64); checkpoints can also be forced via POST /admin/checkpoint",
    )
    serve_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also emit the stdlib http.server per-request lines to stderr",
    )
    serve_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the structured access log (one "
        "'method= path= status= duration_ms= trace= job=' line per request "
        "on stderr, on by default)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    return parser


# ------------------------------------------------------------------ commands


def _load_rules(args: argparse.Namespace) -> RuleSet:
    if getattr(args, "rules_file", None):
        return RuleSet.load(args.rules_file)
    return example_rules() if args.rules == "example" else effectiveness_rules()


def _build_detector(args: argparse.Namespace, engine: str) -> Detector:
    options = DetectionOptions(
        use_literal_pruning=not args.no_literal_pruning,
        max_violations=args.max_violations,
        max_cost=args.max_cost,
        execution=getattr(args, "execution", "simulated"),
        adaptive=False if getattr(args, "no_adaptive", False) else None,
        warm_pool=getattr(args, "warm_pool", False),
        compiled=False if getattr(args, "no_compiled", False) else None,
    )
    return Detector(
        _load_rules(args),
        engine=engine,
        processors=args.processors,
        options=options,
        plans_file=getattr(args, "plans_file", None),
    )


def _save_history(detector: Detector, args: argparse.Namespace) -> None:
    path = getattr(args, "save_history", None)
    if not path:
        return
    if not detector.history:
        print("no cardinalities observed; history not written", file=sys.stderr)
        return
    detector.save_history(path)
    print(f"saved observed cardinalities -> {path}", file=sys.stderr)


def _print_profile(result: Union[DetectionResult, IncrementalDetectionResult]) -> None:
    """Print the run's span tree and per-step candidate counts to stderr."""
    from repro import obs
    from repro.obs.tracing import format_span_tree

    trace_id = getattr(result, "trace_id", None)
    if trace_id is None:
        print(
            "repro-detect: no trace recorded (is REPRO_OBS off?)", file=sys.stderr
        )
        return
    print(f"profile (trace {trace_id}):", file=sys.stderr)
    print(format_span_tree(obs.traces(), trace_id), file=sys.stderr)
    snapshot = obs.snapshot()
    step_rows = sorted(
        (
            (dict(key), value)
            for name, key, value in snapshot["counters"]
            if name == "repro_match_candidates_examined" and value
        ),
        key=lambda row: (
            row[0].get("rule", ""),
            row[0].get("step", ""),
            row[0].get("strategy", ""),
        ),
    )
    if step_rows:
        print("per-step candidates examined:", file=sys.stderr)
        for labels, value in step_rows:
            print(
                "  rule={rule} step={step} strategy={strategy}: {count}".format(
                    rule=labels.get("rule", "?"),
                    step=labels.get("step", "?"),
                    strategy=labels.get("strategy", "?"),
                    count=int(value),
                ),
                file=sys.stderr,
            )
    eval_rows = sorted(
        (
            (dict(key).get("mode", "?"), value)
            for name, key, value in snapshot["counters"]
            if name == "repro_literal_evals_total" and value
        ),
    )
    if eval_rows:
        print("literal evaluations by evaluator:", file=sys.stderr)
        for mode, value in eval_rows:
            print(f"  mode={mode}: {int(value)}", file=sys.stderr)
    schedules = sum(
        value
        for name, _, value in snapshot["counters"]
        if name == "repro_compiled_schedules_total"
    )
    if schedules:
        print(f"compiled schedules built: {int(schedules)}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, store=args.store)
    with _build_detector(args, engine=args.engine) as detector:
        result = detector.run(graph)
        _save_history(detector, args)
    print(format_result(result, args.output_format))
    if args.profile:
        _print_profile(result)
    if result.violation_count():
        return EXIT_VIOLATIONS
    # a truncated search that found nothing has not verified cleanliness
    return EXIT_INCOMPLETE if result.stopped_early else EXIT_CLEAN


def _cmd_incremental(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, store=args.store)
    delta = load_update(args.update)
    with _build_detector(args, engine="auto") as detector:
        result = detector.run_incremental(graph, delta)
        _save_history(detector, args)
    print(format_result(result, args.output_format))
    if args.profile:
        _print_profile(result)
    if result.total_changes():
        return EXIT_VIOLATIONS
    return EXIT_INCOMPLETE if result.stopped_early else EXIT_CLEAN


def _cmd_explain(args: argparse.Namespace) -> int:
    """Compile and print the match plan of every rule (cost-based order,
    per-variable strategy + estimated cardinality, literal schedule)."""
    from repro.matching.adaptive import CardinalityHistory
    from repro.matching.plan import compile_plans, format_plan, save_plans

    graph = load_graph(args.graph, store=args.store)
    rule_set = _load_rules(args)
    history = CardinalityHistory.load(args.observed) if args.observed else None
    plans = compile_plans(graph, rule_set, history=history)
    if args.save_plans:
        save_plans(plans, args.save_plans, history=history)
        print(f"saved {len(plans)} compiled plan(s) -> {args.save_plans}", file=sys.stderr)
    if args.output_format == "json":
        document = {
            "graph": args.graph,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "rules": rule_set.name,
            "plans": [plan.to_dict() for plan in plans],
        }
        print(json.dumps(document, indent=2, ensure_ascii=False))
    else:
        print(
            f"match plans for {rule_set.name} over {args.graph} "
            f"(|V|={graph.node_count()}, |E|={graph.edge_count()})"
        )
        for plan in plans:
            print(format_plan(plan))
    return EXIT_CLEAN


def _cmd_rules(args: argparse.Namespace) -> int:
    if args.action == "discover":
        return _cmd_rules_discover(args)
    if args.graph is not None:
        print("repro-detect: error: a graph argument is only valid with 'discover'", file=sys.stderr)
        return EXIT_USAGE
    rule_set = _load_rules(args)
    if args.action == "export":
        if args.output:
            rule_set.save(args.output)
        else:
            print(rule_set.to_json())
        return EXIT_CLEAN
    if args.output_format == "json":
        listing = [
            {
                "name": rule.name,
                "pattern": rule.pattern.name,
                "pattern_size": rule.pattern.size(),
                "diameter": rule.diameter(),
                "premise": str(rule.premise),
                "conclusion": str(rule.conclusion),
            }
            for rule in rule_set
        ]
        print(json.dumps({"name": rule_set.name, "rules": listing}, indent=2, ensure_ascii=False))
    else:
        print(f"{rule_set.name}: {len(rule_set)} rules, dΣ={rule_set.diameter()}")
        for rule in rule_set:
            print(f"  {rule}")
    return EXIT_CLEAN


def _cmd_rules_discover(args: argparse.Namespace) -> int:
    """Mine NGDs from a graph into the rule-file format (``RuleSet.save``)."""
    from repro.discovery import DiscoveryConfig, discover_ngds

    if args.graph is None:
        print("repro-detect: error: 'rules discover' needs a graph file", file=sys.stderr)
        return EXIT_USAGE
    graph = load_graph(args.graph, store=args.store)
    config = DiscoveryConfig(
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        max_rules=args.max_rules,
        seed=args.seed,
    )
    mined = discover_ngds(graph, config)
    if args.output:
        mined.save(args.output)
        print(
            f"discovered {len(mined)} rule(s) from {args.graph} "
            f"(dΣ={mined.diameter()}) -> {args.output}"
        )
    else:
        print(mined.to_json())
    return EXIT_CLEAN


def _parse_name_path_specs(specs: list[str], option: str) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for spec in specs:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise ReproError(f"{option} expects NAME=PATH, got {spec!r}")
        pairs.append((name, path))
    return pairs


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the detection service and block until interrupted."""
    from repro.service import DetectionService
    from repro.service.jobs import DEFAULT_MAX_JOBS

    if args.checkpoint_every is not None and args.data_dir is None:
        raise ReproError("--checkpoint-every requires --data-dir")
    service = DetectionService(
        host=args.host,
        port=args.port,
        store=args.store,
        verbose=args.verbose,
        retain_versions=args.retain_versions,
        max_jobs=args.max_jobs if args.max_jobs is not None else DEFAULT_MAX_JOBS,
        data_dir=args.data_dir,
        checkpoint_every=args.checkpoint_every,
        access_log=not args.quiet,
    )
    if service.persistence is not None:
        recovered = service.persistence.recovered
        print(
            "repro-detect: recovered {graphs} graph(s), {sessions} session(s) "
            "from {checkpoint} + {replayed} WAL record(s)".format(
                graphs=recovered.get("graphs", 0),
                sessions=recovered.get("sessions", 0),
                checkpoint=recovered.get("checkpoint") or "empty checkpoint",
                replayed=recovered.get("replayed", 0),
            ),
            file=sys.stderr,
        )
    # a recovered data dir already holds its registrations: re-registering
    # the same names must not 409 the boot, so presence wins over the flags
    for name, path in _parse_name_path_specs(args.graph, "--graph"):
        if name not in service.registry:
            service.registry.register_file(name, path, store=args.store)
    for name, rules in (("example", example_rules()), ("effectiveness", effectiveness_rules())):
        if name not in service.manager.catalogs:
            service.manager.register_catalog(name, rules)
    for name, path in _parse_name_path_specs(args.catalog, "--catalog"):
        if name not in service.manager.catalogs:
            service.manager.register_catalog(name, RuleSet.load(path))
    with service:
        # the ready line is the contract scripts wait on (tests, CI smoke)
        print(f"repro-detect: serving on {service.url}", flush=True)
        print(
            f"repro-detect: {len(service.registry)} graph(s), "
            f"{len(service.manager.catalogs)} catalog(s); Ctrl-C to stop",
            file=sys.stderr,
        )
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("repro-detect: shutting down", file=sys.stderr)
    return EXIT_CLEAN


# --------------------------------------------------------------------- entry


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns a stable process exit code (see module docstring)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; surface the code
        # as a return value so embedding callers (and tests) never see exits.
        return int(exc.code or 0)
    try:
        return args.handler(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-detect: error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
