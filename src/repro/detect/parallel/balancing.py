"""Hybrid workload balancing for PIncDect.

Section 6.3: the workload of a processor is *skewed* when its queue of work
units is much longer than the others'.  PIncDect combats skew at two levels:

1. **Work-unit splitting** (cost-estimation based): expanding or verifying a
   partial solution whose anchor has a huge adjacency list is parallelised
   across all processors when the estimated parallel cost
   ``C·(k+1) + |adj|/p`` beats the sequential cost ``|adj|``.
   :func:`should_split` implements that test.
2. **Periodic redistribution**: every ``intvl`` time units the skewness
   ``|BVio_i| / avg_t |BVio_t|`` of each processor is computed; processors
   above the threshold η (3 in the paper's experiments) shed work units
   evenly to processors below η′ (0.7).  :func:`plan_rebalancing` computes
   the moves; the cluster simulator charges the messages.

The paper's Exp-1/Exp-4 ablations (PIncDect_ns / _nb / _NO) correspond to
switching these two mechanisms off individually or together, captured here by
:class:`BalancingPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BalancingPolicy",
    "rebalancing_pays",
    "should_split",
    "should_split_planned",
    "should_split_step",
    "skewness",
    "plan_rebalancing",
]

#: Skewness threshold above which a processor sheds work (η in the paper).
DEFAULT_ETA = 3.0
#: Skewness threshold below which a processor may receive work (η′ in the paper).
DEFAULT_ETA_PRIME = 0.7
#: Default communication latency parameter C (the paper fixes C = 60).
DEFAULT_LATENCY = 60.0
#: Default workload-monitoring interval (the paper fixes intvl = 45s).
DEFAULT_INTERVAL = 45.0


@dataclass(frozen=True)
class BalancingPolicy:
    """Configuration of the hybrid strategy (and of its ablations)."""

    enable_splitting: bool = True
    enable_rebalancing: bool = True
    latency: float = DEFAULT_LATENCY
    interval: float = DEFAULT_INTERVAL
    eta: float = DEFAULT_ETA
    eta_prime: float = DEFAULT_ETA_PRIME

    @classmethod
    def hybrid(cls, latency: float = DEFAULT_LATENCY, interval: float = DEFAULT_INTERVAL) -> "BalancingPolicy":
        """The full strategy used by PIncDect."""
        return cls(True, True, latency, interval)

    @classmethod
    def no_splitting(cls, latency: float = DEFAULT_LATENCY, interval: float = DEFAULT_INTERVAL) -> "BalancingPolicy":
        """PIncDect_ns: periodic redistribution only."""
        return cls(False, True, latency, interval)

    @classmethod
    def no_rebalancing(cls, latency: float = DEFAULT_LATENCY, interval: float = DEFAULT_INTERVAL) -> "BalancingPolicy":
        """PIncDect_nb: cost-estimated splitting only."""
        return cls(True, False, latency, interval)

    @classmethod
    def none(cls, latency: float = DEFAULT_LATENCY, interval: float = DEFAULT_INTERVAL) -> "BalancingPolicy":
        """PIncDect_NO: neither mechanism."""
        return cls(False, False, latency, interval)

    def variant_suffix(self) -> str:
        """Return the paper's suffix for this configuration ("", "ns", "nb" or "NO")."""
        if self.enable_splitting and self.enable_rebalancing:
            return ""
        if self.enable_rebalancing:
            return "ns"
        if self.enable_splitting:
            return "nb"
        return "NO"


def should_split(adjacency_size: int, matched_depth: int, processors: int, latency: float) -> bool:
    """Return True when the parallel cost estimate beats the sequential one.

    Sequential cost: ``|adj|``.  Parallel cost: ``C·(k+1) + |adj|/p`` where
    ``k`` is the number of already-matched pattern nodes (Section 6.3).
    """
    if processors <= 1:
        return False
    sequential = float(adjacency_size)
    parallel = latency * (matched_depth + 1) + adjacency_size / processors
    return parallel < sequential


def should_split_planned(
    remaining_estimate: float,
    adjacency_size: int,
    matched_depth: int,
    processors: int,
    latency: float,
) -> bool:
    """Plan-guided split test: workload = the plan's remaining-subtree estimate.

    The raw predicate (:func:`should_split`) only sees the *immediate*
    adjacency scan, so it splits a step whose anchor is a hub even when the
    subtree below it dies out one level later, and refuses to split a small
    scan that fans out enormously below.  With a compiled
    :class:`~repro.matching.plan.MatchPlan` the expected size of the whole
    remaining subtree is known (``MatchPlan.remaining_cost``); the same
    cost comparison — ``C·(k+1) + W/p < W`` — is applied to that estimate
    instead.  The workload measure ``W`` is the larger of the estimate and
    the actual adjacency size: the scan in front of us is a *lower bound*
    on the remaining work, so an estimate the data has already beaten never
    talks the scheduler out of a split the raw predicate would take.

    Executors charge actual sizes either way — the plan decides, the data
    pays — and the raw predicate stays the oracle on the planner-off path.
    """
    if processors <= 1:
        return False
    workload = max(remaining_estimate, float(adjacency_size))
    parallel = latency * (matched_depth + 1) + workload / processors
    return parallel < workload


def should_split_step(
    plan,
    order: tuple,
    adjacency_size: int,
    matched_depth: int,
    processors: int,
    latency: float,
) -> bool:
    """Decide one expansion step's split — the kernels' shared entry point.

    Plan-guided (:func:`should_split_planned` on the remaining-subtree
    estimate) when a compiled :class:`~repro.matching.plan.MatchPlan` is
    executing, the raw adjacency test on the planner-off oracle path.
    Both simulated kernels call this for their filtering and verification
    steps so the decision logic cannot diverge between them.
    """
    if plan is not None:
        return should_split_planned(
            plan.remaining_cost(order, matched_depth),
            adjacency_size,
            matched_depth,
            processors,
            latency,
        )
    return should_split(adjacency_size, matched_depth, processors, latency)


def rebalancing_pays(
    moves: list[tuple[int, int, int]],
    latency: float,
    average_unit_cost: float,
) -> bool:
    """Return True when a planned redistribution round is worth its messages.

    Shipping units charges one message latency ``C`` to every participant
    (origins and destinations alike), so a round costs ``C · |participants|``.
    The benefit is the work the receivers take off the stragglers' critical
    path — at most the moved unit count times the *observed* average cost of
    one unit.  The same cost-vs-benefit shape as the splitting predicate
    (Section 6.3), but fed by measured unit costs rather than adjacency
    estimates: a skewed queue of tiny units is not worth a round of
    messages at large ``C``, while the same queue at small ``C`` is.

    ``average_unit_cost`` is what the executor has observed so far
    (``work_done / units_done``); with no observations yet the round is
    declined — the interval clock only advances once work has been
    charged, so this arises only in degenerate simulations.
    """
    if not moves:
        return False
    moved = sum(count for _origin, _destination, count in moves)
    participants = {
        endpoint for origin, destination, _count in moves for endpoint in (origin, destination)
    }
    return moved * average_unit_cost > latency * len(participants)


def skewness(queue_lengths: list[int]) -> list[float]:
    """Return ``|BVio_i| / avg_t |BVio_t|`` for every processor.

    When every queue is empty the skewness of every processor is defined as
    zero (there is nothing to balance).
    """
    if not queue_lengths:
        return []
    average = sum(queue_lengths) / len(queue_lengths)
    if average == 0:
        return [0.0] * len(queue_lengths)
    return [length / average for length in queue_lengths]


def plan_rebalancing(
    queue_lengths: list[int],
    eta: float = DEFAULT_ETA,
    eta_prime: float = DEFAULT_ETA_PRIME,
) -> list[tuple[int, int, int]]:
    """Return ``(origin, destination, count)`` moves that relieve skewed processors.

    Every processor whose skewness exceeds ``eta`` distributes its excess
    (the units above the average) evenly across the processors whose skewness
    is below ``eta_prime``; counts are rounded down so a move of zero units is
    never emitted.
    """
    values = skewness(queue_lengths)
    if not values:
        return []
    average = sum(queue_lengths) / len(queue_lengths)
    all_receivers = sorted(
        (i for i, value in enumerate(values) if value < eta_prime),
        key=lambda i: queue_lengths[i],
    )
    if not all_receivers:
        return []
    moves: list[tuple[int, int, int]] = []
    for origin, value in enumerate(values):
        if value <= eta:
            continue
        excess = int(queue_lengths[origin] - average)
        if excess <= 0:
            continue
        # hand the excess to the emptiest receivers; never involve more
        # receivers than there are units to ship (each extra receiver costs a message)
        receivers = [i for i in all_receivers if i != origin][: max(1, min(len(all_receivers), excess))]
        if not receivers:
            continue
        share = excess // len(receivers)
        remainder = excess - share * len(receivers)
        for position, destination in enumerate(receivers):
            count = share + (1 if position < remainder else 0)
            if count > 0:
                moves.append((origin, destination, count))
    return moves
