"""A real (thread-based) parallel detector, complementing the simulator.

The cluster simulator in this package reproduces the paper's *scheduling*
behaviour deterministically; this module provides the pragmatic counterpart a
downstream user actually wants on a multi-core machine: run the incremental
(or batch) detection rule-by-rule on a thread pool and merge the results.

Parallelism is coarse-grained (one task per rule × pivot group), which is the
right granularity for CPython: each task spends its time in graph traversal
dominated by dictionary lookups, so threads mainly help when the per-rule
workloads are uneven, and the interface mirrors ``inc_dect``/``dect`` so the
two are interchangeable.  Results are identical to the sequential algorithms
(asserted in the tests) — only wall-clock changes.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.ngd import NGD, RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.base import DetectionResult, IncrementalDetectionResult
from repro.core.validation import violations_of_rule
from repro.detect.incdect import inc_dect
from repro.graph.graph import Graph
from repro.graph.updates import BatchUpdate, apply_update
from repro.matching.candidates import MatchStatistics

__all__ = ["threaded_dect", "threaded_inc_dect"]


def threaded_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    max_workers: int = 4,
    use_literal_pruning: bool = True,
) -> DetectionResult:
    """Batch detection with one thread-pool task per rule."""
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    stats = MatchStatistics()
    started = time.perf_counter()
    violations = ViolationSet()

    def detect_rule(rule: NGD) -> ViolationSet:
        local_stats = MatchStatistics()
        found = violations_of_rule(graph, rule, use_literal_pruning, local_stats)
        return found, local_stats

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for found, local_stats in pool.map(detect_rule, list(rule_set)):
            violations.update(found)
            stats.merge(local_stats)

    elapsed = time.perf_counter() - started
    return DetectionResult(
        violations=violations,
        stats=stats,
        wall_time=elapsed,
        cost=float(stats.total_operations()),
        processors=max_workers,
        algorithm="ThreadedDect",
    )


def threaded_inc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    max_workers: int = 4,
    use_literal_pruning: bool = True,
    graph_after: Optional[Graph] = None,
) -> IncrementalDetectionResult:
    """Incremental detection with one thread-pool task per rule.

    Each task runs the sequential ``inc_dect`` restricted to a single rule;
    the per-rule deltas are merged.  This is exactly the decomposition the
    paper's algorithms exploit (rules are independent of each other).
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    updated = graph_after if graph_after is not None else apply_update(graph, delta)
    stats = MatchStatistics()
    started = time.perf_counter()
    introduced = ViolationSet()
    removed = ViolationSet()

    def detect_rule(rule: NGD) -> IncrementalDetectionResult:
        return inc_dect(
            graph,
            RuleSet([rule]),
            delta,
            use_literal_pruning=use_literal_pruning,
            graph_after=updated,
        )

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for result in pool.map(detect_rule, list(rule_set)):
            introduced.update(result.introduced())
            removed.update(result.removed())
            stats.merge(result.stats)

    elapsed = time.perf_counter() - started
    return IncrementalDetectionResult(
        delta=ViolationDelta(introduced=introduced, removed=removed),
        stats=stats,
        wall_time=elapsed,
        cost=float(stats.total_operations()),
        processors=max_workers,
        algorithm="ThreadedIncDect",
    )
