"""Work units for the parallel detection algorithms.

PIncDect (Section 6.3) treats every partial solution awaiting expansion as a
*work unit*.  A work unit records which rule it belongs to, the partial
match built so far, the matching order being followed, and whether it grew
out of an insertion or a deletion pivot (which determines the graph version
it is expanded against).

:func:`expand_work_unit` performs one expansion step — exactly the
"candidate filtering followed by verification" step of procedure PIncMatch —
and reports the sizes the cost model needs (the anchor's adjacency list for
filtering, the candidate's adjacency list for verification) so the scheduler
can decide whether to split the step across processors.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.ngd import NGD
from repro.core.violations import Violation
from repro.graph.graph import Graph
from repro.matching.candidates import MatchStatistics, node_satisfies_unary_premise
from repro.matching.compiled import resolve_compiled
from repro.matching.matchn import assignment_for_match, match_violates_dependency

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.matching.adaptive import AdaptiveController
    from repro.matching.plan import MatchPlan

__all__ = [
    "WorkUnit",
    "ExpansionOutcome",
    "expand_work_unit",
    "initial_units_for_pivot",
    "seed_consistent",
]


def seed_consistent(graph: Graph, rule: NGD, unit: "WorkUnit") -> bool:
    """Return True when a seed partial solution is internally consistent in ``graph``.

    Checks node existence, label compatibility, and every pattern edge whose
    endpoints are both already bound (the expansion step only verifies edges
    touching the *next* variable, so edges entirely inside the seed must be
    validated up front).
    """
    mapping = unit.mapping()
    for variable, node in mapping.items():
        if not graph.has_node(node):
            return False
        if not rule.pattern.node(variable).matches_label(graph.node(node).label):
            return False
    for edge in rule.pattern.edges():
        if edge.source in mapping and edge.target in mapping:
            if not graph.has_edge(mapping[edge.source], mapping[edge.target], edge.label):
                return False
    return True


@dataclass(frozen=True)
class WorkUnit:
    """A partial solution awaiting expansion at some processor."""

    rule_index: int
    order: tuple[str, ...]
    assignment: tuple[tuple[str, Hashable], ...]
    from_insertion: bool = True

    def depth(self) -> int:
        """Return the number of pattern variables already matched."""
        return len(self.assignment)

    def is_complete(self) -> bool:
        """Return True when every variable of the matching order is bound."""
        return len(self.assignment) >= len(self.order)

    def mapping(self) -> dict[str, Hashable]:
        """Return the partial match as a dictionary."""
        return dict(self.assignment)

    def next_variable(self) -> str:
        """Return the next pattern variable to match."""
        return self.order[len(self.assignment)]

    def extended(self, variable: str, node: Hashable) -> "WorkUnit":
        """Return a new work unit with ``variable`` bound to ``node``."""
        return WorkUnit(
            rule_index=self.rule_index,
            order=self.order,
            assignment=self.assignment + ((variable, node),),
            from_insertion=self.from_insertion,
        )


@dataclass
class ExpansionOutcome:
    """The result of one expansion step of a work unit."""

    new_units: list[WorkUnit]
    violations: list[Violation]
    filtering_adjacency: int
    verification_adjacency: int
    candidates_considered: int


def initial_units_for_pivot(
    rule_index: int,
    rule: NGD,
    seed: dict[str, Hashable],
    from_insertion: bool,
    plan: Optional["MatchPlan"] = None,
) -> WorkUnit:
    """Build the work unit corresponding to an update pivot (or any seed match).

    With a compiled plan, the remainder of the matching order is chosen by
    the plan's cost model (seed variables stay first — they are already
    bound); without one, by the static ``Pattern.matching_order``.
    """
    if plan is not None:
        order = plan.order_for_seed(tuple(seed.keys()))
    else:
        order = tuple(rule.pattern.matching_order(seed=list(seed.keys())))
    assignment = tuple((variable, seed[variable]) for variable in order if variable in seed)
    return WorkUnit(rule_index=rule_index, order=order, assignment=assignment, from_insertion=from_insertion)


def _anchor_variable(rule: NGD, unit: WorkUnit, next_variable: str) -> Optional[str]:
    """Return a matched variable adjacent (in the pattern) to ``next_variable``."""
    matched = {variable for variable, _ in unit.assignment}
    for neighbour in sorted(rule.pattern.neighbours(next_variable)):
        if neighbour in matched:
            return neighbour
    return None


def expand_work_unit(
    graph: Graph,
    rule: NGD,
    unit: WorkUnit,
    use_literal_pruning: bool = True,
    stats: Optional[MatchStatistics] = None,
    plan: Optional["MatchPlan"] = None,
    adaptive: Optional["AdaptiveController"] = None,
    compiled: Optional[bool] = None,
) -> ExpansionOutcome:
    """Expand ``unit`` by matching its next pattern variable.

    With a compiled plan, the step executes the plan's candidate strategy
    and literal schedule (:func:`_expand_with_plan`); an optional adaptive
    controller observes the step's candidate count and may re-order the
    unit's unbound suffix first.  ``compiled`` selects the closure-compiled
    literal schedule (:mod:`repro.matching.compiled`) on the plan path;
    ``None`` defers to ``REPRO_COMPILED_EVAL``.  Without a plan, candidates
    are drawn from the adjacency list of an already-matched neighbour of the
    next variable (the "anchor"), checked for label and edge consistency
    against the whole partial solution, and pruned with the premise
    literals.  Completed matches are checked against X → Y and turned into
    violations.
    """
    stats = stats if stats is not None else MatchStatistics()
    if plan is not None and not unit.is_complete():
        return _expand_with_plan(
            graph, rule, unit, plan, use_literal_pruning, stats, adaptive, resolve_compiled(compiled)
        )
    if unit.is_complete():
        # a pivot can already cover every pattern variable (e.g. a two-node pattern);
        # the only remaining work is the dependency check itself
        match = unit.mapping()
        violations: list[Violation] = []
        if match_violates_dependency(graph, match, rule.premise, rule.conclusion, stats):
            stats.matches_emitted += 1
            violations.append(Violation.from_mapping(rule.name, match, rule.pattern.variables))
        return ExpansionOutcome([], violations, 1, 0, 0)

    pattern = rule.pattern
    next_variable = unit.next_variable()
    partial = unit.mapping()
    anchor = _anchor_variable(rule, unit, next_variable)

    candidates: set[Hashable] = set()
    filtering_adjacency = 0
    if anchor is None:
        # disconnected pattern component: fall back to the label index
        candidates = set(graph.nodes_with_label(pattern.node(next_variable).label))
        filtering_adjacency = len(candidates)
    else:
        anchor_node = partial[anchor]
        filtering_adjacency = graph.adjacency_size(anchor_node)
        # label-filtered adjacency: the store serves exactly the neighbours
        # reachable over the pattern edge's label (O(result) on IndexedStore)
        for edge in pattern.out_edges(anchor):
            if edge.target == next_variable:
                candidates.update(graph.successors_by_label(anchor_node, edge.label))
        for edge in pattern.in_edges(anchor):
            if edge.source == next_variable:
                candidates.update(graph.predecessors_by_label(anchor_node, edge.label))

    stats.candidates_examined += len(candidates)
    new_units: list[WorkUnit] = []
    violations: list[Violation] = []
    verification_adjacency = 0
    pattern_node = pattern.node(next_variable)

    for candidate in sorted(candidates, key=graph.node_rank):
        if not pattern_node.matches_label(graph.node(candidate).label):
            continue
        if (
            use_literal_pruning
            and rule.premise
            and not node_satisfies_unary_premise(graph, candidate, next_variable, rule.premise, stats)
        ):
            continue
        # verification: every pattern edge between next_variable and matched variables
        verification_adjacency += graph.adjacency_size(candidate)
        consistent = True
        for edge in pattern.out_edges(next_variable):
            if edge.target in partial or edge.target == next_variable:
                target = candidate if edge.target == next_variable else partial[edge.target]
                stats.edge_checks += 1
                if not graph.has_edge(candidate, target, edge.label):
                    consistent = False
                    break
        if consistent:
            for edge in pattern.in_edges(next_variable):
                if edge.source in partial:
                    stats.edge_checks += 1
                    if not graph.has_edge(partial[edge.source], candidate, edge.label):
                        consistent = False
                        break
        if not consistent:
            continue
        stats.expansions += 1
        extended = unit.extended(next_variable, candidate)
        if extended.is_complete():
            match = extended.mapping()
            if match_violates_dependency(graph, match, rule.premise, rule.conclusion, stats):
                stats.matches_emitted += 1
                violations.append(Violation.from_mapping(rule.name, match, rule.pattern.variables))
        else:
            new_units.append(extended)

    return ExpansionOutcome(
        new_units=new_units,
        violations=violations,
        filtering_adjacency=filtering_adjacency,
        verification_adjacency=verification_adjacency,
        candidates_considered=len(candidates),
    )


def _expand_with_plan(
    graph: Graph,
    rule: NGD,
    unit: WorkUnit,
    plan: "MatchPlan",
    use_literal_pruning: bool,
    stats: MatchStatistics,
    adaptive: Optional["AdaptiveController"] = None,
    compiled: bool = False,
) -> ExpansionOutcome:
    """One plan-driven expansion step.

    The plan's anchored intersection enforces every pattern edge between the
    next variable and the bound prefix during candidate generation, so the
    residual per-candidate verification is the self-loop edges plus the
    scheduled literals — O(1) in the candidate's degree.  Cost-model sizes:
    ``filtering_adjacency`` is the index scan the strategy performed,
    ``verification_adjacency`` one unit per surviving candidate.

    When the adaptive controller reports drift it re-orders the unit's
    unbound suffix before the step executes; the children inherit the
    revised order, so one replanning decision steers the whole subtree.

    With ``compiled`` the scheduled literals run as pre-compiled closures
    over a slot list rebuilt from the unit's bound prefix (assignments are
    always prefixes of the order), billing the same counters as the
    interpreted loop below.
    """
    from repro.matching.plan import step_candidates

    if adaptive is not None:
        revised = adaptive.order_for(unit.order, unit.depth())
        if revised != unit.order:
            unit = WorkUnit(
                rule_index=unit.rule_index,
                order=revised,
                assignment=unit.assignment,
                from_insertion=unit.from_insertion,
            )
    schedule = plan.schedule_for(unit.order)
    depth = unit.depth()
    step = schedule[depth]
    partial = unit.mapping()
    if compiled and rule is plan.rule:
        cs = plan.compiled_for(unit.order)
        entry = cs.steps[depth]
        slots: list = [None] * len(unit.order)
        node = graph.node
        for index, (_, bound_node) in enumerate(unit.assignment):
            slots[index] = node(bound_node).attributes
    else:
        cs = None
        entry = None
        slots = []
    candidates, scanned = step_candidates(graph, plan, step, partial, stats, use_literal_pruning, entry)
    if adaptive is not None:
        adaptive.observe(step, len(candidates))

    new_units: list[WorkUnit] = []
    violations: list[Violation] = []
    verification = 0
    conclusion_literals = rule.conclusion.literals()
    for candidate in candidates:
        consistent = True
        for label in step.self_loops:
            stats.edge_checks += 1
            if not graph.has_edge(candidate, candidate, label):
                consistent = False
                break
        if not consistent:
            continue
        verification += 1
        partial[step.variable] = candidate
        if entry is not None:
            slots[depth] = graph.node(candidate).attributes
        pruned = False
        if use_literal_pruning:
            if entry is not None:
                pruned = entry.pruned(slots, stats)
            else:
                for literal_index in step.premise_checks:
                    literal = plan.premise_literal(literal_index)
                    stats.literal_evaluations += 1
                    assignment = assignment_for_match(graph, partial, literal.variables())
                    if not literal.holds_for(assignment):
                        pruned = True
                        break
                if not pruned and step.check_conclusion and len(conclusion_literals) == 1:
                    literal = conclusion_literals[0]
                    stats.literal_evaluations += 1
                    assignment = assignment_for_match(graph, partial, literal.variables())
                    # assignment keys ⊆ literal.variables() by construction
                    if len(assignment) == len(literal.variables()) and literal.holds_for(assignment):
                        pruned = True
        del partial[step.variable]
        if pruned:
            continue
        stats.expansions += 1
        extended = unit.extended(step.variable, candidate)
        if extended.is_complete():
            match = extended.mapping()
            if cs is not None:
                violated = cs.violates(slots, stats)
            else:
                violated = match_violates_dependency(graph, match, rule.premise, rule.conclusion, stats)
            if violated:
                stats.matches_emitted += 1
                violations.append(Violation.from_mapping(rule.name, match, rule.pattern.variables))
        else:
            new_units.append(extended)

    return ExpansionOutcome(
        new_units=new_units,
        violations=violations,
        filtering_adjacency=scanned,
        verification_adjacency=verification,
        candidates_considered=len(candidates),
    )
