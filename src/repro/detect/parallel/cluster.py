"""A deterministic shared-nothing cluster simulator.

The paper evaluates PIncDect on a cluster of up to 20 machines.  Offline and
on a single host we cannot reproduce wall-clock cluster behaviour, so the
parallel algorithms run on this simulator instead: the *algorithmic work* is
executed exactly once (so the violations found are real), but every unit of
work is *charged* to the simulated clock of the worker that would have
performed it, and every broadcast is charged the latency parameter ``C`` the
paper's cost model uses.

The reported "parallel running time" of a run is the **makespan** — the
largest worker clock when all queues drain.  Because scheduling, splitting
and balancing decisions are driven by the same cost estimates as the paper's
algorithm, the makespan reproduces the shapes of Figures 4(i)–(n): more
processors → shorter makespan, skewed work without splitting/balancing →
longer makespan, too-small latency / balancing interval → communication
overhead dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detect.base import WorkerTrace
from repro.errors import ClusterError

__all__ = ["ClusterSimulator"]


@dataclass
class _Worker:
    """One simulated processor: a clock and a queue of pending work units."""

    index: int
    clock: float = 0.0
    queue: list = field(default_factory=list)
    trace: WorkerTrace = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.trace is None:
            self.trace = WorkerTrace(worker=self.index)


class ClusterSimulator:
    """``p`` simulated workers with per-worker clocks and communication charges."""

    def __init__(self, processors: int, latency: float) -> None:
        if processors < 1:
            raise ClusterError("a cluster needs at least one processor")
        if latency < 0:
            raise ClusterError("communication latency cannot be negative")
        self.processors = processors
        self.latency = latency
        self._workers = [_Worker(index=i) for i in range(processors)]
        self.total_messages = 0

    # ----------------------------------------------------------------- clocks

    def charge(self, worker: int, amount: float) -> None:
        """Advance one worker's clock by ``amount`` work units."""
        if amount < 0:
            raise ClusterError("cannot charge negative work")
        target = self._workers[worker]
        target.clock += amount
        target.trace.busy_time += amount

    def charge_broadcast(self, origin: int, per_worker_amount: float, setup_cost: float) -> None:
        """Charge a split (broadcast) step.

        Every worker contributes its ``|adj|/p`` share (``per_worker_amount``)
        of the compute; the origin additionally pays the ``C·(k+1)`` broadcast
        and gather latency (``setup_cost``) because it must wait for the
        round-trip before the unit can continue.  Helpers overlap the message
        latency with their own compute, so they are charged the share only —
        this is what makes splitting worthwhile exactly when the paper's cost
        estimate says it is.
        """
        for worker in self._workers:
            worker.clock += per_worker_amount
            worker.trace.busy_time += per_worker_amount
        self._workers[origin].clock += setup_cost
        self._workers[origin].trace.busy_time += setup_cost
        self._workers[origin].trace.messages_sent += self.processors
        self.total_messages += self.processors

    def charge_message(self, origin: int, destination: int) -> None:
        """Charge a point-to-point message of latency ``C`` to both endpoints."""
        for index in (origin, destination):
            self._workers[index].clock += self.latency
            self._workers[index].trace.busy_time += self.latency
        self._workers[origin].trace.messages_sent += 1
        self.total_messages += 1

    def makespan(self) -> float:
        """Return the simulated parallel running time (maximum worker clock)."""
        return max(worker.clock for worker in self._workers)

    def global_time(self) -> float:
        """Return a global-progress proxy: the maximum worker clock.

        Periodic activities (workload monitoring at interval ``intvl``) are
        triggered off this value.  Elapsed wall-clock time in the real system
        is governed by whichever worker is busiest, so the maximum clock is
        the faithful proxy; a minimum would freeze as soon as one worker goes
        idle and a mean would slow the monitoring down as processors are added.
        """
        return max(worker.clock for worker in self._workers)

    # ----------------------------------------------------------------- queues

    def enqueue(self, worker: int, unit: object) -> None:
        """Append a work unit to a worker's queue (BVio_i in the paper)."""
        self._workers[worker].queue.append(unit)
        self._workers[worker].trace.units_received += 1

    def queue_length(self, worker: int) -> int:
        """Return |BVio_i| for worker ``i``."""
        return len(self._workers[worker].queue)

    def queue_lengths(self) -> list[int]:
        """Return every worker's queue length."""
        return [len(worker.queue) for worker in self._workers]

    def pop_unit(self, worker: int) -> object:
        """Pop the next work unit from a worker's queue (LIFO: depth-first expansion)."""
        target = self._workers[worker]
        if not target.queue:
            raise ClusterError(f"worker {worker} has no pending work")
        target.trace.work_units_processed += 1
        return target.queue.pop()

    def move_units(self, origin: int, destination: int, count: int, charge: bool = True) -> int:
        """Move up to ``count`` pending units from ``origin`` to ``destination``.

        Moved units come from the back of the origin queue — the most recently
        generated partial solutions, i.e. the batch that just made the queue
        skewed — so a straggler sheds exactly the work that piled up on it.
        Returns the number actually moved.  With ``charge`` the
        reassignment is billed as one message; callers batching several moves
        in one balancing round pass ``charge=False`` and charge each
        participant once via :meth:`charge` (unit shipping is pipelined in the
        real system, so the latency is paid per round, not per destination).
        """
        source = self._workers[origin]
        target = self._workers[destination]
        moved = 0
        while moved < count and source.queue:
            target.queue.append(source.queue.pop())
            moved += 1
        if moved:
            source.trace.units_shed += moved
            target.trace.units_received += moved
            if charge:
                self.charge_message(origin, destination)
            else:
                source.trace.messages_sent += 1
                self.total_messages += 1
        return moved

    def busiest_worker(self) -> int:
        """Return the index of the worker with the most pending units."""
        return max(range(self.processors), key=lambda i: len(self._workers[i].queue))

    def next_busy_worker(self) -> int | None:
        """Return the worker with pending work and the smallest clock, or None when all queues are empty."""
        candidates = [w for w in self._workers if w.queue]
        if not candidates:
            return None
        return min(candidates, key=lambda w: (w.clock, w.index)).index

    def has_pending_work(self) -> bool:
        """Return True while any queue is non-empty."""
        return any(worker.queue for worker in self._workers)

    def traces(self) -> list[WorkerTrace]:
        """Return per-worker accounting for the balancing analyses."""
        return [worker.trace for worker in self._workers]
