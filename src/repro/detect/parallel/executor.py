"""Real multi-process execution of detection work units.

The :class:`~repro.detect.parallel.cluster.ClusterSimulator` reproduces the
paper's *scheduling* behaviour deterministically but executes every work
unit serially — ``processors=N`` only divides virtual clocks.  This module
is the wall-clock counterpart: ``execution="processes"`` runs the same
:func:`~repro.detect.parallel.workunits.expand_work_unit` kernel inside N
OS processes, so N cores really do N expansions at once.  The simulator is
retained as the deterministic cost-model oracle; this backend is measured
(``benchmarks/bench_parallel_speedup.py``), not modeled.

Execution model
---------------

* The **parent** owns the full graph(s).  It computes the seed work units
  exactly as the simulated kernels do (first-variable candidates for
  PDect, update pivots for PIncDect), then places them on workers — by the
  shard that owns the seed node when the run is sharded, else on the
  least-loaded worker by the compiled plan's ``estimated_unit_cost``.
* Each **worker process** owns a LIFO stack of work units and expands them
  depth-first against a read-only graph image from a
  :class:`~repro.graph.sharded.ShardedStore` — inherited copy-on-write
  under the ``fork`` start method, spooled once and memo-loaded per
  process under ``spawn``.  Children of a unit stay on the worker that
  produced them; violations stream back over the shared result queue the
  moment their unit completes, so the parent generator yields (and
  notifies :class:`~repro.detect.observers.ViolationSink`\\ s) while
  workers are still searching.
* **Balancing** uses the same :class:`BalancingPolicy` thresholds as the
  simulator: workers piggyback queue lengths on every report, the parent
  computes the η/η′ skewness test and tells overloaded workers to shed
  their oldest (shallowest, largest-subtree) units, which are re-placed on
  the emptiest workers.  The monitoring cadence is wall-clock here
  (``REBALANCE_PERIOD_SECONDS``) — the simulator's ``intvl`` is in virtual
  work units and has no wall-clock meaning.  Work-unit *splitting* has no
  process-pool analogue: a unit's children are themselves units, so the
  shed/steal path already parallelises a hot subtree.
* **Budgets** are enforced in the parent (the only place the global
  violation count and aggregate cost exist): when a
  :class:`~repro.detect.observers.DetectionBudget` trips, a shared Event
  tells every worker to drop its pending stack, and the run reports
  ``stopped_early`` exactly like the simulated kernels.  Cancellation is
  prompt (workers poll the event between expansions) but asynchronous —
  a capped run does strictly less work, not a deterministic prefix.

The ``cost`` of a process run is the *aggregate* work performed (the sum
of the per-unit filtering + verification charges, same units as the
sequential kernels), not a simulated makespan — real wall-clock lives in
``wall_time``.  Violations are byte-identical to the serial and simulated
paths; per-unit cost counters can differ on sharded runs because border
nodes have truncated adjacency (see :mod:`repro.graph.sharded`).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import shutil
import threading
import time
import traceback
import weakref
from collections.abc import Callable, Hashable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation
from repro.detect.base import WorkerTrace
from repro.detect.instrument import RuleAttribution
from repro.detect.observers import DetectionBudget, ViolationSink, notify_violation
from repro.detect.parallel.balancing import BalancingPolicy, plan_rebalancing, skewness
from repro.detect.parallel.workunits import WorkUnit, expand_work_unit
from repro.errors import ExecutionError, WorkerPoolCollapse
from repro.graph.sharded import ShardedStore
from repro.matching.adaptive import resolve_adaptive
from repro.matching.candidates import MatchStatistics
from repro.matching.plan import MatchPlan, plans_from_document, plans_to_document
from repro.testing.faults import resolve_fault_plan

__all__ = [
    "EXECUTION_MODES",
    "START_METHOD_ENV",
    "WORKER_RESTARTS_ENV",
    "UNIT_RETRIES_ENV",
    "HEARTBEAT_PERIOD_ENV",
    "HEARTBEAT_TIMEOUT_ENV",
    "SHUTDOWN_GRACE_ENV",
    "DEFAULT_IDLE_TTL_SECONDS",
    "resolve_start_method",
    "ExecutionRuntime",
    "ProcessRunSummary",
    "WarmExecutorPool",
    "iter_process_execution",
    "drain_units_serially",
    "fault_tolerance_counters",
    "note_degraded_run",
]

#: The execution regimes the parallel kernels accept.
EXECUTION_MODES = ("simulated", "processes")

#: Environment override for the multiprocessing start method
#: (``fork`` shares images copy-on-write; ``spawn`` loads spooled images).
START_METHOD_ENV = "REPRO_EXECUTION_START_METHOD"

#: Parent-side minimum wall-clock seconds between skewness checks.
REBALANCE_PERIOD_SECONDS = 0.05

#: Workers report queue length / cost at least every this many expansions.
STATUS_EVERY_EXPANSIONS = 64

#: Workers poll their inbox / the stop event every this many expansions
#: while they still hold work (responsiveness vs per-expansion overhead).
POLL_EVERY_EXPANSIONS = 16

#: Parent-side wait for worker messages before liveness checks.
RESULT_POLL_SECONDS = 0.25

#: How long the parent waits for workers to acknowledge ``exit`` before
#: terminating them (generous: a worker finishes at most one expansion).
#: Override with ``REPRO_SHUTDOWN_GRACE`` (the env name below).
SHUTDOWN_GRACE_SECONDS = 10.0

#: Environment override for the shutdown grace period (seconds).
SHUTDOWN_GRACE_ENV = "REPRO_SHUTDOWN_GRACE"

#: A :class:`WarmExecutorPool` crew untouched for this long is torn down by
#: the next :meth:`~WarmExecutorPool.maintain` call.
DEFAULT_IDLE_TTL_SECONDS = 300.0

#: How many dead workers one run may respawn before survivors absorb the
#: load (and, with no survivors left, the run degrades to the serial path).
WORKER_RESTARTS_ENV = "REPRO_WORKER_RESTARTS"
DEFAULT_WORKER_RESTARTS = 2

#: How many times one work unit may be re-shipped after worker deaths
#: before it is quarantined as poison (finished serially in the parent,
#: where a worker-killing fault cannot follow it).
UNIT_RETRIES_ENV = "REPRO_UNIT_RETRIES"
DEFAULT_UNIT_RETRIES = 2

#: Workers send a heartbeat when no other message has gone out for this
#: long; ``0`` disables heartbeats (used by the overhead benchmark).
HEARTBEAT_PERIOD_ENV = "REPRO_WORKER_HEARTBEAT_PERIOD"
DEFAULT_HEARTBEAT_PERIOD_SECONDS = 1.0

#: A live, non-idle worker silent for this long is presumed wedged: the
#: parent kills it (terminate, then SIGKILL) and recovers its units just
#: like a death.  Generous by default — recovery is correct either way,
#: so a false positive only costs duplicated (deduplicated) work.
HEARTBEAT_TIMEOUT_ENV = "REPRO_WORKER_HEARTBEAT_TIMEOUT"
DEFAULT_HEARTBEAT_TIMEOUT_SECONDS = 30.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


# Process-wide fault-tolerance tallies surfaced by the service's /health
# endpoint.  Plain locked integers, deliberately independent of the obs
# registry: supervision telemetry must survive REPRO_OBS=off.
_FT_LOCK = threading.Lock()
_FT_COUNTERS = {"worker_restarts": 0, "units_retried": 0, "degraded_runs": 0}


def fault_tolerance_counters() -> dict:
    """Snapshot of this process's supervision tallies (for ``/health``)."""
    with _FT_LOCK:
        return dict(_FT_COUNTERS)


def _ft_count(key: str, amount: int = 1) -> None:
    with _FT_LOCK:
        _FT_COUNTERS[key] += amount


def note_degraded_run() -> None:
    """Record one run that finished on the serial path after pool trouble."""
    _ft_count("degraded_runs")
    obs.counter_inc("repro_degraded_runs_total")


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Return the multiprocessing start method a run should use.

    Explicit argument beats the ``REPRO_EXECUTION_START_METHOD``
    environment override beats the platform default: ``fork`` where
    available (zero-copy image inheritance) — but only while the parent
    is single-threaded.  Forking a multi-threaded parent (the detection
    service runs kernels on job threads inside a ThreadingHTTPServer) can
    clone a lock held by another thread and deadlock the child, so there
    the default degrades to ``spawn``; an explicit choice is honoured
    as given.
    """
    import threading

    chosen = start_method or os.environ.get(START_METHOD_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if chosen is None:
        if "fork" in available and threading.active_count() == 1:
            return "fork"
        return "spawn"
    if chosen not in available:
        raise ExecutionError(
            f"start method {chosen!r} is not available on this platform "
            f"(expected one of {available})"
        )
    return chosen


# ---------------------------------------------------------------- worker side


@dataclass
class ExecutionRuntime:
    """Everything a worker needs to expand units: rules, plans, graph images.

    Built once per run in the parent.  Under ``fork`` the object itself is
    inherited by the children (nothing is pickled); under ``spawn`` each
    worker rebuilds it from :meth:`payload` — rules travel as their JSON
    rule-file form, plans as their persisted document (so workers skip the
    statistics pass entirely), and graph images by spool manifest path.
    """

    rules: list[NGD]
    plans: Optional[tuple[MatchPlan, ...]]
    use_literal_pruning: bool
    shards: ShardedStore
    before_shards: Optional[ShardedStore] = None
    #: Adaptive replanning switch for the workers (True/False force, None =
    #: environment default).  Controllers themselves never cross the process
    #: boundary: every worker builds its own from the shipped plans.
    adaptive: Optional[bool] = None
    #: Compiled-evaluation switch for the workers (True/False force, None =
    #: ``REPRO_COMPILED_EVAL`` default).  Compiled schedules are closures and
    #: never cross the process boundary: fork children inherit the parent's
    #: memoised schedules, spawn workers recompile lazily from the shipped
    #: plan documents (``MatchPlan.__getstate__`` drops every memo).
    compiled: Optional[bool] = None

    def graph_for(self, shard_id: int, from_insertion: bool):
        """Return the read-only image a work unit expands against."""
        store = self.shards if from_insertion or self.before_shards is None else self.before_shards
        return store.shard(shard_id)

    def payload(self, spool_dir: str) -> dict:
        """Return the picklable ``spawn`` form (spools images if needed)."""
        rule_set = RuleSet(self.rules)
        document = {
            "rules_json": rule_set.to_json(),
            "plans": plans_to_document(self.plans) if self.plans is not None else None,
            "use_literal_pruning": self.use_literal_pruning,
            "shards_manifest": self.shards.spool(os.path.join(spool_dir, "after")),
            "before_manifest": (
                self.before_shards.spool(os.path.join(spool_dir, "before"))
                if self.before_shards is not None
                else None
            ),
            "adaptive": self.adaptive,
            "compiled": self.compiled,
        }
        return document

    @classmethod
    def from_payload(cls, payload: dict) -> "ExecutionRuntime":
        """Rebuild the runtime inside a ``spawn`` worker (no recompilation)."""
        rules = list(RuleSet.from_json(payload["rules_json"]))
        plans = (
            plans_from_document(payload["plans"], rules)
            if payload.get("plans") is not None
            else None
        )
        before = (
            ShardedStore.load(payload["before_manifest"])
            if payload.get("before_manifest")
            else None
        )
        return cls(
            rules=rules,
            plans=plans,
            use_literal_pruning=payload["use_literal_pruning"],
            shards=ShardedStore.load(payload["shards_manifest"]),
            before_shards=before,
            adaptive=payload.get("adaptive"),
            compiled=payload.get("compiled"),
        )


def _worker_controllers(runtime: Optional[ExecutionRuntime]):
    """Build this worker's adaptive controllers for ``runtime`` (or None)."""
    if runtime is None or runtime.plans is None:
        return None
    return resolve_adaptive(runtime.plans, runtime.adaptive)


def _worker_main(worker_id, epoch, runtime_or_payload, inbox, results, stop_event) -> None:
    """Entry point of one worker process (one *incarnation* of a slot).

    Message protocol (parent → worker): ``("units", epoch, [(shard_id,
    unit), ...])``, ``("shed", epoch, count)``, ``("runtime", payload)``,
    ``("sync",)``, ``("exit",)``.  Worker → parent — every message starts
    ``(kind, wid, epoch, ...)``:
    ``("found", wid, epoch, [(violation, from_insertion), ...], cost,
    queue_len, obs)``, ``("status", wid, epoch, queue_len, cost, obs)``,
    ``("idle", wid, epoch, cost, batches_seen, obs)``, ``("heartbeat",
    wid, epoch, queue_len)``, ``("shed_units", wid, epoch, [(shard_id,
    unit), ...])``, ``("synced", wid, epoch, stats, cost,
    units_processed, obs)``, ``("exited", wid, epoch, stats, cost,
    units_processed, obs)``, ``("error", wid, epoch, traceback_text)``.
    The trailing ``obs`` field piggybacks this worker's observability
    delta (:func:`repro.obs.drain_for_shipping`: metric deltas +
    completed spans, or None when disabled/empty) on the messages the
    worker was sending anyway — no extra queue traffic, and both ``fork``
    and ``spawn`` ship the same plain-dict payloads.  Per-producer queue
    ordering guarantees the parent has seen every violation a worker
    found before it sees that worker go idle.

    ``epoch`` is this slot's incarnation number: 0 originally, +1 per
    supervised respawn.  Both sides stamp it on run messages and discard
    mismatches, so a replacement can never consume a dead predecessor's
    in-flight units batch (and then confuse the parent's batch counters),
    and the parent can never credit a predecessor's stale idle report to
    the replacement.  ``runtime``/``sync``/``exit`` are crew-scoped, not
    run-scoped, and stay epoch-free.

    ``runtime_or_payload`` may be None: a :class:`WarmExecutorPool` worker
    bootstraps empty and receives its runtime as a ``("runtime", payload)``
    message (and a new one whenever the pool's cached key misses).
    ``("sync",)`` is the pool's end-of-run barrier: the worker reports and
    then resets its per-run counters, staying alive for the next run.
    """
    try:
        # fresh per-worker observability state: fork children must not carry
        # the parent's shards (their dumps would double-count), spawn
        # children re-resolve REPRO_OBS from the inherited environment
        obs.reset_for_worker()
        obs_on = obs.enabled()
        attribution = RuleAttribution("executor")
        fault_plan = resolve_fault_plan()
        faults = fault_plan.for_worker(worker_id, epoch) if fault_plan is not None else None
        heartbeat_period = _env_float(HEARTBEAT_PERIOD_ENV, DEFAULT_HEARTBEAT_PERIOD_SECONDS)
        last_heartbeat = time.monotonic()
        if runtime_or_payload is None:
            runtime = None
        elif isinstance(runtime_or_payload, ExecutionRuntime):
            runtime = runtime_or_payload
        else:
            runtime = ExecutionRuntime.from_payload(runtime_or_payload)
        controllers = _worker_controllers(runtime)
        stack: list[tuple[int, WorkUnit]] = []
        stats = MatchStatistics()
        cost_since = 0.0
        expansions_since = 0
        units_processed = 0
        units_since_ship = 0
        total_cost = 0.0
        idle_announced = False
        batches_seen = 0
        since_poll = 0
        wait_start: Optional[float] = None

        def _ship() -> Optional[dict]:
            """Flush per-rule accumulators + unit count, drain the delta."""
            nonlocal units_since_ship
            if not obs_on:
                return None
            attribution.emit()
            if units_since_ship:
                obs.counter_inc("repro_executor_units_total", None, units_since_ship)
                units_since_ship = 0
            return obs.drain_for_shipping()

        while True:
            # drain control messages; poll cheaply while holding work,
            # block (briefly) only when out of it
            if not stack or since_poll >= POLL_EVERY_EXPANSIONS:
                since_poll = 0
                if obs_on and not stack and wait_start is None:
                    wait_start = time.monotonic()
                try:
                    while True:
                        message = inbox.get_nowait() if stack else inbox.get(timeout=0.05)
                        kind = message[0]
                        if kind == "exit":
                            if obs_on:
                                with obs.span(
                                    "executor.worker", worker=worker_id,
                                    units_processed=units_processed, cost=round(total_cost, 3),
                                ):
                                    pass
                            results.put(
                                ("exited", worker_id, epoch,
                                 stats, total_cost, units_processed, _ship())
                            )
                            return
                        if kind == "units":
                            if message[1] != epoch:
                                # a batch addressed to a dead predecessor of
                                # this slot: its units were already recovered
                                continue
                            if wait_start is not None:
                                obs.histogram_observe(
                                    "repro_executor_queue_wait_seconds",
                                    None,
                                    time.monotonic() - wait_start,
                                )
                                wait_start = None
                            stack.extend(message[2])
                            batches_seen += 1
                            idle_announced = False
                        elif kind == "shed":
                            if message[1] != epoch:
                                continue
                            # shed the oldest (shallowest) units: the largest
                            # remaining subtrees, the best payload for a steal
                            count = min(message[2], max(len(stack) - 1, 0))
                            if count > 0:
                                shed, stack = stack[:count], stack[count:]
                                obs.counter_inc("repro_executor_shed_units_total", None, len(shed))
                                results.put(("shed_units", worker_id, epoch, shed))
                            else:
                                results.put(("shed_units", worker_id, epoch, []))
                        elif kind == "runtime":
                            runtime = ExecutionRuntime.from_payload(message[1])
                            controllers = _worker_controllers(runtime)
                            stack.clear()
                        elif kind == "sync":
                            if obs_on:
                                with obs.span(
                                    "executor.worker", worker=worker_id,
                                    units_processed=units_processed, cost=round(total_cost, 3),
                                ):
                                    pass
                            results.put(
                                ("synced", worker_id, epoch,
                                 stats, total_cost, units_processed, _ship())
                            )
                            stack.clear()
                            stats = MatchStatistics()
                            cost_since = 0.0
                            expansions_since = 0
                            units_processed = 0
                            total_cost = 0.0
                            batches_seen = 0
                            idle_announced = False
                            # fresh controllers per run: observations from one
                            # request must not replan another's tiny workload
                            controllers = _worker_controllers(runtime)
                        if stack:
                            break
                except queue_module.Empty:
                    pass
                if stop_event.is_set():
                    stack.clear()
                if heartbeat_period > 0.0:
                    now = time.monotonic()
                    if now - last_heartbeat >= heartbeat_period:
                        results.put(("heartbeat", worker_id, epoch, len(stack)))
                        last_heartbeat = now
            if not stack:
                if not idle_announced:
                    # batches_seen lets the parent discard an idle report
                    # that raced with a units batch still in this inbox
                    results.put(("idle", worker_id, epoch, cost_since, batches_seen, _ship()))
                    cost_since = 0.0
                    idle_announced = True
                continue
            if faults is not None:
                faults.on_unit()
            shard_id, unit = stack.pop()
            rule = runtime.rules[unit.rule_index]
            plan = runtime.plans[unit.rule_index] if runtime.plans is not None else None
            graph = runtime.graph_for(shard_id, unit.from_insertion)
            unit_before = attribution.before(stats)
            outcome = expand_work_unit(
                graph,
                rule,
                unit,
                use_literal_pruning=runtime.use_literal_pruning,
                stats=stats,
                plan=plan,
                adaptive=controllers[unit.rule_index] if controllers is not None else None,
                compiled=runtime.compiled,
            )
            attribution.after(rule.name, unit_before, stats)
            stack.extend((shard_id, new_unit) for new_unit in outcome.new_units)
            charge = float(max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency)
            cost_since += charge
            total_cost += charge
            units_processed += 1
            units_since_ship += 1
            expansions_since += 1
            since_poll += 1
            if outcome.violations:
                if faults is not None:
                    faults.on_put()
                found = [(violation, unit.from_insertion) for violation in outcome.violations]
                results.put(("found", worker_id, epoch, found, cost_since, len(stack), _ship()))
                last_heartbeat = time.monotonic()
                cost_since = 0.0
                expansions_since = 0
            elif expansions_since >= STATUS_EVERY_EXPANSIONS:
                if faults is not None:
                    faults.on_put()
                results.put(("status", worker_id, epoch, len(stack), cost_since, _ship()))
                last_heartbeat = time.monotonic()
                cost_since = 0.0
                expansions_since = 0
    except Exception:  # noqa: BLE001 - ship the traceback to the parent
        try:
            results.put(("error", worker_id, epoch, traceback.format_exc()))
        except Exception:  # pragma: no cover - results queue itself broken
            pass


# ---------------------------------------------------------------- parent side


@dataclass
class ProcessRunSummary:
    """What a finished (or cancelled) process run reports to its kernel."""

    cost: float = 0.0
    stats: MatchStatistics = field(default_factory=MatchStatistics)
    stop_reason: Optional[str] = None
    worker_traces: list[WorkerTrace] = field(default_factory=list)
    #: Supervised worker respawns performed during this run.
    restarts: int = 0
    #: Work units re-shipped (or quarantined) after a worker death.
    units_retried: int = 0
    #: ``(shard_id, unit)`` pairs that exceeded the per-unit retry cap —
    #: poison units the kernel must finish on the serial path.
    quarantined: list = field(default_factory=list)
    #: Set by the kernel when part of the run was drained serially.
    degraded: bool = False


@dataclass
class _WorkerCrew:
    """One set of live worker processes plus their shared channels.

    ``epochs[i]`` is slot *i*'s incarnation number; :meth:`respawn` bumps
    it and starts a replacement process on the same channels.  The spawn
    argument (and, for warm crews, the last runtime payload shipped by
    message) is retained so replacements bootstrap identically to the
    worker they replace.
    """

    method: str
    processors: int
    workers: list
    inboxes: list
    results: Any
    stop_event: Any
    worker_argument: Any = None
    epochs: list = field(default_factory=list)
    runtime_payload: Optional[dict] = None

    def alive(self) -> bool:
        return all(worker.is_alive() for worker in self.workers)

    def respawn(self, index: int):
        """Start a fresh incarnation of slot ``index`` on its channels.

        The replacement discards any stale epoch-tagged messages left in
        the inbox by its predecessor; a warm crew's replacement is
        re-primed with the crew's current runtime payload first (ordering
        holds: the runtime message is enqueued before any new units).
        """
        context = multiprocessing.get_context(self.method)
        self.epochs[index] += 1
        worker = context.Process(
            target=_worker_main,
            args=(
                index,
                self.epochs[index],
                self.worker_argument,
                self.inboxes[index],
                self.results,
                self.stop_event,
            ),
            name=f"repro-exec-{index}",
            daemon=True,
        )
        worker.start()
        self.workers[index] = worker
        if self.worker_argument is None and self.runtime_payload is not None:
            self.inboxes[index].put(("runtime", self.runtime_payload))
        return worker


def _spawn_crew(processors: int, worker_argument, method: str) -> _WorkerCrew:
    """Start ``processors`` worker processes sharing one result queue.

    ``worker_argument`` is the runtime (fork), its payload (spawn), or None
    for a warm-pool crew that receives its runtime by message later.
    """
    context = multiprocessing.get_context(method)
    stop_event = context.Event()
    results = context.Queue()
    inboxes = [context.Queue() for _ in range(processors)]
    workers = []
    try:
        for index in range(processors):
            worker = context.Process(
                target=_worker_main,
                args=(index, 0, worker_argument, inboxes[index], results, stop_event),
                name=f"repro-exec-{index}",
                daemon=True,
            )
            worker.start()
            workers.append(worker)
    except BaseException:  # pragma: no cover - start failures are environmental
        for worker in workers:
            worker.terminate()
        raise
    return _WorkerCrew(
        method=method,
        processors=processors,
        workers=workers,
        inboxes=inboxes,
        results=results,
        stop_event=stop_event,
        worker_argument=worker_argument,
        epochs=[0] * processors,
    )


def _drive_run(
    crew: _WorkerCrew,
    seeds: Sequence[tuple[int, int, WorkUnit]],
    policy: BalancingPolicy,
    budget: Optional[DetectionBudget],
    sink: Optional[ViolationSink],
    dedupe: Optional[tuple],
    base_cost: float,
    summary: ProcessRunSummary,
) -> Iterator[tuple[Violation, bool]]:
    """Distribute ``seeds`` over a live crew and stream back violations.

    The shared drive loop of one run — identical for a one-shot crew
    (:func:`iter_process_execution`) and a warm one
    (:class:`WarmExecutorPool`): initial placement, the found/status/idle
    message loop, skewness-based rebalancing, budget enforcement, and
    worker supervision.  Per-run bookkeeping (queue lengths, batch
    counters, outstanding units) is local; the caller owns crew lifecycle
    and end-of-run reconciliation.

    Supervision and exactly-once recovery: the parent remembers every
    unit it shipped to a worker (``outstanding``) and only clears the set
    on a *confirmed* idle report — per-producer queue ordering guarantees
    all of that worker's violations arrived first.  When a worker dies
    (``is_alive`` false) or goes silent past the heartbeat timeout (then
    it is killed), its outstanding units are re-executed: on a respawned
    replacement while the ``REPRO_WORKER_RESTARTS`` budget lasts, on
    survivors after.  Units are deterministic and the parent dedups every
    violation against ``introduced``/``removed`` before yielding, so this
    at-least-once re-execution still yields each violation exactly once —
    byte-identical output to an undisturbed run.  A unit that out-lives
    ``REPRO_UNIT_RETRIES`` worker deaths is poison: it is quarantined on
    ``summary.quarantined`` for the kernel's serial path instead of being
    re-shipped forever.  With no restart budget left *and* no survivor to
    absorb the load, :class:`~repro.errors.WorkerPoolCollapse` carries
    every unconfirmed unit to the kernel for serial completion.
    """
    from repro.core.violations import ViolationSet

    processors = crew.processors
    inboxes, results, workers = crew.inboxes, crew.results, crew.workers
    stop_event = crew.stop_event
    introduced, removed = dedupe if dedupe is not None else (ViolationSet(), ViolationSet())
    summary.cost = base_cost
    queue_lens = [0] * processors
    idle = [False] * processors
    batches_sent = [0] * processors
    pending_shed = 0
    pending_shed_by = [0] * processors
    emitted = len(introduced) + len(removed)
    now = time.monotonic()
    last_balance = now
    last_liveness = now
    last_seen = [now] * processors
    outstanding: list[set] = [set() for _ in range(processors)]
    retries: dict = {}
    dead_for_good: set[int] = set()
    restart_budget = max(0, _env_int(WORKER_RESTARTS_ENV, DEFAULT_WORKER_RESTARTS))
    unit_retry_cap = max(0, _env_int(UNIT_RETRIES_ENV, DEFAULT_UNIT_RETRIES))
    heartbeat_timeout = _env_float(
        HEARTBEAT_TIMEOUT_ENV, DEFAULT_HEARTBEAT_TIMEOUT_SECONDS
    )

    # initial distribution: one batch message per worker keeps startup cheap
    batches: list[list[tuple[int, WorkUnit]]] = [[] for _ in range(processors)]
    for worker_index, shard_id, unit in seeds:
        batches[worker_index].append((shard_id, unit))
    for worker_index, batch in enumerate(batches):
        if batch:
            inboxes[worker_index].put(("units", crew.epochs[worker_index], batch))
            batches_sent[worker_index] += 1
            queue_lens[worker_index] = len(batch)
            outstanding[worker_index].update(batch)

    def _maybe_rebalance() -> int:
        nonlocal last_balance
        if not policy.enable_rebalancing or pending_shed:
            return 0
        now = time.monotonic()
        if now - last_balance < REBALANCE_PERIOD_SECONDS:
            return 0
        last_balance = now
        lengths = list(queue_lens)
        if max(lengths) < 4 or not any(value > policy.eta for value in skewness(lengths)):
            return 0
        requested = 0
        shed_totals: dict[int, int] = {}
        for origin, _, count in plan_rebalancing(lengths, policy.eta, policy.eta_prime):
            shed_totals[origin] = shed_totals.get(origin, 0) + count
        for origin, count in shed_totals.items():
            if origin in dead_for_good:
                continue
            inboxes[origin].put(("shed", crew.epochs[origin], count))
            pending_shed_by[origin] += 1
            requested += 1
        return requested

    def _redistribute(units: list[tuple[int, WorkUnit]], origin: int) -> None:
        if not units:
            return
        receivers = sorted(
            (
                i
                for i in range(processors)
                if (i != origin or processors == 1) and i not in dead_for_good
            ),
            key=lambda i: (queue_lens[i], i),
        )
        if not receivers and origin not in dead_for_good:
            receivers = [origin]
        if not receivers:
            # nobody left to hand these to: surrender every unconfirmed
            # unit to the kernel's serial path
            leftovers = list(units)
            for pending in outstanding:
                leftovers.extend(pending)
                pending.clear()
            raise WorkerPoolCollapse(
                f"worker pool collapsed with {len(leftovers)} unit(s) outstanding "
                f"(restart budget {restart_budget} spent)",
                outstanding=list(dict.fromkeys(leftovers)),
            )
        receivers = receivers[: max(1, min(len(receivers), len(units)))]
        share = len(units) // len(receivers)
        remainder = len(units) - share * len(receivers)
        position = 0
        for rank, receiver in enumerate(receivers):
            count = share + (1 if rank < remainder else 0)
            if count == 0:
                continue
            batch = units[position : position + count]
            position += count
            inboxes[receiver].put(("units", crew.epochs[receiver], batch))
            batches_sent[receiver] += 1
            queue_lens[receiver] += len(batch)
            idle[receiver] = False
            outstanding[receiver].update(batch)

    def _reap(proc) -> None:
        """Make sure a failed worker is really gone, then reap it."""
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=0.5)
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=1.0)

    def _recover_workers(failed: Sequence[int]) -> None:
        """Reclaim failed workers' units; respawn or redistribute."""
        nonlocal pending_shed
        for w in failed:
            _reap(workers[w])
            lost = list(outstanding[w])
            outstanding[w].clear()
            queue_lens[w] = 0
            pending_shed -= pending_shed_by[w]
            pending_shed_by[w] = 0
            batches_sent[w] = 0
            idle[w] = True
            reship: list[tuple[int, WorkUnit]] = []
            for item in lost:
                count = retries.get(item, 0) + 1
                retries[item] = count
                if count > unit_retry_cap:
                    # poison: this unit has now out-lived several workers;
                    # the kernel finishes it serially in the parent
                    summary.quarantined.append(item)
                else:
                    reship.append(item)
            if lost:
                summary.units_retried += len(lost)
                _ft_count("units_retried", len(lost))
                obs.counter_inc("repro_units_retried_total", None, len(lost))
            if summary.restarts < restart_budget:
                summary.restarts += 1
                _ft_count("worker_restarts")
                obs.counter_inc("repro_worker_restarts_total")
                crew.respawn(w)
                last_seen[w] = time.monotonic()
                if reship:
                    inboxes[w].put(("units", crew.epochs[w], reship))
                    batches_sent[w] += 1
                    queue_lens[w] = len(reship)
                    outstanding[w].update(reship)
                    idle[w] = False
            else:
                dead_for_good.add(w)
                _redistribute(reship, origin=w)

    def _check_liveness() -> None:
        nonlocal last_liveness
        last_liveness = time.monotonic()
        if stop_event.is_set():
            return
        dead_now = [
            i
            for i in range(processors)
            if i not in dead_for_good and not workers[i].is_alive()
        ]
        if dead_now:
            _recover_workers(dead_now)
        if heartbeat_timeout > 0.0:
            now = time.monotonic()
            stalled = [
                i
                for i in range(processors)
                if i not in dead_for_good
                and not idle[i]
                and now - last_seen[i] > heartbeat_timeout
            ]
            if stalled:
                # silent past the deadline: presumed wedged.  Recovery
                # kills it first (terminate, then SIGKILL) — if it was
                # merely slow, re-execution is deduplicated, so
                # correctness is unaffected either way.
                _recover_workers(stalled)

    while summary.stop_reason is None:
        if all(idle) and pending_shed == 0:
            break
        try:
            message = results.get(timeout=RESULT_POLL_SECONDS)
        except queue_module.Empty:
            _check_liveness()
            continue
        except (EOFError, OSError, pickle.UnpicklingError):
            # a worker killed mid-put can tear a frame in the shared
            # result pipe; drop the fragment — the sender's death is
            # picked up by the next liveness check and its units are
            # re-executed, so nothing is lost
            _check_liveness()
            continue
        kind = message[0]
        worker_id = message[1]
        last_seen[worker_id] = time.monotonic()
        if message[2] != crew.epochs[worker_id]:
            # a dead incarnation's leftovers: its units were re-shipped
            # wholesale, so stale reports (even a final idle) must not
            # touch the replacement's bookkeeping
            continue
        if kind == "found":
            found, cost_delta, queue_len, obs_delta = message[3:]
            obs.absorb_shipped(obs_delta, {"worker": worker_id})
            summary.cost += cost_delta
            queue_lens[worker_id] = queue_len
            idle[worker_id] = False
            for violation, from_insertion in found:
                target = introduced if from_insertion else removed
                if violation in target:
                    continue
                target.add(violation)
                emitted += 1
                notify_violation(sink, violation, introduced=from_insertion)
                yield violation, from_insertion
                if budget is not None and budget.violations_exhausted(emitted):
                    summary.stop_reason = "max_violations"
                    break
            if summary.stop_reason is None and budget is not None and budget.cost_exhausted(summary.cost):
                summary.stop_reason = "max_cost"
        elif kind == "status":
            queue_len, cost_delta, obs_delta = message[3:]
            obs.absorb_shipped(obs_delta, {"worker": worker_id})
            summary.cost += cost_delta
            queue_lens[worker_id] = queue_len
            idle[worker_id] = False
            if budget is not None and budget.cost_exhausted(summary.cost):
                summary.stop_reason = "max_cost"
        elif kind == "idle":
            cost_delta, batches_seen, obs_delta = message[3:]
            obs.absorb_shipped(obs_delta, {"worker": worker_id})
            summary.cost += cost_delta
            if batches_seen == batches_sent[worker_id]:
                queue_lens[worker_id] = 0
                idle[worker_id] = True
                # ordering guarantee: every violation this worker found
                # arrived before this report, so its assignment is done
                outstanding[worker_id].clear()
            # else: stale — a units batch was still in flight toward
            # the worker when it reported; it will report idle again
            if budget is not None and budget.cost_exhausted(summary.cost):
                summary.stop_reason = "max_cost"
        elif kind == "heartbeat":
            pass  # liveness only; last_seen is already refreshed above
        elif kind == "shed_units":
            units = message[3]
            pending_shed -= 1
            pending_shed_by[worker_id] -= 1
            queue_lens[worker_id] = max(queue_lens[worker_id] - len(units), 0)
            for item in units:
                outstanding[worker_id].discard(item)
            if units:
                obs.counter_inc("repro_executor_steals_total", {"mode": "processes"}, len(units))
            _redistribute(units, origin=worker_id)
        elif kind == "error":
            # the worker reported a failure and exited; treat it exactly
            # like a death so one bad expansion cannot abort the run —
            # a deterministic fault ends up quarantined and re-raised by
            # the kernel's serial drain instead
            obs.counter_inc("repro_worker_errors_total")
            _recover_workers([worker_id])
        if summary.stop_reason is None:
            pending_shed += _maybe_rebalance()
            if time.monotonic() - last_liveness > RESULT_POLL_SECONDS:
                _check_liveness()


def _shutdown_crew(crew: _WorkerCrew, summary: Optional[ProcessRunSummary]) -> None:
    """Stop a crew for good: exit messages, stats drain, join/terminate.

    ``summary`` collects the workers' final stats/traces for a one-shot
    crew; pass None for a warm crew (its runs were already reconciled by
    the sync barrier — merging the exit reports again would double count).
    """
    crew.stop_event.set()
    for inbox in crew.inboxes:
        try:
            inbox.put(("exit",))
        except Exception:  # pragma: no cover - queue already torn down
            pass
    exited = [False] * crew.processors
    grace = max(0.0, _env_float(SHUTDOWN_GRACE_ENV, SHUTDOWN_GRACE_SECONDS))
    deadline = time.monotonic() + grace
    while not all(exited) and time.monotonic() < deadline:
        try:
            message = crew.results.get(timeout=0.1)
        except queue_module.Empty:
            if all(not w.is_alive() for w in crew.workers):
                break
            continue
        except (EOFError, OSError, pickle.UnpicklingError):
            continue  # torn frame from a killed worker; keep draining
        if message[0] == "exited":
            worker_id = message[1]
            _, _, _, stats, cost, units_processed, obs_delta = message
            obs.absorb_shipped(obs_delta, {"worker": worker_id})
            exited[worker_id] = True
            if summary is not None:
                summary.stats.merge(stats)
                summary.worker_traces.append(
                    WorkerTrace(
                        worker=worker_id,
                        busy_time=cost,
                        work_units_processed=units_processed,
                    )
                )
    # teardown must terminate no matter what state a worker is in: give
    # each the remaining grace to exit, then escalate join -> terminate
    # (SIGTERM) -> kill (SIGKILL, cannot be ignored).  Total wait is
    # bounded by the grace period plus ~1.5s per straggler, so a wedged
    # worker can never hang the service's request thread.
    for worker in crew.workers:
        worker.join(timeout=max(0.0, min(0.5, deadline - time.monotonic())))
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=0.5)
        if worker.is_alive():
            worker.kill()
            worker.join(timeout=0.5)
    crew.results.cancel_join_thread()
    for inbox in crew.inboxes:
        inbox.cancel_join_thread()
    if summary is not None:
        summary.worker_traces.sort(key=lambda trace: trace.worker)


def iter_process_execution(
    runtime: ExecutionRuntime,
    seeds: Sequence[tuple[int, int, WorkUnit]],
    processors: int,
    policy: BalancingPolicy,
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    dedupe: Optional[tuple] = None,
    base_cost: float = 0.0,
    start_method: Optional[str] = None,
    summary: Optional[ProcessRunSummary] = None,
) -> Iterator[tuple[Violation, bool]]:
    """Run ``seeds`` on a one-shot pool of ``processors`` worker processes.

    ``seeds`` are ``(worker_index, shard_id, unit)`` triples — placement is
    the caller's policy (shard affinity / plan-estimated least-loaded).
    Yields ``(violation, from_insertion)`` pairs as workers report them
    (deduplicated against ``dedupe = (introduced_set, removed_set)``,
    which the caller shares so parent-side seed results participate);
    ``summary`` (if supplied) is filled in before the generator returns,
    so callers that stop consuming early still see cost/stats/traces.
    ``base_cost`` counts the parent-side seeding charges toward the
    ``max_cost`` budget.  The generator's return value is the same
    :class:`ProcessRunSummary`.

    The spool directory (spawn mode: full serialized images) is removed on
    *every* exit path — clean end, worker crash, budget cancellation, and
    failures during payload spooling or worker startup — so a service
    handling repeated requests never leaks graph copies to disk.
    """
    method = resolve_start_method(start_method)
    summary = summary if summary is not None else ProcessRunSummary()
    spool_dir: Optional[str] = None
    crew: Optional[_WorkerCrew] = None
    try:
        if method == "fork":
            worker_argument = runtime
        else:
            spool_dir = _spool_directory()
            worker_argument = runtime.payload(spool_dir)
        crew = _spawn_crew(processors, worker_argument, method)
        yield from _drive_run(crew, seeds, policy, budget, sink, dedupe, base_cost, summary)
    finally:
        if crew is not None:
            _shutdown_crew(crew, summary)
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)
    return summary


def drain_units_serially(
    units: Sequence[tuple[int, WorkUnit]],
    *,
    rules: Sequence[NGD],
    plans: Optional[Sequence[MatchPlan]],
    use_literal_pruning: bool,
    graph_for: Callable[[int, bool], Any],
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    dedupe: Optional[tuple] = None,
    summary: Optional[ProcessRunSummary] = None,
    compiled: Optional[bool] = None,
) -> Iterator[tuple[Violation, bool]]:
    """Finish ``units`` (and their subtrees) in the parent, depth-first.

    The graceful-degradation tail of a process run: the kernels hand the
    unconfirmed units here after a :class:`~repro.errors.WorkerPoolCollapse`
    (restart budget spent, no survivors) and for every quarantined poison
    unit.  The parent owns the *full* graph(s) — ``graph_for(shard_id,
    from_insertion)`` returns them — which is always a superset of any
    worker's shard image, so expansion yields the exact same matches; the
    shared ``dedupe`` sets absorb whatever the workers already reported.
    Fault injection hooks live only in worker processes, so a unit that
    reliably killed workers completes here.

    Charges accrue to ``summary.cost`` and stats to ``summary.stats``
    under the same accounting as the worker loop; ``budget`` is enforced
    between expansions exactly like the parent's message loop.
    """
    from repro.core.violations import ViolationSet

    summary = summary if summary is not None else ProcessRunSummary()
    introduced, removed = dedupe if dedupe is not None else (ViolationSet(), ViolationSet())
    emitted = len(introduced) + len(removed)
    stack = list(dict.fromkeys(units))  # drop duplicates, keep order
    while stack and summary.stop_reason is None:
        shard_id, unit = stack.pop()
        rule = rules[unit.rule_index]
        plan = plans[unit.rule_index] if plans is not None else None
        graph = graph_for(shard_id, unit.from_insertion)
        outcome = expand_work_unit(
            graph,
            rule,
            unit,
            use_literal_pruning=use_literal_pruning,
            stats=summary.stats,
            plan=plan,
            adaptive=None,
            compiled=compiled,
        )
        stack.extend((shard_id, new_unit) for new_unit in outcome.new_units)
        summary.cost += float(
            max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency
        )
        for violation in outcome.violations:
            target = introduced if unit.from_insertion else removed
            if violation in target:
                continue
            target.add(violation)
            emitted += 1
            notify_violation(sink, violation, introduced=unit.from_insertion)
            yield violation, unit.from_insertion
            if budget is not None and budget.violations_exhausted(emitted):
                summary.stop_reason = "max_violations"
                break
        if summary.stop_reason is None and budget is not None and budget.cost_exhausted(
            summary.cost
        ):
            summary.stop_reason = "max_cost"


# ---------------------------------------------------------------- warm pool


class WarmExecutorPool:
    """Worker processes kept alive across runs, with their loaded runtime.

    A cold ``execution="processes"`` run pays process startup plus (under
    ``spawn``) a full graph spool/reload before the first expansion.  A
    service answering repeated detection requests over the same graph
    version pays that once here: the pool keeps one crew of ``processors``
    workers alive and remembers which runtime they have loaded, keyed by
    the caller's ``runtime_key`` (graph snapshot identity + rules digest —
    see :meth:`~repro.detect.session.Detector`).  A matching key reuses the
    workers' in-memory images outright; a miss ships a new runtime over the
    control channel (workers stay alive, images are reloaded); concurrent
    or mismatched requests fall back to a one-shot crew, so the pool is
    an optimisation, never a correctness constraint.

    End-of-run reconciliation uses a ``sync`` barrier: every worker reports
    its stats and resets its per-run counters, leaving the crew idle and
    reusable.  Lifecycle: :meth:`invalidate` on graph-version bumps (the
    registry listener), :meth:`maintain` for idle-TTL eviction (call it
    opportunistically — the pool runs no background threads, which would
    flip :func:`resolve_start_method`'s fork default), :meth:`shutdown`
    to stop for good.  Spool directories are finalizer-backstopped so an
    abandoned pool cannot leak them.
    """

    def __init__(
        self,
        processors: int,
        start_method: Optional[str] = None,
        idle_ttl: float = DEFAULT_IDLE_TTL_SECONDS,
        spool_cache=None,
    ) -> None:
        self.processors = processors
        self.idle_ttl = idle_ttl
        self._start_method = start_method
        #: Optional durable spool-directory provider (``directory_for(key)``,
        #: the service's --data-dir segment cache).  Cache-provided
        #: directories are owned by the cache — the pool never deletes
        #: them, so a later miss on the same runtime key adopts the
        #: already-serialized images instead of re-spooling.
        self.spool_cache = spool_cache
        self._lock = threading.Lock()
        self._crew: Optional[_WorkerCrew] = None
        self._runtime_key: Optional[Hashable] = None
        self._spool_dir: Optional[str] = None
        self._spool_finalizer = None
        self._stale = False
        self._last_used = time.monotonic()
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0
        self.evictions = 0

    # ------------------------------------------------------------- execution

    def execute(
        self,
        runtime_key: Optional[Hashable],
        runtime_factory: Callable[[], ExecutionRuntime],
        seeds: Sequence[tuple[int, int, WorkUnit]],
        processors: int,
        policy: BalancingPolicy,
        budget: Optional[DetectionBudget] = None,
        sink: Optional[ViolationSink] = None,
        dedupe: Optional[tuple] = None,
        base_cost: float = 0.0,
        summary: Optional[ProcessRunSummary] = None,
    ) -> Iterator[tuple[Violation, bool]]:
        """Run ``seeds`` on the warm crew; same contract as
        :func:`iter_process_execution`.

        ``runtime_factory`` is only called on a key miss (or fallback), so
        a warm hit skips building shard stores entirely; ``runtime_key`` of
        None forces a miss.  Requests for a different processor count, or
        arriving while another run holds the pool, fall back to a one-shot
        crew rather than queueing.
        """
        summary = summary if summary is not None else ProcessRunSummary()
        if processors != self.processors or not self._lock.acquire(blocking=False):
            self.fallbacks += 1
            yield from iter_process_execution(
                runtime_factory(),
                seeds,
                processors,
                policy,
                budget=budget,
                sink=sink,
                dedupe=dedupe,
                base_cost=base_cost,
                start_method=self._start_method,
                summary=summary,
            )
            return summary
        try:
            if self._stale:
                self._invalidate_locked()
                self._stale = False
            crew = self._crew
            if crew is not None and not crew.alive():
                # never hand out a crew with dead members: a run would
                # start by re-discovering the death and paying recovery
                self.evictions += 1
                self._teardown_locked()
                crew = None
            if crew is None:
                crew = self._spawn_locked()
            if runtime_key is None or runtime_key != self._runtime_key:
                self.misses += 1
                self._load_runtime_locked(runtime_factory(), runtime_key)
                self._runtime_key = runtime_key
            else:
                self.hits += 1
            run_failed = False
            try:
                yield from _drive_run(
                    crew, seeds, policy, budget, sink, dedupe, base_cost, summary
                )
            except (ExecutionError, OSError):
                run_failed = True
                raise
            finally:
                # reconcile even when the caller abandons the generator
                # early (GeneratorExit): cancel leftovers, then resync
                if run_failed or not self._resync(crew, summary):
                    self._teardown_locked()
                else:
                    self._last_used = time.monotonic()
        finally:
            self._lock.release()
        return summary

    # -------------------------------------------------------------- lifecycle

    def invalidate(self) -> None:
        """Forget the loaded runtime (e.g. the graph version was bumped).

        Non-blocking: if a run is in flight the pool is marked stale and
        the drop happens when that run releases it.  Workers stay alive —
        only the cached key (and its spool) is discarded, so the next
        ``execute`` reloads.
        """
        if self._lock.acquire(blocking=False):
            try:
                self._invalidate_locked()
            finally:
                self._lock.release()
        else:
            self._stale = True

    def maintain(self, now: Optional[float] = None) -> bool:
        """Tear the crew down if it idled past ``idle_ttl`` or lost workers.

        Returns True when an eviction happened.  Callers sprinkle this
        after request handling; it never blocks on a busy pool.  A crew
        with dead members goes regardless of TTL — keeping it warm would
        only defer the eviction to the next checkout.
        """
        if self._crew is None:
            return False
        now = time.monotonic() if now is None else now
        if now - self._last_used < self.idle_ttl and self._crew.alive():
            return False
        if not self._lock.acquire(blocking=False):
            return False
        try:
            if self._crew is None:
                return False
            if not self._crew.alive():
                self.evictions += 1
                self._teardown_locked()
                return True
            if now - self._last_used >= self.idle_ttl:
                self._teardown_locked()
                return True
            return False
        finally:
            self._lock.release()

    def shutdown(self) -> None:
        """Stop the crew and remove the spool; the pool may be reused after."""
        with self._lock:
            self._teardown_locked()

    def stats(self) -> dict:
        """Return hit/miss/fallback/eviction counters and warm status."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "evictions": self.evictions,
            "warm": self._crew is not None,
        }

    # -------------------------------------------------------------- internals

    def _spawn_locked(self) -> _WorkerCrew:
        method = resolve_start_method(self._start_method)
        # workers bootstrap without a runtime; it arrives by message
        crew = _spawn_crew(self.processors, None, method)
        self._crew = crew
        self._runtime_key = None
        return crew

    def _load_runtime_locked(self, runtime: ExecutionRuntime, runtime_key=None) -> None:
        crew = self._crew
        cached_dir: Optional[str] = None
        if self.spool_cache is not None and runtime_key is not None:
            cached_dir = self.spool_cache.directory_for(runtime_key)
        spool_dir = cached_dir if cached_dir is not None else _spool_directory()
        try:
            payload = runtime.payload(spool_dir)
        except BaseException:
            if cached_dir is None:
                shutil.rmtree(spool_dir, ignore_errors=True)
            raise
        for inbox in crew.inboxes:
            inbox.put(("runtime", payload))
        # retained so a supervised respawn mid-run can re-prime the
        # replacement with the runtime its predecessor had loaded
        crew.runtime_payload = payload
        # the previous runtime can never be addressed again (units always
        # follow their runtime message), so its spool goes now
        self._drop_spool()
        self._spool_dir = spool_dir
        # only one-shot temp directories get a removal finalizer; cached
        # segment directories outlive the pool by design (the cache prunes
        # them at service boot and clean shutdown)
        if cached_dir is None:
            self._spool_finalizer = weakref.finalize(self, _remove_spool, spool_dir)

    def _resync(self, crew: _WorkerCrew, summary: ProcessRunSummary) -> bool:
        """End-of-run barrier: collect every worker's report, reset the crew.

        Sets the stop event first so workers drop any stack a cancelled or
        abandoned run left behind, then drains the result queue (discarding
        the cancelled tail) until every worker has answered the ``sync``.
        Returns False — caller tears the crew down — on timeout, worker
        death, or a reported error.
        """
        crew.stop_event.set()
        try:
            for inbox in crew.inboxes:
                inbox.put(("sync",))
        except Exception:  # pragma: no cover - control queue torn down
            return False
        synced = [False] * crew.processors
        deadline = time.monotonic() + _env_float(SHUTDOWN_GRACE_ENV, SHUTDOWN_GRACE_SECONDS)
        while not all(synced):
            if time.monotonic() > deadline:
                return False
            try:
                message = crew.results.get(timeout=0.1)
            except queue_module.Empty:
                if not crew.alive():
                    return False
                continue
            except (EOFError, OSError, pickle.UnpicklingError):
                return False  # torn result pipe: the crew is not reusable
            if message[0] == "synced":
                _, worker_id, _, stats, cost, units_processed, obs_delta = message
                obs.absorb_shipped(obs_delta, {"worker": worker_id})
                synced[worker_id] = True
                summary.stats.merge(stats)
                summary.worker_traces.append(
                    WorkerTrace(
                        worker=worker_id,
                        busy_time=cost,
                        work_units_processed=units_processed,
                    )
                )
            elif message[0] == "error":
                return False
            # found/status/idle/shed_units from the cancelled tail: discard
        summary.worker_traces.sort(key=lambda trace: trace.worker)
        crew.stop_event.clear()
        return True

    def _invalidate_locked(self) -> None:
        self._runtime_key = None
        self._drop_spool()

    def _teardown_locked(self) -> None:
        crew = self._crew
        self._crew = None
        self._runtime_key = None
        self._drop_spool()
        if crew is not None:
            _shutdown_crew(crew, None)

    def _drop_spool(self) -> None:
        if self._spool_finalizer is not None:
            self._spool_finalizer()  # runs _remove_spool once; later GC no-ops
            self._spool_finalizer = None
        self._spool_dir = None


def _remove_spool(path: str) -> None:
    """Finalizer target: idempotent spool removal (module-level, picklable)."""
    shutil.rmtree(path, ignore_errors=True)


def _spool_directory() -> str:
    """Return a fresh spool directory for one run's ``spawn`` payload."""
    import tempfile

    return tempfile.mkdtemp(prefix="repro-exec-")
