"""Parallel detection: the simulated cluster and the real process backend."""

from repro.detect.parallel.balancing import (
    BalancingPolicy,
    plan_rebalancing,
    should_split,
    should_split_planned,
    skewness,
)
from repro.detect.parallel.cluster import ClusterSimulator
from repro.detect.parallel.executor import (
    EXECUTION_MODES,
    ExecutionRuntime,
    WarmExecutorPool,
    iter_process_execution,
    resolve_start_method,
)
from repro.detect.parallel.pdect import iter_p_dect, p_dect
from repro.detect.parallel.pincdect import iter_pinc_dect, pinc_dect
from repro.detect.parallel.threaded import threaded_dect, threaded_inc_dect
from repro.detect.parallel.workunits import ExpansionOutcome, WorkUnit, expand_work_unit

__all__ = [
    "BalancingPolicy",
    "ClusterSimulator",
    "EXECUTION_MODES",
    "ExecutionRuntime",
    "ExpansionOutcome",
    "WarmExecutorPool",
    "WorkUnit",
    "expand_work_unit",
    "iter_p_dect",
    "iter_pinc_dect",
    "iter_process_execution",
    "p_dect",
    "pinc_dect",
    "plan_rebalancing",
    "resolve_start_method",
    "should_split",
    "should_split_planned",
    "skewness",
    "threaded_dect",
    "threaded_inc_dect",
]
