"""Parallel detection on a simulated shared-nothing cluster."""

from repro.detect.parallel.balancing import BalancingPolicy, plan_rebalancing, should_split, skewness
from repro.detect.parallel.cluster import ClusterSimulator
from repro.detect.parallel.pdect import iter_p_dect, p_dect
from repro.detect.parallel.pincdect import iter_pinc_dect, pinc_dect
from repro.detect.parallel.threaded import threaded_dect, threaded_inc_dect
from repro.detect.parallel.workunits import ExpansionOutcome, WorkUnit, expand_work_unit

__all__ = [
    "BalancingPolicy",
    "ClusterSimulator",
    "ExpansionOutcome",
    "WorkUnit",
    "expand_work_unit",
    "iter_p_dect",
    "iter_pinc_dect",
    "p_dect",
    "pinc_dect",
    "plan_rebalancing",
    "should_split",
    "skewness",
    "threaded_dect",
    "threaded_inc_dect",
]
