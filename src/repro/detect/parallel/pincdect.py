"""``PIncDect``: parallel incremental error detection.

The algorithm of Figure 3 in the paper:

1. For every unit update and every matching pattern edge, build an update
   pivot and identify its candidate neighbourhood; the union ``N_C(ΔG, Σ)``
   is replicated at every processor (charged to the simulated clocks).
2. Evenly distribute the update pivots across the ``p`` processors as the
   initial work units (the queues ``BVio_i``).
3. Every processor expands its partial solutions — candidate filtering, then
   verification — splitting a step across all processors when the estimated
   parallel cost beats the sequential one (work-unit splitting).
4. At interval ``intvl`` the driver measures queue skewness and moves work
   units from processors above η to processors below η′ (workload
   redistribution).
5. When every queue drains, the union of the local violation sets is
   ΔVio(Σ, G, ΔG).

The cluster is simulated (see ``cluster.py``): the work is executed once, the
cost of each step is charged to the worker that would have performed it, and
the reported ``cost`` of the run is the makespan.  Theorem 6's claim — cost
``O(|Σ|·|G_dΣ(ΔG)|^|Σ| / p)`` relative to IncDect — shows up as the makespan
shrinking roughly linearly in ``p`` (Figures 4(i)–(l)).

:func:`iter_pinc_dect` is the kernel: a generator yielding a
:class:`~repro.detect.observers.ViolationEvent` per ΔVio finding as its work
unit completes, with optional sink notification and budget-capped early
termination (``max_cost`` caps the simulated makespan).  :func:`pinc_dect`
keeps the original signature as a compatibility shim over the
:class:`~repro.detect.session.Detector` session.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Iterator, Sequence
from typing import Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.base import IncrementalDetectionResult
from repro.detect.instrument import RuleAttribution
from repro.detect.observers import (
    DetectionBudget,
    ViolationEvent,
    ViolationSink,
    notify_violation,
)
from repro.detect.parallel.balancing import (
    BalancingPolicy,
    plan_rebalancing,
    rebalancing_pays,
    should_split_step,
    skewness,
)
from repro.detect.parallel.cluster import ClusterSimulator
from repro.errors import ExecutionError
from repro.detect.parallel.workunits import (
    WorkUnit,
    expand_work_unit,
    initial_units_for_pivot,
    seed_consistent,
)
from repro.graph.graph import Graph
from repro.graph.neighborhood import multi_source_nodes_within_hops
from repro.graph.updates import BatchUpdate, apply_update
from repro.matching.candidates import MatchStatistics
from repro.matching.compiled import resolve_compiled
from repro.matching.incmatch import find_update_pivots
from repro.matching.plan import MatchPlan, resolve_plans

__all__ = ["pinc_dect", "iter_pinc_dect"]


def iter_pinc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    processors: int = 8,
    policy: Optional[BalancingPolicy] = None,
    use_literal_pruning: bool = True,
    graph_after: Optional[Graph] = None,
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    plans: Optional[Sequence[MatchPlan]] = None,
    execution: str = "simulated",
    start_method: Optional[str] = None,
    adaptive=None,
    warm_pool=None,
    compiled: Optional[bool] = None,
) -> Iterator[ViolationEvent]:
    """Run parallel incremental detection, yielding ΔVio events as they complete.

    Yields :class:`ViolationEvent` objects; the generator's return value is
    the :class:`IncrementalDetectionResult` whose ``cost`` is the simulated
    makespan (capped by ``budget.max_cost``).  ``execution="processes"``
    replicates the candidate neighbourhood ``N_C(ΔG, Σ)`` to ``processors``
    real worker processes and expands the pivot work units there (byte-
    identical ΔVio; ``cost`` becomes the aggregate work performed).
    ``warm_pool`` reuses live worker processes between runs; the
    neighbourhood images differ per delta, so every run reloads its runtime
    but skips process startup.
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    policy = policy if policy is not None else BalancingPolicy.hybrid()
    updated = graph_after if graph_after is not None else apply_update(graph, delta)
    plans = resolve_plans(updated, rule_list, plans)
    if execution == "processes":
        return _iter_pinc_dect_processes(
            graph, updated, rule_set, rule_list, plans, delta, processors, policy,
            use_literal_pruning, budget, sink, start_method, adaptive, warm_pool,
            compiled,
        )
    if execution != "simulated":
        raise ExecutionError(
            f"unknown execution mode {execution!r}; expected 'simulated' or 'processes'"
        )
    return _iter_pinc_dect_simulated(
        graph, updated, rule_set, rule_list, plans, delta, processors, policy,
        use_literal_pruning, budget, sink, adaptive, compiled,
    )


def _iter_pinc_dect_simulated(
    graph: Graph,
    updated: Graph,
    rule_set: RuleSet,
    rule_list: list[NGD],
    plans: Optional[tuple[MatchPlan, ...]],
    delta: BatchUpdate,
    processors: int,
    policy: BalancingPolicy,
    use_literal_pruning: bool,
    budget: Optional[DetectionBudget],
    sink: Optional[ViolationSink],
    adaptive=None,
    compiled: Optional[bool] = None,
) -> Iterator[ViolationEvent]:
    """The original deterministic kernel: one process, simulated clocks."""
    from repro.matching.adaptive import resolve_adaptive

    controllers = resolve_adaptive(plans, adaptive)
    compiled_flag = resolve_compiled(compiled)
    stats = MatchStatistics()
    started = time.perf_counter()
    cluster = ClusterSimulator(processors, policy.latency)

    # ---------------------------------------------------------- phase 1: pivots
    pivots: list[tuple[int, dict, bool]] = []
    for rule_index, rule in enumerate(rule_list):
        for pivot in find_update_pivots(rule, delta, graph, updated):
            pivots.append((rule_index, pivot.seed(), pivot.from_insertion))

    diameter = max(rule_set.diameter(), 1)
    neighborhood_size = len(
        multi_source_nodes_within_hops(updated, delta.touched_nodes(), diameter)
    )
    # extraction and replication of N_C(ΔG, Σ): O(|G_dΣ(ΔG)|) work shared by p workers,
    # plus one broadcast round.
    if neighborhood_size:
        cluster.charge_broadcast(0, neighborhood_size / processors, policy.latency)

    # ------------------------------------------------- phase 2: distribute pivots
    # A pivot is generated at the processor owning the updated edge (hash
    # partitioning of the source endpoint stands in for the fragment owner).
    # Ownership-based placement is what the real system does, and it is what
    # creates the workload skew the balancing machinery then has to fix.
    for rule_index, seed, from_insertion in pivots:
        rule = rule_list[rule_index]
        unit = initial_units_for_pivot(
            rule_index,
            rule,
            seed,
            from_insertion,
            plan=plans[rule_index] if plans is not None else None,
        )
        reference = updated if from_insertion else graph
        if not seed_consistent(reference, rule, unit):
            continue
        source_node = unit.assignment[0][1] if unit.assignment else 0
        owner = zlib.crc32(repr(source_node).encode()) % processors
        cluster.enqueue(owner, unit)

    introduced = ViolationSet()
    removed = ViolationSet()
    emitted = 0
    stop_reason: Optional[str] = None
    attribution = RuleAttribution(f"PIncDect{policy.variant_suffix()}")
    trace_parent = obs.current_span()

    # --------------------------------------------------- phase 3: parallel expansion
    last_balance = 0.0
    work_done = 0.0
    units_done = 0
    while stop_reason is None and cluster.has_pending_work():
        if budget is not None and budget.cost_exhausted(cluster.makespan()):
            stop_reason = "max_cost"
            break
        if policy.enable_rebalancing and cluster.global_time() - last_balance >= policy.interval:
            last_balance = cluster.global_time()
            lengths = cluster.queue_lengths()
            # redistributing a near-empty system only buys message latency; rebalance
            # only when some queue holds a meaningful batch of pending units
            # AND shipping it beats the per-participant message cost at the
            # observed average unit cost (benefit-aware gate)
            if max(lengths) >= 4 and any(value > policy.eta for value in skewness(lengths)):
                moves = plan_rebalancing(lengths, policy.eta, policy.eta_prime)
                average_unit_cost = work_done / units_done if units_done else 0.0
                if rebalancing_pays(moves, policy.latency, average_unit_cost):
                    participants: set[int] = set()
                    for origin, destination, count in moves:
                        if cluster.move_units(origin, destination, count, charge=False):
                            participants.add(origin)
                            participants.add(destination)
                            if attribution.enabled:
                                obs.counter_inc("repro_executor_steals_total", {"mode": "simulated"}, count)
                    for worker_index in participants:
                        cluster.charge(worker_index, policy.latency)

        worker = cluster.next_busy_worker()
        if worker is None:
            break
        unit: WorkUnit = cluster.pop_unit(worker)
        rule = rule_list[unit.rule_index]
        plan = plans[unit.rule_index] if plans is not None else None
        search_graph = updated if unit.from_insertion else graph

        unit_before = attribution.before(stats)
        outcome = expand_work_unit(
            search_graph,
            rule,
            unit,
            use_literal_pruning=use_literal_pruning,
            stats=stats,
            plan=plan,
            adaptive=controllers[unit.rule_index] if controllers is not None else None,
            compiled=compiled_flag,
        )
        attribution.after(rule.name, unit_before, stats)

        # candidate filtering cost (possibly split across processors); the
        # split decision uses the plan's remaining-subtree estimate when
        # compiled plans execute, the raw adjacency test on the planner-off
        # oracle path — the charges are actual sizes either way
        depth = unit.depth()
        filtering = max(outcome.filtering_adjacency, 1)
        if policy.enable_splitting and should_split_step(
            plan, unit.order, filtering, depth, processors, policy.latency
        ):
            cluster.charge_broadcast(worker, filtering / processors, policy.latency * (depth + 1))
        else:
            cluster.charge(worker, float(filtering))

        # verification cost (possibly split as well, with k+2 broadcast term)
        verification = outcome.verification_adjacency
        if verification:
            if policy.enable_splitting and should_split_step(
                plan, unit.order, verification, depth + 1, processors, policy.latency
            ):
                cluster.charge_broadcast(worker, verification / processors, policy.latency * (depth + 2))
            else:
                cluster.charge(worker, float(verification))
        work_done += filtering + verification
        units_done += 1

        for new_unit in outcome.new_units:
            cluster.enqueue(worker, new_unit)
        target = introduced if unit.from_insertion else removed
        for violation in outcome.violations:
            if violation in target:
                continue
            target.add(violation)
            emitted += 1
            attribution.violation(rule.name)
            notify_violation(sink, violation, introduced=unit.from_insertion)
            yield ViolationEvent(violation, introduced=unit.from_insertion)
            if budget is not None and budget.violations_exhausted(emitted):
                stop_reason = "max_violations"
                break

    attribution.emit(trace_parent)
    elapsed = time.perf_counter() - started
    return IncrementalDetectionResult(
        delta=ViolationDelta(introduced=introduced, removed=removed),
        stats=stats,
        wall_time=elapsed,
        cost=cluster.makespan(),
        processors=processors,
        worker_traces=cluster.traces(),
        algorithm=f"PIncDect{policy.variant_suffix()}",
        neighborhood_size=neighborhood_size,
        stopped_early=stop_reason is not None,
        stop_reason=stop_reason,
    )


def _iter_pinc_dect_processes(
    graph: Graph,
    updated: Graph,
    rule_set: RuleSet,
    rule_list: list[NGD],
    plans: Optional[tuple[MatchPlan, ...]],
    delta: BatchUpdate,
    processors: int,
    policy: BalancingPolicy,
    use_literal_pruning: bool,
    budget: Optional[DetectionBudget],
    sink: Optional[ViolationSink],
    start_method: Optional[str],
    adaptive=None,
    warm_pool=None,
    compiled: Optional[bool] = None,
) -> Iterator[ViolationEvent]:
    """Real multi-process incremental detection over the replicated N_C(ΔG, Σ).

    The parent finds the update pivots against the full graphs, extracts
    the dΣ-neighbourhood of the touched nodes in both ``G`` and
    ``G ⊕ ΔG`` (the paper's candidate neighbourhood, replicated to every
    worker), and ships pivot work units to the processor owning the
    updated edge — the same crc32 ownership hash the simulator uses, so
    the initial skew the balancer must fix is the same.  A rule set with
    a disconnected pattern falls back to replicating the full graphs
    (neighbourhood-local search would miss its detached component).
    """
    from repro.detect.parallel.executor import (
        ExecutionRuntime,
        ProcessRunSummary,
        drain_units_serially,
        iter_process_execution,
        note_degraded_run,
    )
    from repro.errors import WorkerPoolCollapse
    from repro.graph.sharded import ShardedStore, supports_localized_matching

    stats = MatchStatistics()
    started = time.perf_counter()

    pivots: list[tuple[int, dict, bool]] = []
    for rule_index, rule in enumerate(rule_list):
        for pivot in find_update_pivots(rule, delta, graph, updated):
            pivots.append((rule_index, pivot.seed(), pivot.from_insertion))

    diameter = max(rule_set.diameter(), 1)
    touched = delta.touched_nodes()
    localized = supports_localized_matching(rule_list)
    if localized:
        after_nodes = multi_source_nodes_within_hops(updated, touched, diameter)
        before_nodes = multi_source_nodes_within_hops(graph, touched, diameter)
        after_image = updated.induced_subgraph(after_nodes, name=f"{updated.name}[N_C]")
        before_image = graph.induced_subgraph(before_nodes, name=f"{graph.name}[N_C]")
    else:
        after_nodes = multi_source_nodes_within_hops(updated, touched, diameter)
        after_image, before_image = updated, graph
    neighborhood_size = len(after_nodes)
    base_cost = float(neighborhood_size)  # extraction + replication charge

    def runtime_factory() -> ExecutionRuntime:
        return ExecutionRuntime(
            rules=rule_list,
            plans=plans,
            use_literal_pruning=use_literal_pruning,
            shards=ShardedStore.single(after_image),
            before_shards=ShardedStore.single(before_image),
            # controllers cannot cross process boundaries: workers build their own
            adaptive=adaptive if isinstance(adaptive, (bool, type(None))) else True,
            compiled=compiled,
        )

    seeds: list[tuple[int, int, WorkUnit]] = []
    for rule_index, seed, from_insertion in pivots:
        rule = rule_list[rule_index]
        unit = initial_units_for_pivot(
            rule_index,
            rule,
            seed,
            from_insertion,
            plan=plans[rule_index] if plans is not None else None,
        )
        reference = updated if from_insertion else graph
        if not seed_consistent(reference, rule, unit):
            continue
        source_node = unit.assignment[0][1] if unit.assignment else 0
        owner = zlib.crc32(repr(source_node).encode()) % processors
        seeds.append((owner, 0, unit))

    introduced = ViolationSet()
    removed = ViolationSet()
    attribution = RuleAttribution(f"PIncDect{policy.variant_suffix()}")
    trace_parent = obs.current_span()
    summary = ProcessRunSummary()
    if seeds:
        if warm_pool is not None:
            # the neighbourhood images are delta-specific, so the runtime
            # key is None: every run reloads, but worker processes survive
            events = warm_pool.execute(
                None,
                runtime_factory,
                seeds,
                processors,
                policy,
                budget=budget,
                sink=sink,
                dedupe=(introduced, removed),
                base_cost=base_cost,
                summary=summary,
            )
        else:
            events = iter_process_execution(
                runtime_factory(),
                seeds,
                processors,
                policy,
                budget=budget,
                sink=sink,
                dedupe=(introduced, removed),
                base_cost=base_cost,
                start_method=start_method,
                summary=summary,
            )
        leftovers: list[tuple[int, WorkUnit]] = []
        try:
            for violation, from_insertion in events:
                attribution.violation(violation.rule)
                yield ViolationEvent(violation, introduced=from_insertion)
        except WorkerPoolCollapse as collapse:
            leftovers = list(collapse.outstanding)
        finally:
            events.close()
        leftovers.extend(summary.quarantined)
        if leftovers and summary.stop_reason is None:
            # graceful degradation: finish every unconfirmed unit serially
            # against the parent's full graphs.  The full graphs are
            # supersets of the shipped N_C images and matching is
            # neighbourhood-local, so expansion yields the same matches;
            # the shared dedupe sets keep ΔVio byte-identical.
            summary.degraded = True
            note_degraded_run()
            drained = drain_units_serially(
                leftovers,
                rules=rule_list,
                plans=plans,
                use_literal_pruning=use_literal_pruning,
                graph_for=lambda shard_id, from_insertion: (
                    updated if from_insertion else graph
                ),
                budget=budget,
                sink=sink,
                dedupe=(introduced, removed),
                summary=summary,
                compiled=compiled,
            )
            for violation, from_insertion in drained:
                attribution.violation(violation.rule)
                yield ViolationEvent(violation, introduced=from_insertion)
            if summary.stop_reason is None and summary.quarantined:
                summary.stop_reason = "units_quarantined"
    else:
        summary.cost = base_cost
    stats.merge(summary.stats)

    attribution.emit(trace_parent)
    elapsed = time.perf_counter() - started
    return IncrementalDetectionResult(
        delta=ViolationDelta(introduced=introduced, removed=removed),
        stats=stats,
        wall_time=elapsed,
        cost=summary.cost,
        processors=processors,
        worker_traces=summary.worker_traces,
        algorithm=f"PIncDect{policy.variant_suffix()}",
        neighborhood_size=neighborhood_size,
        stopped_early=summary.stop_reason in ("max_violations", "max_cost"),
        stop_reason=summary.stop_reason,
        degraded=summary.degraded,
    )


def pinc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    processors: int = 8,
    policy: Optional[BalancingPolicy] = None,
    use_literal_pruning: bool = True,
    graph_after: Optional[Graph] = None,
) -> IncrementalDetectionResult:
    """Run parallel incremental detection on a simulated ``processors``-worker cluster.

    Compatibility shim: equivalent to ``Detector(rules, engine="parallel",
    processors=processors).run_incremental(graph, delta, graph_after)``; new
    code should prefer the :class:`~repro.detect.session.Detector` session.
    """
    from repro.detect.session import DetectionOptions, Detector

    options = DetectionOptions(use_literal_pruning=use_literal_pruning, policy=policy)
    detector = Detector(rules, engine="parallel", processors=processors, options=options)
    return detector.run_incremental(graph, delta, graph_after=graph_after)
