"""``PDect``: parallel batch error detection.

The paper extends the parallel GFD-detection algorithm of [24] to NGDs and
uses it as the batch baseline of the parallel experiments.  Here PDect shares
the work-unit machinery of PIncDect, but its initial work units come from the
*whole graph* rather than from update pivots: for every rule, every candidate
of the first pattern variable in the matching order seeds one work unit.
Work-unit splitting is applied with the same cost model; dynamic
redistribution is also available (the paper's batch algorithm balances
workload through its own estimation scheme, which this reproduces with the
same mechanism as PIncDect).

Because batch detection visits every candidate in ``G`` regardless of ΔG, its
makespan is essentially flat across update sizes — which is exactly the
behaviour Figures 4(a)–(d) show for PDect.

:func:`iter_p_dect` is the kernel: a generator yielding each violation as
its work unit completes on the simulated cluster, with optional sink
notification and budget-capped early termination (``max_cost`` caps the
simulated makespan).  :func:`p_dect` keeps the original signature as a
compatibility shim over the :class:`~repro.detect.session.Detector` session.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from typing import Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.detect.base import DetectionResult
from repro.detect.instrument import RuleAttribution
from repro.detect.observers import DetectionBudget, ViolationSink, notify_violation
from repro.detect.parallel.balancing import (
    BalancingPolicy,
    plan_rebalancing,
    rebalancing_pays,
    should_split_step,
    skewness,
)
from repro.detect.parallel.cluster import ClusterSimulator
from repro.detect.parallel.workunits import WorkUnit, expand_work_unit
from repro.errors import ExecutionError
from repro.graph.graph import Graph
from repro.matching.candidates import MatchStatistics
from repro.matching.compiled import resolve_compiled
from repro.matching.matchn import match_violates_dependency
from repro.matching.plan import MatchPlan, first_step_candidates, resolve_plans

__all__ = ["p_dect", "iter_p_dect"]


def iter_p_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    processors: int = 8,
    policy: Optional[BalancingPolicy] = None,
    use_literal_pruning: bool = True,
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    plans: Optional[Sequence[MatchPlan]] = None,
    execution: str = "simulated",
    start_method: Optional[str] = None,
    adaptive=None,
    warm_pool=None,
    runtime_key=None,
    compiled: Optional[bool] = None,
) -> Iterator[Violation]:
    """Run parallel batch detection, yielding violations as units complete.

    The generator's return value is the :class:`DetectionResult` whose
    ``cost`` is the simulated makespan; ``budget.max_cost`` therefore caps
    the makespan, and ``budget.max_violations`` caps the number of emitted
    violations.  With compiled plans, seed work units are placed on the
    least-loaded processor by the plan's candidate estimates (instead of
    blind round-robin), so the initial distribution already reflects the
    expected subtree sizes.

    ``execution="processes"`` runs the same work units on ``processors``
    real OS processes over a sharded store
    (:mod:`repro.detect.parallel.executor`): violations are byte-identical,
    ``cost`` becomes the aggregate work performed (wall-clock lives in
    ``wall_time``), and ``start_method`` picks the multiprocessing start
    method (default: fork where available).  ``warm_pool`` (a
    :class:`~repro.detect.parallel.executor.WarmExecutorPool`) reuses live
    workers across runs: ``runtime_key`` identifies the graph/rules
    snapshot the workers may already have loaded.
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    plans = resolve_plans(graph, rule_list, plans)
    policy = policy if policy is not None else BalancingPolicy.hybrid()
    if execution == "processes":
        return _iter_p_dect_processes(
            graph, rule_set, rule_list, plans, processors, policy,
            use_literal_pruning, budget, sink, start_method, adaptive,
            warm_pool, runtime_key, compiled,
        )
    if execution != "simulated":
        raise ExecutionError(
            f"unknown execution mode {execution!r}; expected 'simulated' or 'processes'"
        )
    return _iter_p_dect_simulated(
        graph, rule_list, plans, processors, policy, use_literal_pruning, budget, sink, adaptive,
        compiled,
    )


def _iter_p_dect_simulated(
    graph: Graph,
    rule_list: list[NGD],
    plans: Optional[tuple[MatchPlan, ...]],
    processors: int,
    policy: BalancingPolicy,
    use_literal_pruning: bool,
    budget: Optional[DetectionBudget],
    sink: Optional[ViolationSink],
    adaptive=None,
    compiled: Optional[bool] = None,
) -> Iterator[Violation]:
    """The original deterministic kernel: one process, simulated clocks."""
    from repro.matching.adaptive import resolve_adaptive

    controllers = resolve_adaptive(plans, adaptive)
    compiled_flag = resolve_compiled(compiled)
    stats = MatchStatistics()
    started = time.perf_counter()

    cluster = ClusterSimulator(processors, policy.latency)
    violations = ViolationSet()
    emitted = 0
    stop_reason: Optional[str] = None
    attribution = RuleAttribution("PDect")
    trace_parent = obs.current_span()

    # seed work units: one per candidate of the first variable of every rule
    position = 0
    estimated_loads = [0.0] * processors
    for rule_index, rule in enumerate(rule_list):
        plan = plans[rule_index] if plans is not None else None
        order = plan.order if plan is not None else tuple(rule.pattern.matching_order())
        if not order:
            continue
        first = order[0]
        rule_before = attribution.before(stats)
        candidates, _ = first_step_candidates(
            graph, rule, plan, order, use_literal_pruning, stats, compiled=compiled_flag
        )
        # the scan of the label index is shared evenly by the processors
        cluster.charge_broadcast(0, len(candidates) / processors, policy.latency)
        unit_estimate = plan.estimated_unit_cost(1) if plan is not None else 1.0
        for candidate in candidates:
            unit = WorkUnit(
                rule_index=rule_index,
                order=order,
                assignment=((first, candidate),),
                from_insertion=True,
            )
            if unit.is_complete():
                # single-node pattern: decide the violation immediately
                if match_violates_dependency(graph, unit.mapping(), rule.premise, rule.conclusion, stats):
                    violation = Violation.from_mapping(rule.name, unit.mapping(), rule.pattern.variables)
                    if violation not in violations:
                        violations.add(violation)
                        emitted += 1
                        attribution.violation(rule.name)
                        notify_violation(sink, violation)
                        yield violation
                cluster.charge(position % processors, 1.0)
                if budget is not None and budget.violations_exhausted(emitted):
                    stop_reason = "max_violations"
                    break
            elif plan is not None:
                # plan-estimated placement: each seed unit lands on the
                # processor with the least estimated pending work (first
                # index wins ties, so placement is deterministic)
                owner = min(range(processors), key=lambda i: (estimated_loads[i], i))
                estimated_loads[owner] += unit_estimate
                cluster.enqueue(owner, unit)
            else:
                cluster.enqueue(position % processors, unit)
            position += 1
        attribution.after(rule.name, rule_before, stats)
        if stop_reason is not None:
            break

    last_balance = 0.0
    work_done = 0.0
    units_done = 0
    while stop_reason is None and cluster.has_pending_work():
        if budget is not None and budget.cost_exhausted(cluster.makespan()):
            stop_reason = "max_cost"
            break
        if policy.enable_rebalancing and cluster.global_time() - last_balance >= policy.interval:
            last_balance = cluster.global_time()
            lengths = cluster.queue_lengths()
            # redistributing a near-empty system only buys message latency; rebalance
            # only when some queue holds a meaningful batch of pending units
            # AND shipping it beats the per-participant message cost at the
            # observed average unit cost (benefit-aware gate)
            if max(lengths) >= 4 and any(value > policy.eta for value in skewness(lengths)):
                moves = plan_rebalancing(lengths, policy.eta, policy.eta_prime)
                average_unit_cost = work_done / units_done if units_done else 0.0
                if rebalancing_pays(moves, policy.latency, average_unit_cost):
                    participants: set[int] = set()
                    for origin, destination, count in moves:
                        if cluster.move_units(origin, destination, count, charge=False):
                            participants.add(origin)
                            participants.add(destination)
                            if attribution.enabled:
                                obs.counter_inc("repro_executor_steals_total", {"mode": "simulated"}, count)
                    for worker_index in participants:
                        cluster.charge(worker_index, policy.latency)

        worker = cluster.next_busy_worker()
        if worker is None:
            break
        unit: WorkUnit = cluster.pop_unit(worker)
        rule = rule_list[unit.rule_index]
        plan = plans[unit.rule_index] if plans is not None else None
        unit_before = attribution.before(stats)
        outcome = expand_work_unit(
            graph,
            rule,
            unit,
            use_literal_pruning=use_literal_pruning,
            stats=stats,
            plan=plan,
            adaptive=controllers[unit.rule_index] if controllers is not None else None,
            compiled=compiled_flag,
        )
        attribution.after(rule.name, unit_before, stats)

        depth = unit.depth()
        filtering = max(outcome.filtering_adjacency, 1)
        # split decision: the plan's remaining-subtree estimate when compiled
        # plans are executing, the raw adjacency test on the planner-off
        # oracle path; the charges are actual sizes either way
        if policy.enable_splitting and should_split_step(
            plan, unit.order, filtering, depth, processors, policy.latency
        ):
            cluster.charge_broadcast(worker, filtering / processors, policy.latency * (depth + 1))
        else:
            cluster.charge(worker, float(filtering))
        verification = outcome.verification_adjacency
        if verification:
            if policy.enable_splitting and should_split_step(
                plan, unit.order, verification, depth + 1, processors, policy.latency
            ):
                cluster.charge_broadcast(worker, verification / processors, policy.latency * (depth + 2))
            else:
                cluster.charge(worker, float(verification))
        work_done += filtering + verification
        units_done += 1

        for new_unit in outcome.new_units:
            cluster.enqueue(worker, new_unit)
        for violation in outcome.violations:
            if violation in violations:
                continue
            violations.add(violation)
            emitted += 1
            attribution.violation(rule.name)
            notify_violation(sink, violation)
            yield violation
            if budget is not None and budget.violations_exhausted(emitted):
                stop_reason = "max_violations"
                break

    attribution.emit(trace_parent)
    elapsed = time.perf_counter() - started
    return DetectionResult(
        violations=violations,
        stats=stats,
        wall_time=elapsed,
        cost=cluster.makespan(),
        processors=processors,
        worker_traces=cluster.traces(),
        algorithm="PDect",
        stopped_early=stop_reason is not None,
        stop_reason=stop_reason,
    )


def _iter_p_dect_processes(
    graph: Graph,
    rule_set: RuleSet,
    rule_list: list[NGD],
    plans: Optional[tuple[MatchPlan, ...]],
    processors: int,
    policy: BalancingPolicy,
    use_literal_pruning: bool,
    budget: Optional[DetectionBudget],
    sink: Optional[ViolationSink],
    start_method: Optional[str],
    adaptive=None,
    warm_pool=None,
    runtime_key=None,
    compiled: Optional[bool] = None,
) -> Iterator[Violation]:
    """Real multi-process batch detection over a sharded store.

    The parent seeds exactly the work units of the simulated kernel; when
    every rule pattern is connected, the graph is partitioned into
    per-fragment halo images (:class:`~repro.graph.sharded.ShardedStore`)
    and each seed is routed to the worker owning its shard, otherwise all
    workers share one full image.  Violations are byte-identical to the
    simulated and serial paths; ``cost`` is the aggregate work performed.

    With a ``warm_pool`` the run always uses the shared-full-image layout
    (one runtime serves every request, so per-run fragment shards would
    defeat reuse) and the runtime is built lazily — a pool hit on
    ``runtime_key`` never touches the store at all.
    """
    from repro.detect.parallel.executor import (
        ExecutionRuntime,
        ProcessRunSummary,
        drain_units_serially,
        iter_process_execution,
        note_degraded_run,
        resolve_start_method,
    )
    from repro.errors import WorkerPoolCollapse
    from repro.graph.sharded import ShardedStore, supports_localized_matching

    stats = MatchStatistics()
    started = time.perf_counter()
    violations = ViolationSet()
    emitted = 0
    base_cost = 0.0
    stop_reason: Optional[str] = None
    attribution = RuleAttribution("PDect")
    trace_parent = obs.current_span()

    # data layout by start method: fork children share the parent's one
    # frozen image copy-on-write (building per-fragment copies would only
    # add parent-side work), while spawn workers are shared-nothing — they
    # deserialize their images, so per-fragment halo shards cut each
    # worker's load to its own fragment
    if warm_pool is not None:
        sharded = False
    else:
        start_method = resolve_start_method(start_method)
        sharded = (
            start_method != "fork"
            and processors > 1
            and graph.node_count() > 0
            and supports_localized_matching(rule_list)
        )
    shards: Optional[ShardedStore] = None
    if sharded:
        shards = ShardedStore.build(
            graph, num_shards=processors, halo_hops=max(rule_set.diameter(), 1)
        )

    def runtime_factory() -> ExecutionRuntime:
        return ExecutionRuntime(
            rules=rule_list,
            plans=plans,
            use_literal_pruning=use_literal_pruning,
            shards=shards if shards is not None else ShardedStore.single(graph),
            # controllers cannot cross process boundaries: workers build their own
            adaptive=adaptive if isinstance(adaptive, (bool, type(None))) else True,
            compiled=compiled,
        )

    seeds: list[tuple[int, int, WorkUnit]] = []
    estimated_loads = [0.0] * processors
    if not sharded:
        # shared full image: ship one depth-0 unit per rule — the worker
        # performs the first-step scan itself (seeding parallelises across
        # rules and only |Σ| units cross the queue, not one per candidate);
        # skew between rule subtrees is the rebalancer's job
        for rule_index, rule in enumerate(rule_list):
            plan = plans[rule_index] if plans is not None else None
            order = plan.order if plan is not None else tuple(rule.pattern.matching_order())
            if not order:
                continue
            unit = WorkUnit(rule_index=rule_index, order=order, assignment=(), from_insertion=True)
            rule_estimate = plan.estimated_unit_cost(0) if plan is not None else 1.0
            owner = min(range(processors), key=lambda i: (estimated_loads[i], i))
            estimated_loads[owner] += rule_estimate
            seeds.append((owner, 0, unit))
    else:
        for rule_index, rule in enumerate(rule_list):
            plan = plans[rule_index] if plans is not None else None
            order = plan.order if plan is not None else tuple(rule.pattern.matching_order())
            if not order:
                continue
            first = order[0]
            rule_before = attribution.before(stats)
            candidates, scan_cost = first_step_candidates(
                graph, rule, plan, order, use_literal_pruning, stats, compiled=resolve_compiled(compiled)
            )
            base_cost += scan_cost
            for candidate in candidates:
                unit = WorkUnit(
                    rule_index=rule_index,
                    order=order,
                    assignment=((first, candidate),),
                    from_insertion=True,
                )
                if unit.is_complete():
                    # single-node pattern: decided in the parent, like the simulator
                    base_cost += 1.0
                    if match_violates_dependency(graph, unit.mapping(), rule.premise, rule.conclusion, stats):
                        violation = Violation.from_mapping(rule.name, unit.mapping(), rule.pattern.variables)
                        if violation not in violations:
                            violations.add(violation)
                            emitted += 1
                            attribution.violation(rule.name)
                            notify_violation(sink, violation)
                            yield violation
                    if budget is not None and budget.violations_exhausted(emitted):
                        stop_reason = "max_violations"
                        break
                else:
                    # shard affinity: the unit expands against the image owning
                    # its seed node; stealing re-routes the unit, not the data
                    shard_id = shards.owner(candidate)
                    seeds.append((shard_id % processors, shard_id, unit))
            attribution.after(rule.name, rule_before, stats)
            if stop_reason is not None:
                break

    summary = ProcessRunSummary()
    leftovers: list[tuple[int, WorkUnit]] = []
    if stop_reason is None and seeds:
        if warm_pool is not None:
            events = warm_pool.execute(
                runtime_key,
                runtime_factory,
                seeds,
                processors,
                policy,
                budget=budget,
                sink=sink,
                dedupe=(violations, ViolationSet()),
                base_cost=base_cost,
                summary=summary,
            )
        else:
            events = iter_process_execution(
                runtime_factory(),
                seeds,
                processors,
                policy,
                budget=budget,
                sink=sink,
                dedupe=(violations, ViolationSet()),
                base_cost=base_cost,
                start_method=start_method,
                summary=summary,
            )
        try:
            for violation, _ in events:
                attribution.violation(violation.rule)
                yield violation
        except WorkerPoolCollapse as collapse:
            leftovers = list(collapse.outstanding)
        finally:
            events.close()
        stop_reason = summary.stop_reason
    else:
        summary.cost = base_cost
    leftovers.extend(summary.quarantined)
    if leftovers and stop_reason is None:
        # graceful degradation: the pool is gone (or quarantined poison
        # units remain) — finish every unconfirmed unit serially against
        # the parent's full image.  The shared dedupe set absorbs
        # whatever the workers already reported, so the violations stay
        # byte-identical to an undisturbed run.
        summary.degraded = True
        note_degraded_run()
        drained = drain_units_serially(
            leftovers,
            rules=rule_list,
            plans=plans,
            use_literal_pruning=use_literal_pruning,
            graph_for=lambda shard_id, from_insertion: graph,
            budget=budget,
            sink=sink,
            dedupe=(violations, ViolationSet()),
            summary=summary,
            compiled=compiled,
        )
        for violation, _ in drained:
            attribution.violation(violation.rule)
            yield violation
        stop_reason = summary.stop_reason
        if stop_reason is None and summary.quarantined:
            stop_reason = "units_quarantined"
    stats.merge(summary.stats)

    attribution.emit(trace_parent)
    elapsed = time.perf_counter() - started
    return DetectionResult(
        violations=violations,
        stats=stats,
        wall_time=elapsed,
        cost=summary.cost,
        processors=processors,
        worker_traces=summary.worker_traces,
        algorithm="PDect",
        stopped_early=stop_reason in ("max_violations", "max_cost"),
        stop_reason=stop_reason,
        degraded=summary.degraded,
    )


def p_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    processors: int = 8,
    policy: Optional[BalancingPolicy] = None,
    use_literal_pruning: bool = True,
) -> DetectionResult:
    """Run parallel batch detection of ``Vio(Σ, G)`` on a simulated cluster.

    Compatibility shim: equivalent to ``Detector(rules, engine="parallel",
    processors=processors).run(graph)``; new code should prefer the
    :class:`~repro.detect.session.Detector` session.
    """
    from repro.detect.session import DetectionOptions, Detector

    options = DetectionOptions(use_literal_pruning=use_literal_pruning, policy=policy)
    detector = Detector(rules, engine="parallel", processors=processors, options=options)
    return detector.run(graph)
