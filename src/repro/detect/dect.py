"""``Dect``: the batch error-detection algorithm.

The paper uses (an NGD extension of) the batch GFD detection algorithm of
[24] as the yardstick the incremental algorithms are compared against
(Section 7, algorithm "Dect").  For every rule it enumerates every match of
the rule's pattern in the whole graph and keeps those that violate the
attribute dependency.

The implementation processes the same *work units* as the parallel
algorithms (a partial solution expanded one pattern node at a time), executed
on a single processor with a LIFO stack — so the reported ``cost`` is in the
same units as the simulated parallel makespans and the speedups of Figures
4(a)–(l) are measured against a consistent yardstick.  The independent
recursive matcher in :mod:`repro.core.validation` serves as ground truth in
the tests.
"""

from __future__ import annotations

import time

from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.detect.base import DetectionResult
from repro.detect.parallel.workunits import WorkUnit, expand_work_unit
from repro.graph.graph import Graph
from repro.matching.candidates import MatchStatistics, candidate_nodes
from repro.matching.matchn import match_violates_dependency

__all__ = ["dect"]


def dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    use_literal_pruning: bool = True,
) -> DetectionResult:
    """Run batch detection of ``Vio(Σ, G)`` over the whole graph."""
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    stats = MatchStatistics()
    started = time.perf_counter()
    violations = ViolationSet()
    cost = 0.0

    for rule_index, rule in enumerate(rule_list):
        order = tuple(rule.pattern.matching_order())
        if not order:
            continue
        first = order[0]
        candidates = candidate_nodes(
            graph,
            rule.pattern,
            first,
            premise=rule.premise if use_literal_pruning else None,
            use_literal_pruning=use_literal_pruning,
            stats=stats,
        )
        cost += graph.nodes_with_label(rule.pattern.node(first).label).__len__()
        stack: list[WorkUnit] = []
        for candidate in candidates:
            unit = WorkUnit(rule_index=rule_index, order=order, assignment=((first, candidate),))
            if unit.is_complete():
                cost += 1.0
                if match_violates_dependency(graph, unit.mapping(), rule.premise, rule.conclusion, stats):
                    violations.add(Violation.from_mapping(rule.name, unit.mapping(), rule.pattern.variables))
            else:
                stack.append(unit)
        while stack:
            unit = stack.pop()
            outcome = expand_work_unit(graph, rule, unit, use_literal_pruning=use_literal_pruning, stats=stats)
            cost += max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency
            stack.extend(outcome.new_units)
            for violation in outcome.violations:
                violations.add(violation)

    elapsed = time.perf_counter() - started
    return DetectionResult(
        violations=violations,
        stats=stats,
        wall_time=elapsed,
        cost=cost,
        processors=1,
        algorithm="Dect",
    )
