"""``Dect``: the batch error-detection algorithm.

The paper uses (an NGD extension of) the batch GFD detection algorithm of
[24] as the yardstick the incremental algorithms are compared against
(Section 7, algorithm "Dect").  For every rule it enumerates every match of
the rule's pattern in the whole graph and keeps those that violate the
attribute dependency.

The implementation processes the same *work units* as the parallel
algorithms (a partial solution expanded one pattern node at a time), executed
on a single processor with a LIFO stack — so the reported ``cost`` is in the
same units as the simulated parallel makespans and the speedups of Figures
4(a)–(l) are measured against a consistent yardstick.  The independent
recursive matcher in :mod:`repro.core.validation` serves as ground truth in
the tests.

:func:`iter_dect` is the kernel itself: a generator that yields each
violation the moment its work unit completes and honours an optional
:class:`~repro.detect.observers.DetectionBudget`.  :func:`dect` is the
original batch entry point, kept as a thin compatibility shim over the
:class:`~repro.detect.session.Detector` session.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from typing import Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationSet
from repro.detect.base import DetectionResult
from repro.detect.instrument import begin_rule_span, finish_rule, stats_snapshot
from repro.detect.observers import DetectionBudget, ViolationSink, notify_violation
from repro.detect.parallel.workunits import WorkUnit, expand_work_unit
from repro.graph.graph import Graph
from repro.matching.adaptive import resolve_adaptive
from repro.matching.candidates import MatchStatistics
from repro.matching.compiled import resolve_compiled
from repro.matching.matchn import match_violates_dependency
from repro.matching.plan import MatchPlan, first_step_candidates, resolve_plans

__all__ = ["dect", "iter_dect"]


def iter_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    use_literal_pruning: bool = True,
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    plans: Optional[Sequence[MatchPlan]] = None,
    adaptive=None,
    compiled: Optional[bool] = None,
) -> Iterator[Violation]:
    """Run batch detection, yielding each violation as it is confirmed.

    The generator's return value (``StopIteration.value``, or via
    :func:`repro.detect.observers.drain`) is the :class:`DetectionResult`.
    ``budget`` limits are enforced between work units, so a capped run
    performs strictly less work than a full one; ``sink`` (if given) is
    notified of every violation right before it is yielded.  ``plans``
    carries pre-compiled :class:`~repro.matching.plan.MatchPlan`\\ s (one per
    rule, the session's cache); when omitted they are compiled here unless
    the planner is disabled.  ``adaptive`` follows
    :func:`~repro.matching.adaptive.resolve_adaptive` conventions (None =
    environment default, bool = force, sequence = the caller's controllers).
    ``compiled`` selects closure-compiled literal schedules on plan-driven
    steps (None = ``REPRO_COMPILED_EVAL`` default).
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    plans = resolve_plans(graph, rule_list, plans)
    controllers = resolve_adaptive(plans, adaptive)
    compiled_flag = resolve_compiled(compiled)
    stats = MatchStatistics()
    started = time.perf_counter()
    violations = ViolationSet()
    cost = 0.0
    emitted = 0
    stop_reason: Optional[str] = None
    # Parent for per-rule spans, captured once at generator start (the
    # contextvar is only reliable in the consuming thread's context).
    trace_parent = obs.current_span()

    for rule_index, rule in enumerate(rule_list):
        plan = plans[rule_index] if plans is not None else None
        controller = controllers[rule_index] if controllers is not None else None
        order = plan.order if plan is not None else tuple(rule.pattern.matching_order())
        if not order:
            continue
        rule_before = stats_snapshot(stats)
        rule_cost_before = cost
        rule_emitted_before = emitted
        rule_span = begin_rule_span(trace_parent, rule.name, "Dect")
        try:
            first = order[0]
            candidates, scan_cost = first_step_candidates(
                graph, rule, plan, order, use_literal_pruning, stats, compiled=compiled_flag
            )
            cost += scan_cost
            if budget is not None and budget.cost_exhausted(cost):
                stop_reason = "max_cost"
                break
            stack: list[WorkUnit] = []
            for candidate in candidates:
                unit = WorkUnit(rule_index=rule_index, order=order, assignment=((first, candidate),))
                if unit.is_complete():
                    cost += 1.0
                    if match_violates_dependency(graph, unit.mapping(), rule.premise, rule.conclusion, stats):
                        violation = Violation.from_mapping(rule.name, unit.mapping(), rule.pattern.variables)
                        if violation not in violations:
                            violations.add(violation)
                            emitted += 1
                            notify_violation(sink, violation)
                            yield violation
                            if budget is not None and budget.violations_exhausted(emitted):
                                stop_reason = "max_violations"
                                break
                else:
                    stack.append(unit)
            while stop_reason is None and stack:
                unit = stack.pop()
                outcome = expand_work_unit(
                    graph,
                    rule,
                    unit,
                    use_literal_pruning=use_literal_pruning,
                    stats=stats,
                    plan=plan,
                    adaptive=controller,
                    compiled=compiled_flag,
                )
                cost += max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency
                stack.extend(outcome.new_units)
                for violation in outcome.violations:
                    if violation in violations:
                        continue
                    violations.add(violation)
                    emitted += 1
                    notify_violation(sink, violation)
                    yield violation
                    if budget is not None and budget.violations_exhausted(emitted):
                        stop_reason = "max_violations"
                        break
                if stop_reason is None and budget is not None and budget.cost_exhausted(cost):
                    stop_reason = "max_cost"
        finally:
            finish_rule(
                rule.name, rule_span, rule_before, stats, cost - rule_cost_before, emitted - rule_emitted_before
            )
        if stop_reason is not None:
            break

    elapsed = time.perf_counter() - started
    return DetectionResult(
        violations=violations,
        stats=stats,
        wall_time=elapsed,
        cost=cost,
        processors=1,
        algorithm="Dect",
        stopped_early=stop_reason is not None,
        stop_reason=stop_reason,
    )


def dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    use_literal_pruning: bool = True,
) -> DetectionResult:
    """Run batch detection of ``Vio(Σ, G)`` over the whole graph.

    Compatibility shim: equivalent to
    ``Detector(rules, engine="batch").run(graph)``; new code should prefer
    the :class:`~repro.detect.session.Detector` session, which adds
    streaming, sinks, and budgets on the same kernel.
    """
    from repro.detect.session import DetectionOptions, Detector

    options = DetectionOptions(use_literal_pruning=use_literal_pruning)
    return Detector(rules, engine="batch", options=options).run(graph)
