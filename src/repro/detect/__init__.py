"""Error-detection algorithms: batch (Dect, PDect) and incremental (IncDect, PIncDect)."""

from repro.detect.base import DetectionResult, IncrementalDetectionResult, WorkerTrace
from repro.detect.dect import dect
from repro.detect.incdect import inc_dect
from repro.detect.parallel import BalancingPolicy, p_dect, pinc_dect

__all__ = [
    "BalancingPolicy",
    "DetectionResult",
    "IncrementalDetectionResult",
    "WorkerTrace",
    "dect",
    "inc_dect",
    "p_dect",
    "pinc_dect",
]
