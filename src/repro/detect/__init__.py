"""Error-detection algorithms: batch (Dect, PDect) and incremental (IncDect, PIncDect).

The public entry point is the :class:`Detector` session
(:mod:`repro.detect.session`), which unifies the four kernels behind one
configuration surface and adds streaming sinks and termination budgets; the
module-level functions ``dect`` / ``inc_dect`` / ``p_dect`` / ``pinc_dect``
are kept as the compatibility layer with their original signatures.
"""

from repro.detect.base import DetectionResult, IncrementalDetectionResult, WorkerTrace
from repro.detect.dect import dect, iter_dect
from repro.detect.incdect import inc_dect, iter_inc_dect
from repro.detect.observers import (
    CallbackSink,
    CollectingSink,
    DetectionBudget,
    FanOutSink,
    ViolationEvent,
    ViolationSink,
    drain,
)
from repro.detect.parallel import (
    BalancingPolicy,
    WarmExecutorPool,
    iter_p_dect,
    iter_pinc_dect,
    p_dect,
    pinc_dect,
)
from repro.detect.session import ENGINES, EXECUTION_MODES, DetectionOptions, Detector

__all__ = [
    "BalancingPolicy",
    "CallbackSink",
    "CollectingSink",
    "DetectionBudget",
    "DetectionOptions",
    "DetectionResult",
    "Detector",
    "ENGINES",
    "EXECUTION_MODES",
    "FanOutSink",
    "IncrementalDetectionResult",
    "ViolationEvent",
    "ViolationSink",
    "WarmExecutorPool",
    "WorkerTrace",
    "dect",
    "drain",
    "inc_dect",
    "iter_dect",
    "iter_inc_dect",
    "iter_p_dect",
    "iter_pinc_dect",
    "p_dect",
    "pinc_dect",
]
