"""``IncDect``: the sequential, localizable incremental detection algorithm.

Section 6.2.  Given a graph ``G``, a rule set Σ and a batch update ΔG,
IncDect computes ΔVio(Σ, G, ΔG) by update-driven evaluation:

1. For every rule and every unit update, build the *update pivots*: partial
   solutions mapping a pattern edge onto the updated data edge.
2. Expand each pivot with the same backtracking expansion as ``Matchn``,
   restricted to the pivot's neighbourhood — insertion pivots in ``G ⊕ ΔG``
   (candidates for ΔVio⁺), deletion pivots in ``G`` (candidates for ΔVio⁻).
3. Literal-driven pruning discards partial solutions that can no longer
   produce a violation.

The algorithm is *localizable*: the nodes it ever touches lie within the
dΣ-neighbourhood of the endpoints of ΔG, so its cost is
``O(|Σ| · |G_dΣ(ΔG)|^|Σ|)`` independently of |G|.

The expansion is processed through the same work-unit machinery as the
parallel algorithms, on a single LIFO stack; the reported ``cost`` therefore
uses the same units as the simulated parallel makespans, making PIncDect's
relative parallel scalability (Theorem 6) directly observable in the
benchmarks.  ``restrict_to_neighborhood`` optionally extracts ``G_dΣ(ΔG)``
up front to demonstrate locality explicitly.

:func:`iter_inc_dect` is the kernel: a generator yielding a
:class:`~repro.detect.observers.ViolationEvent` (violation + ΔVio⁺/ΔVio⁻
direction) per finding, with optional sink notification and budget-capped
early termination.  :func:`inc_dect` keeps the original signature as a
compatibility shim over the :class:`~repro.detect.session.Detector` session.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from typing import Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.base import IncrementalDetectionResult
from repro.detect.instrument import begin_rule_span, finish_rule, stats_snapshot
from repro.detect.observers import (
    DetectionBudget,
    ViolationEvent,
    ViolationSink,
    notify_violation,
)
from repro.detect.parallel.workunits import (
    WorkUnit,
    expand_work_unit,
    initial_units_for_pivot,
    seed_consistent,
)
from repro.graph.graph import Graph
from repro.graph.neighborhood import multi_source_nodes_within_hops, update_neighborhood
from repro.graph.updates import BatchUpdate, apply_update
from repro.matching.adaptive import resolve_adaptive
from repro.matching.candidates import MatchStatistics
from repro.matching.compiled import resolve_compiled
from repro.matching.incmatch import find_update_pivots
from repro.matching.plan import MatchPlan, resolve_plans

__all__ = ["inc_dect", "iter_inc_dect"]


def iter_inc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    use_literal_pruning: bool = True,
    restrict_to_neighborhood: bool = False,
    graph_after: Optional[Graph] = None,
    budget: Optional[DetectionBudget] = None,
    sink: Optional[ViolationSink] = None,
    plans: Optional[Sequence[MatchPlan]] = None,
    adaptive=None,
    compiled: Optional[bool] = None,
) -> Iterator[ViolationEvent]:
    """Run incremental detection, yielding each ΔVio event as it is confirmed.

    Yields :class:`ViolationEvent` objects (``introduced=True`` for ΔVio⁺,
    ``False`` for ΔVio⁻); the generator's return value is the
    :class:`IncrementalDetectionResult`.  ``graph_after`` may be supplied
    when the caller has already materialised ``G ⊕ ΔG`` (the experiment
    harness reuses it across algorithms); otherwise it is computed here, and
    its construction is not charged to the algorithm's cost (the paper
    likewise assumes the updated graph is maintained by the storage layer).
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    stats = MatchStatistics()
    started = time.perf_counter()

    updated = graph_after if graph_after is not None else apply_update(graph, delta)

    # The update-driven search only ever reads G_dΣ(ΔG); identifying that region
    # (one multi-source BFS from the endpoints of ΔG) is part of the algorithm's
    # cost, exactly as in the O(|Σ|·|G_dΣ(ΔG)|^|Σ|) bound of Section 6.2.
    hops = max(rule_set.diameter(), 1)
    neighborhood_nodes = multi_source_nodes_within_hops(updated, delta.touched_nodes(), hops)
    neighborhood_size: Optional[int] = len(neighborhood_nodes)

    search_before, search_after = graph, updated
    if restrict_to_neighborhood:
        region_before = update_neighborhood(graph, delta, hops)
        region_after = update_neighborhood(updated, delta, hops)
        neighborhood_size = max(region_before.total_size(), region_after.total_size())
        search_before, search_after = region_before, region_after
        if plans:
            # session-cached plans were compiled against the whole graph; the
            # restricted regions have their own statistics, so recompile there
            # (the empty "planner off" marker passes through untouched)
            plans = None
            if not isinstance(adaptive, (bool, type(None))):
                # caller-built controllers belong to the discarded plans
                adaptive = None

    # one plan per rule serves both expansion directions (the statistics of
    # G and G ⊕ ΔG differ by at most |ΔG|, well within estimate noise)
    plans = resolve_plans(search_after, rule_list, plans)
    controllers = resolve_adaptive(plans, adaptive)
    compiled_flag = resolve_compiled(compiled)

    introduced = ViolationSet()
    removed = ViolationSet()
    cost = float(neighborhood_size)
    emitted = 0
    stop_reason: Optional[str] = None
    trace_parent = obs.current_span()

    for rule_index, rule in enumerate(rule_list):
        plan = plans[rule_index] if plans is not None else None
        controller = controllers[rule_index] if controllers is not None else None
        if budget is not None and budget.cost_exhausted(cost):
            stop_reason = "max_cost"
            break
        pivots = find_update_pivots(rule, delta, search_before, search_after)
        if not pivots:
            continue
        rule_before = stats_snapshot(stats)
        rule_cost_before = cost
        rule_emitted_before = emitted
        rule_span = begin_rule_span(trace_parent, rule.name, "IncDect")
        try:
            stack: list[WorkUnit] = []
            for pivot in pivots:
                unit = initial_units_for_pivot(
                    rule_index, rule, pivot.seed(), pivot.from_insertion, plan=plan
                )
                search_graph = search_after if pivot.from_insertion else search_before
                if not seed_consistent(search_graph, rule, unit):
                    continue
                cost += 1.0
                stack.append(unit)
            while stop_reason is None and stack:
                unit = stack.pop()
                search_graph = search_after if unit.from_insertion else search_before
                outcome = expand_work_unit(
                    search_graph,
                    rule,
                    unit,
                    use_literal_pruning,
                    stats,
                    plan=plan,
                    adaptive=controller,
                    compiled=compiled_flag,
                )
                cost += max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency
                stack.extend(outcome.new_units)
                target = introduced if unit.from_insertion else removed
                for violation in outcome.violations:
                    if violation in target:
                        continue
                    target.add(violation)
                    emitted += 1
                    notify_violation(sink, violation, introduced=unit.from_insertion)
                    yield ViolationEvent(violation, introduced=unit.from_insertion)
                    if budget is not None and budget.violations_exhausted(emitted):
                        stop_reason = "max_violations"
                        break
                if stop_reason is None and budget is not None and budget.cost_exhausted(cost):
                    stop_reason = "max_cost"
        finally:
            finish_rule(
                rule.name, rule_span, rule_before, stats, cost - rule_cost_before, emitted - rule_emitted_before
            )
        if stop_reason is not None:
            break

    elapsed = time.perf_counter() - started
    return IncrementalDetectionResult(
        delta=ViolationDelta(introduced=introduced, removed=removed),
        stats=stats,
        wall_time=elapsed,
        cost=cost,
        processors=1,
        algorithm="IncDect",
        neighborhood_size=neighborhood_size,
        stopped_early=stop_reason is not None,
        stop_reason=stop_reason,
    )


def inc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    use_literal_pruning: bool = True,
    restrict_to_neighborhood: bool = False,
    graph_after: Optional[Graph] = None,
) -> IncrementalDetectionResult:
    """Compute ΔVio(Σ, G, ΔG) with the update-driven sequential algorithm.

    Compatibility shim: equivalent to ``Detector(rules,
    engine="incremental").run_incremental(graph, delta, graph_after)``; new
    code should prefer the :class:`~repro.detect.session.Detector` session.
    """
    from repro.detect.session import DetectionOptions, Detector

    options = DetectionOptions(
        use_literal_pruning=use_literal_pruning,
        restrict_to_neighborhood=restrict_to_neighborhood,
    )
    detector = Detector(rules, engine="incremental", options=options)
    return detector.run_incremental(graph, delta, graph_after=graph_after)
