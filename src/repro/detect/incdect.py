"""``IncDect``: the sequential, localizable incremental detection algorithm.

Section 6.2.  Given a graph ``G``, a rule set Σ and a batch update ΔG,
IncDect computes ΔVio(Σ, G, ΔG) by update-driven evaluation:

1. For every rule and every unit update, build the *update pivots*: partial
   solutions mapping a pattern edge onto the updated data edge.
2. Expand each pivot with the same backtracking expansion as ``Matchn``,
   restricted to the pivot's neighbourhood — insertion pivots in ``G ⊕ ΔG``
   (candidates for ΔVio⁺), deletion pivots in ``G`` (candidates for ΔVio⁻).
3. Literal-driven pruning discards partial solutions that can no longer
   produce a violation.

The algorithm is *localizable*: the nodes it ever touches lie within the
dΣ-neighbourhood of the endpoints of ΔG, so its cost is
``O(|Σ| · |G_dΣ(ΔG)|^|Σ|)`` independently of |G|.

The expansion is processed through the same work-unit machinery as the
parallel algorithms, on a single LIFO stack; the reported ``cost`` therefore
uses the same units as the simulated parallel makespans, making PIncDect's
relative parallel scalability (Theorem 6) directly observable in the
benchmarks.  ``restrict_to_neighborhood`` optionally extracts ``G_dΣ(ΔG)``
up front to demonstrate locality explicitly.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.ngd import NGD, RuleSet
from repro.core.violations import ViolationDelta, ViolationSet
from repro.detect.base import IncrementalDetectionResult
from repro.detect.parallel.workunits import (
    WorkUnit,
    expand_work_unit,
    initial_units_for_pivot,
    seed_consistent,
)
from repro.graph.graph import Graph
from repro.graph.neighborhood import multi_source_nodes_within_hops, update_neighborhood
from repro.graph.updates import BatchUpdate, apply_update
from repro.matching.candidates import MatchStatistics
from repro.matching.incmatch import find_update_pivots

__all__ = ["inc_dect"]


def inc_dect(
    graph: Graph,
    rules: RuleSet | list[NGD],
    delta: BatchUpdate,
    use_literal_pruning: bool = True,
    restrict_to_neighborhood: bool = False,
    graph_after: Optional[Graph] = None,
) -> IncrementalDetectionResult:
    """Compute ΔVio(Σ, G, ΔG) with the update-driven sequential algorithm.

    ``graph_after`` may be supplied when the caller has already materialised
    ``G ⊕ ΔG`` (the experiment harness reuses it across algorithms); otherwise
    it is computed here, and its construction is not charged to the
    algorithm's cost (the paper likewise assumes the updated graph is
    maintained by the storage layer).
    """
    rule_set = rules if isinstance(rules, RuleSet) else RuleSet(rules)
    rule_list = list(rule_set)
    stats = MatchStatistics()
    started = time.perf_counter()

    updated = graph_after if graph_after is not None else apply_update(graph, delta)

    # The update-driven search only ever reads G_dΣ(ΔG); identifying that region
    # (one multi-source BFS from the endpoints of ΔG) is part of the algorithm's
    # cost, exactly as in the O(|Σ|·|G_dΣ(ΔG)|^|Σ|) bound of Section 6.2.
    hops = max(rule_set.diameter(), 1)
    neighborhood_nodes = multi_source_nodes_within_hops(updated, delta.touched_nodes(), hops)
    neighborhood_size: Optional[int] = len(neighborhood_nodes)

    search_before, search_after = graph, updated
    if restrict_to_neighborhood:
        region_before = update_neighborhood(graph, delta, hops)
        region_after = update_neighborhood(updated, delta, hops)
        neighborhood_size = max(region_before.total_size(), region_after.total_size())
        search_before, search_after = region_before, region_after

    introduced = ViolationSet()
    removed = ViolationSet()
    cost = float(neighborhood_size)

    for rule_index, rule in enumerate(rule_list):
        pivots = find_update_pivots(rule, delta, search_before, search_after)
        if not pivots:
            continue
        stack: list[WorkUnit] = []
        for pivot in pivots:
            unit = initial_units_for_pivot(rule_index, rule, pivot.seed(), pivot.from_insertion)
            search_graph = search_after if pivot.from_insertion else search_before
            if not seed_consistent(search_graph, rule, unit):
                continue
            cost += 1.0
            stack.append(unit)
        while stack:
            unit = stack.pop()
            search_graph = search_after if unit.from_insertion else search_before
            outcome = expand_work_unit(search_graph, rule, unit, use_literal_pruning, stats)
            cost += max(outcome.filtering_adjacency, 1) + outcome.verification_adjacency
            stack.extend(outcome.new_units)
            _absorb(outcome, unit, introduced, removed)

    elapsed = time.perf_counter() - started
    return IncrementalDetectionResult(
        delta=ViolationDelta(introduced=introduced, removed=removed),
        stats=stats,
        wall_time=elapsed,
        cost=cost,
        processors=1,
        algorithm="IncDect",
        neighborhood_size=neighborhood_size,
    )


def _absorb(outcome, unit: WorkUnit, introduced: ViolationSet, removed: ViolationSet) -> None:
    """Route the violations of an expansion outcome into ΔVio⁺ or ΔVio⁻."""
    target = introduced if unit.from_insertion else removed
    for violation in outcome.violations:
        target.add(violation)
