"""Common result types for the detection algorithms.

All detection algorithms (batch, incremental, parallel) report their outcome
through :class:`DetectionResult` / :class:`IncrementalDetectionResult`.  Two
cost measures are carried side by side:

* ``wall_time`` — elapsed Python time, what pytest-benchmark measures;
* ``cost`` — the number of algorithmic work units performed (candidate
  examinations, expansions, edge checks, literal evaluations), plus simulated
  communication charges for the parallel algorithms.

The paper's figures plot running time on a 20-machine Java cluster; this
reproduction plots ``cost`` (and, for the parallel algorithms, the simulated
makespan in the same units), which preserves the *shapes* the paper reports
while staying deterministic and hardware-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.violations import ViolationDelta, ViolationSet
from repro.matching.candidates import MatchStatistics

__all__ = ["DetectionResult", "IncrementalDetectionResult", "WorkerTrace"]


@dataclass
class WorkerTrace:
    """Per-worker accounting from a parallel run (used by the balancing analyses)."""

    worker: int
    busy_time: float = 0.0
    work_units_processed: int = 0
    units_received: int = 0
    units_shed: int = 0
    messages_sent: int = 0


@dataclass
class DetectionResult:
    """Outcome of a batch detection run (Dect / PDect)."""

    violations: ViolationSet
    stats: MatchStatistics = field(default_factory=MatchStatistics)
    wall_time: float = 0.0
    cost: float = 0.0
    processors: int = 1
    worker_traces: list[WorkerTrace] = field(default_factory=list)
    algorithm: str = "Dect"
    stopped_early: bool = False
    stop_reason: Optional[str] = None
    #: True when part of an ``execution="processes"`` run was completed on
    #: the parent's serial path after the worker pool collapsed or poison
    #: units were quarantined.  The violations are still exact — only the
    #: parallelism degraded.
    degraded: bool = False
    #: trace id of the observability span tree covering this run (None when
    #: the run was not driven through a Detector session or REPRO_OBS=off)
    trace_id: Optional[str] = None

    def violation_count(self) -> int:
        """Return |Vio(Σ, G)| (a lower bound when ``stopped_early``)."""
        return len(self.violations)


@dataclass
class IncrementalDetectionResult:
    """Outcome of an incremental detection run (IncDect / PIncDect)."""

    delta: ViolationDelta
    stats: MatchStatistics = field(default_factory=MatchStatistics)
    wall_time: float = 0.0
    cost: float = 0.0
    processors: int = 1
    worker_traces: list[WorkerTrace] = field(default_factory=list)
    algorithm: str = "IncDect"
    neighborhood_size: Optional[int] = None
    stopped_early: bool = False
    stop_reason: Optional[str] = None
    #: True when part of an ``execution="processes"`` run was completed on
    #: the parent's serial path after the worker pool collapsed or poison
    #: units were quarantined.  ΔVio is still exact — only the parallelism
    #: degraded.
    degraded: bool = False
    #: trace id of the observability span tree covering this run (None when
    #: the run was not driven through a Detector session or REPRO_OBS=off)
    trace_id: Optional[str] = None

    def introduced(self) -> ViolationSet:
        """Return ΔVio⁺."""
        return self.delta.introduced

    def removed(self) -> ViolationSet:
        """Return ΔVio⁻."""
        return self.delta.removed

    def total_changes(self) -> int:
        """Return |ΔVio⁺| + |ΔVio⁻|."""
        return self.delta.total_changes()
