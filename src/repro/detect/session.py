"""The unified detection session API.

The paper's four algorithms — Dect, IncDect, PDect, PIncDect — are one
conceptual operation, "find ``Vio(Σ, G)``", under different execution
regimes (batch vs update-driven, one processor vs a simulated cluster).
:class:`Detector` makes that explicit: construct a session once from a rule
set, an *engine* and :class:`DetectionOptions`, then point it at graphs::

    from repro import Detector, DetectionOptions
    from repro.core import example_rules

    detector = Detector(example_rules(), engine="auto",
                        options=DetectionOptions(max_violations=10))
    result = detector.run(graph)                  # full (capped) batch run
    for violation in detector.stream(graph):      # violations as found
        print(violation)
    delta = detector.run_incremental(graph, dg)   # ΔVio(Σ, G, ΔG)

Engines
-------

``"auto"``
    Pick per call: one processor → the sequential kernels (Dect / IncDect);
    ``processors > 1`` → the simulated-cluster kernels (PDect / PIncDect).
``"batch"``
    Always the batch kernel.  ``run_incremental`` computes ΔVio the
    ground-truth way — two full batch runs diffed — which is exactly the
    oracle the incremental algorithms are tested against.
``"incremental"``
    The update-driven kernel; supports only ``run_incremental`` /
    ``stream_incremental`` (a full run has no ΔG to localise around).
``"parallel"``
    The simulated-cluster kernels (PDect / PIncDect).

Streaming and early termination are native: the kernels are generators, so
:meth:`Detector.stream` yields each violation the moment its work unit
completes, sinks (:class:`~repro.detect.observers.ViolationSink`) observe
every run mode, and :class:`~repro.detect.observers.DetectionBudget` limits
(``max_violations`` / ``max_cost``) stop the kernels mid-search rather than
filtering afterwards.

The module-level functions ``dect`` / ``inc_dect`` / ``p_dect`` /
``pinc_dect`` remain as thin compatibility shims over this session.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import time
import weakref
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.core.ngd import NGD, RuleSet
from repro.core.violations import Violation, ViolationDelta
from repro.detect.base import DetectionResult, IncrementalDetectionResult
from repro.detect.instrument import flush_step_counts
from repro.detect.observers import (
    DetectionBudget,
    FanOutSink,
    ViolationEvent,
    ViolationSink,
    drain,
    notify_finish,
    notify_start,
    notify_violation,
)
from repro.detect.parallel.balancing import BalancingPolicy
from repro.errors import SessionError
from repro.graph.graph import Graph
from repro.graph.store import STORE_REGISTRY
from repro.detect.parallel.executor import EXECUTION_MODES, WarmExecutorPool
from repro.graph.updates import BatchUpdate, apply_update
from repro.matching.adaptive import CardinalityHistory, history_from_document, resolve_adaptive
from repro.matching.compiled import resolve_compiled
from repro.matching.plan import MatchPlan, compile_plans, load_plans, planner_enabled

__all__ = ["DetectionOptions", "Detector", "ENGINES", "EXECUTION_MODES"]

#: Process-wide identity tokens for graph stores: a warm-pool runtime key
#: must never alias two different stores the way a recycled ``id()`` can,
#: and must not keep dead stores alive the way a strong map would.
_STORE_TOKENS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_STORE_TOKEN_COUNTER = itertools.count(1)


def _store_token(store) -> Optional[int]:
    """Return a stable process-unique token for ``store`` (None: not weakref-able)."""
    try:
        token = _STORE_TOKENS.get(store)
        if token is None:
            token = next(_STORE_TOKEN_COUNTER)
            _STORE_TOKENS[store] = token
        return token
    except TypeError:  # pragma: no cover - store without weakref support
        return None

#: Sessions keep compiled plans for at most this many distinct graph
#: snapshots; older entries are evicted first (insertion order).
PLAN_CACHE_LIMIT = 8

#: The execution regimes a session can be pinned to.
ENGINES = ("auto", "batch", "incremental", "parallel")

#: Runs whose observed cost exceeds the planner's estimate by this factor
#: are logged to ``repro.detect.slowplan`` and counted in
#: ``repro_slow_plans_total`` (override with ``REPRO_SLOW_PLAN_RATIO``).
DEFAULT_SLOW_PLAN_RATIO = 25.0

_slow_plan_logger = logging.getLogger("repro.detect.slowplan")


def _slow_plan_ratio() -> float:
    raw = os.environ.get("REPRO_SLOW_PLAN_RATIO")
    if not raw:
        return DEFAULT_SLOW_PLAN_RATIO
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_SLOW_PLAN_RATIO


@dataclass(frozen=True)
class DetectionOptions:
    """Tuning knobs shared by every engine of a :class:`Detector` session.

    * ``use_literal_pruning`` — discard partial solutions that can no longer
      violate the dependency (Section 6.2's literal-driven pruning);
    * ``restrict_to_neighborhood`` — have IncDect materialise ``G_dΣ(ΔG)``
      up front to demonstrate locality explicitly;
    * ``policy`` — the :class:`BalancingPolicy` of the simulated cluster
      (parallel engines only; default: hybrid splitting + rebalancing);
    * ``max_violations`` / ``max_cost`` — early-termination budget, enforced
      inside the kernels (see :class:`DetectionBudget`).  The one mode that
      cannot honour a budget is ``engine="batch"`` incremental detection
      (the BatchDiff oracle: a capped batch run would make the diff
      unsound); a session configured that way raises :class:`SessionError`
      rather than silently running unbounded;
    * ``use_planner`` — execute compiled
      :class:`~repro.matching.plan.MatchPlan`\\ s (cost-based variable
      orders, pre-resolved literal schedules) instead of the static
      pipeline.  ``None`` (the default) defers to the
      ``REPRO_MATCH_PLANNER`` environment switch;
    * ``execution`` — how the parallel engine runs: ``"simulated"`` (the
      deterministic cluster simulator, cost = makespan) or ``"processes"``
      (real OS worker processes over a sharded store, cost = aggregate
      work, wall-clock in ``wall_time``).  ``engine="auto"`` resolves to
      the parallel engine whenever ``execution="processes"`` is asked for;
    * ``start_method`` — multiprocessing start method for
      ``execution="processes"`` (``None``: fork where available, the
      ``REPRO_EXECUTION_START_METHOD`` environment variable overrides);
    * ``adaptive`` — adaptive replanning from observed cardinalities
      (:mod:`repro.matching.adaptive`).  ``None`` (the default) defers to
      the ``REPRO_ADAPTIVE_REPLAN`` environment switch; only meaningful
      while the planner is active;
    * ``warm_pool`` — for ``execution="processes"``, keep the worker
      processes (and their loaded graph images) alive across this
      session's runs in a
      :class:`~repro.detect.parallel.executor.WarmExecutorPool` instead
      of spawning a fresh crew per run.  Close the session (``close()`` or
      the context-manager form) to stop the workers;
    * ``compiled`` — execute closure-compiled literal schedules
      (:mod:`repro.matching.compiled`: slot-based assignments, operator
      dispatch specialised per literal) on plan-driven kernels.  ``None``
      (the default) defers to the ``REPRO_COMPILED_EVAL`` environment
      switch, which is on unless set to ``off``/``0``/``false``/``no``;
      ``False`` pins the interpreted evaluator (byte-identical violations
      and statistics, just slower).  Only meaningful while the planner is
      active.
    """

    use_literal_pruning: bool = True
    restrict_to_neighborhood: bool = False
    policy: Optional[BalancingPolicy] = None
    max_violations: Optional[int] = None
    max_cost: Optional[float] = None
    use_planner: Optional[bool] = None
    execution: str = "simulated"
    start_method: Optional[str] = None
    adaptive: Optional[bool] = None
    warm_pool: bool = False
    compiled: Optional[bool] = None

    def planner_active(self) -> bool:
        """Return whether sessions should compile and execute match plans."""
        if self.use_planner is not None:
            return self.use_planner
        return planner_enabled()

    def budget(self) -> Optional[DetectionBudget]:
        """Return the termination budget, or None when the run is unbounded."""
        if self.max_violations is None and self.max_cost is None:
            return None
        return DetectionBudget(max_violations=self.max_violations, max_cost=self.max_cost)


class Detector:
    """A reusable detection session: rules + engine + options + sinks.

    The session owns no graph: pass one to each :meth:`run` /
    :meth:`run_incremental` / :meth:`stream` call and reuse the session
    across graphs, deltas, and sweeps.  ``last_result`` keeps the result
    object of the most recently *completed* run (streams set it when the
    generator is exhausted).
    """

    def __init__(
        self,
        rules: RuleSet | list[NGD] | Iterable[NGD],
        engine: str = "auto",
        processors: Optional[int] = None,
        store: Optional[str] = None,
        options: Optional[DetectionOptions] = None,
        sinks: Iterable[ViolationSink] = (),
        plans_file: Optional[str] = None,
        executor_pool: Optional[WarmExecutorPool] = None,
    ) -> None:
        if engine not in ENGINES:
            raise SessionError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if store is not None and store not in STORE_REGISTRY:
            raise SessionError(
                f"unknown graph store {store!r}; expected one of {sorted(STORE_REGISTRY)}"
            )
        if processors is not None and processors < 1:
            raise SessionError(f"processors must be >= 1, got {processors}")
        self.rules = rules if isinstance(rules, RuleSet) else RuleSet(rules)
        self.engine = engine
        self.processors = processors
        self.store = store
        self.options = options if options is not None else DetectionOptions()
        if self.options.execution not in EXECUTION_MODES:
            raise SessionError(
                f"unknown execution mode {self.options.execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if self.options.execution == "processes" and engine in ("batch", "incremental"):
            raise SessionError(
                f"execution='processes' runs the parallel kernels; engine={engine!r} "
                "is single-process by definition — use engine='auto' or 'parallel' "
                "(or drop execution='processes')"
            )
        if self.options.warm_pool and self.options.execution != "processes":
            raise SessionError(
                "warm_pool keeps OS worker processes alive and therefore "
                "requires execution='processes'"
            )
        # a persisted plan set (matching.plan.save_plans, written next to its
        # rule catalog) pins this session's plans: loaded once lazily, reused
        # for every run, no statistics pass, no drift invalidation
        self.plans_file = plans_file
        self._file_plans: Optional[tuple[MatchPlan, ...]] = None
        self._sinks: list[ViolationSink] = list(sinks)
        self.last_result: Optional[DetectionResult | IncrementalDetectionResult] = None
        # plan cache: id(store) -> (node_count, edge_count, plans); a stale
        # id collision is benign (any plan over this session's rules is a
        # valid execution order), but count drift forces a recompile so the
        # cost model never runs on stale statistics
        self._plan_cache: dict[int, tuple[int, int, tuple[MatchPlan, ...]]] = {}
        # observed cardinalities harvested from this session's adaptive
        # controllers; folded into later compile_plans calls as priors and
        # persistable next to the plan document (save_plans(history=...))
        self.history = CardinalityHistory()
        # warm executor pool: injected (shared, e.g. the service's) or owned
        # (options.warm_pool); only the owned one is stopped by close()
        self._executor_pool = executor_pool
        self._owns_pool = False
        self._rules_digest: Optional[str] = None

    # ------------------------------------------------------------------ sinks

    def add_sink(self, sink: ViolationSink) -> "Detector":
        """Attach a sink (builder style); it observes every subsequent run."""
        self._sinks.append(sink)
        return self

    def _sink(self) -> Optional[ViolationSink]:
        if not self._sinks:
            return None
        if len(self._sinks) == 1:
            return self._sinks[0]
        return FanOutSink(self._sinks)

    # ------------------------------------------------------------------ plans

    def compile_plans(self, graph: Graph) -> Optional[tuple[MatchPlan, ...]]:
        """Compile (or fetch cached) :class:`MatchPlan`\\ s for this session's rules.

        Returns ``None`` when the planner is disabled.  Plans are cached per
        graph snapshot (store identity + node/edge counts) and recompiled
        when the counts drift, so repeated runs against the same snapshot —
        the service's per-version detection jobs — compile exactly once.
        Callers holding a plan set across snapshots (continuous sessions)
        may pass it back explicitly via the ``plans=`` argument of the run
        methods instead.
        """
        if not self.options.planner_active():
            return None
        if self.plans_file is not None:
            if self._file_plans is None:
                self._file_plans = load_plans(self.plans_file, self.rules)
                # a plan document may embed the cardinality history of the
                # runs that produced it; adopt it so this session's own
                # observations fold on top
                with open(self.plans_file, "r", encoding="utf-8") as handle:
                    embedded = history_from_document(json.load(handle))
                if embedded is not None:
                    self.history = embedded
            return self._file_plans
        key = id(graph.store)
        cached = self._plan_cache.get(key)
        counts = (graph.node_count(), graph.edge_count())
        if cached is not None and cached[:2] == counts:
            return cached[2]
        with obs.span("detect.compile_plans", store=graph.store_backend) as plan_span:
            plans = compile_plans(
                graph,
                self.rules,
                history=self.history if self.history else None,
                compiled=self.options.compiled,
            )
            plan_span.set(plans=len(plans), compiled=resolve_compiled(self.options.compiled))
        self._plan_cache[key] = (*counts, plans)
        while len(self._plan_cache) > PLAN_CACHE_LIMIT:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        return plans

    def clear_plan_cache(self) -> None:
        """Drop every cached plan (the next run recompiles)."""
        self._plan_cache.clear()

    def save_history(self, path: str) -> None:
        """Persist the session's observed-cardinality history as JSON."""
        self.history.save(path)

    # ------------------------------------------------------------ warm pooling

    def executor_pool(self) -> Optional[WarmExecutorPool]:
        """Return the session's warm executor pool, creating an owned one
        on first use when ``options.warm_pool`` asks for it."""
        if self._executor_pool is None and self.options.warm_pool:
            self._executor_pool = WarmExecutorPool(
                self._effective_processors(), start_method=self.options.start_method
            )
            self._owns_pool = True
        return self._executor_pool

    def close(self) -> None:
        """Release session resources (the owned warm pool's workers)."""
        if self._owns_pool and self._executor_pool is not None:
            self._executor_pool.shutdown()

    def __enter__(self) -> "Detector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _runtime_key(self, graph: Graph, caller_plans: bool) -> Optional[tuple]:
        """Identify a batch runtime for warm-pool reuse, or None to force a miss.

        The key pins everything the workers' loaded runtime is a function
        of: the graph snapshot (store identity token + node/edge counts —
        graphs the session detects over are treated as immutable
        snapshots, which is how the registry publishes them) and this
        session's rules/flags.  Caller-supplied plans bypass the session's
        deterministic compile, so they force a reload.
        """
        token = _store_token(graph.store)
        if token is None or caller_plans:
            return None
        if self._rules_digest is None:
            self._rules_digest = hashlib.sha1(self.rules.to_json().encode("utf-8")).hexdigest()
        return (
            token,
            graph.node_count(),
            graph.edge_count(),
            self._rules_digest,
            self.options.use_literal_pruning,
            self.options.planner_active(),
            self.options.adaptive,
            self.options.compiled,
        )

    # ------------------------------------------------------------- resolution

    def _effective_processors(self) -> int:
        return self.processors if self.processors is not None else 8

    def _resolve_batch_engine(self) -> str:
        if self.engine == "incremental":
            raise SessionError(
                "engine='incremental' performs update-driven detection only; "
                "call run_incremental(graph, delta) or construct the Detector "
                "with engine='auto'/'batch' for full runs"
            )
        if self.engine == "auto":
            if self.options.execution == "processes":
                return "parallel"
            return "parallel" if (self.processors or 1) > 1 else "batch"
        return self.engine

    def _resolve_incremental_engine(self) -> str:
        if self.engine == "auto":
            if self.options.execution == "processes":
                return "parallel"
            return "parallel" if (self.processors or 1) > 1 else "incremental"
        return self.engine

    def _prepare(self, graph: Graph) -> Graph:
        """Convert the input graph to the session's preferred storage backend."""
        if self.store is not None and graph.store_backend != self.store:
            return graph.with_backend(self.store)
        return graph

    # ------------------------------------------------------------------- runs

    def run(self, graph: Graph, plans: Optional[Sequence[MatchPlan]] = None) -> DetectionResult:
        """Compute ``Vio(Σ, G)`` (subject to the session's budget).

        ``plans`` overrides the session's compiled-plan cache (continuous
        sessions hand back the plans they compiled at an earlier version).
        """
        result = drain(self._traced_events(lambda: self._batch_events(graph, plans), "detect.run"))
        self._finish(result)
        return result

    def stream(
        self, graph: Graph, plans: Optional[Sequence[MatchPlan]] = None
    ) -> Iterator[Violation]:
        """Yield violations of ``Vio(Σ, G)`` as their work units complete.

        The same violations, in the same deterministic order, as the sinks
        observe during :meth:`run`; after exhaustion the full
        :class:`DetectionResult` is available as ``last_result``.
        """
        result = yield from self._traced_events(
            lambda: self._batch_events(graph, plans), "detect.run"
        )
        self._finish(result)

    def run_incremental(
        self,
        graph: Graph,
        delta: BatchUpdate,
        graph_after: Optional[Graph] = None,
        plans: Optional[Sequence[MatchPlan]] = None,
    ) -> IncrementalDetectionResult:
        """Compute ΔVio(Σ, G, ΔG) (subject to the session's budget).

        ``graph_after`` may be supplied when ``G ⊕ ΔG`` is already
        materialised; otherwise it is computed (uncharged, as the paper
        assumes the storage layer maintains it).
        """
        result = drain(
            self._traced_events(
                lambda: self._incremental_events(graph, delta, graph_after, plans),
                "detect.run_incremental",
            )
        )
        self._finish(result)
        return result

    def stream_incremental(
        self,
        graph: Graph,
        delta: BatchUpdate,
        graph_after: Optional[Graph] = None,
        plans: Optional[Sequence[MatchPlan]] = None,
    ) -> Iterator[ViolationEvent]:
        """Yield :class:`ViolationEvent`\\ s of ΔVio(Σ, G, ΔG) as found."""
        result = yield from self._traced_events(
            lambda: self._incremental_events(graph, delta, graph_after, plans),
            "detect.run_incremental",
        )
        self._finish(result)

    # ------------------------------------------------------------- internals

    def _finish(self, result: DetectionResult | IncrementalDetectionResult) -> None:
        self.last_result = result
        notify_finish(self._sink(), result)

    def _traced_events(self, factory: Callable[[], Iterator], name: str):
        """Drive ``factory()``'s event stream under one root span.

        The root span becomes the contextvar-current span before the
        factory runs, so plan compilation and the kernels (which capture
        ``obs.current_span()`` at generator start) parent their spans —
        and hence the whole run's trace — under it.  On completion the
        result gains the ``trace_id`` and the run is counted and checked
        against the slow-plan threshold.  With observability off this is
        a plain pass-through.
        """
        if not obs.enabled():
            result = yield from factory()
            return result
        enclosing = obs.current_span_var.get()
        if enclosing is not None:
            # e.g. the service's per-job span: the whole run joins its trace
            root = obs.Span(
                name, trace_id=enclosing.trace_id, parent_id=enclosing.span_id
            )
        else:
            root = obs.Span(name)
        token = obs.current_span_var.set(root)
        try:
            result = yield from factory()
            result.trace_id = root.trace_id
            self._note_run(root, result)
        except BaseException as exc:
            root.set(error=type(exc).__name__)
            raise
        finally:
            try:
                obs.current_span_var.reset(token)
            except ValueError:  # consumer resumed the stream from another context
                pass
            root.finish()
            obs.recorder().record(root)
        return result

    def _note_run(
        self, root: obs.Span, result: DetectionResult | IncrementalDetectionResult
    ) -> None:
        """Close out a traced run: root-span attributes, counters, slow-plan check."""
        flush_step_counts(result.stats)
        if isinstance(result, IncrementalDetectionResult):
            changes = result.total_changes()
        else:
            changes = result.violation_count()
        root.set(
            algorithm=result.algorithm,
            cost=round(result.cost, 6),
            violations=changes,
            processors=result.processors,
        )
        if getattr(result, "degraded", False):
            # the worker pool degraded to the serial path mid-run; the
            # violations are still exact but the trace should say so
            root.set(degraded=True)
        obs.counter_inc("repro_detect_runs_total", {"algorithm": result.algorithm})
        if result.stats.literal_evaluations:
            # compiled schedules only execute on plan-driven kernels, so the
            # mode label reflects what actually ran, not just the knob
            eval_mode = (
                "compiled"
                if self.options.planner_active() and resolve_compiled(self.options.compiled)
                else "interpreted"
            )
            obs.counter_inc(
                "repro_literal_evals_total",
                {"mode": eval_mode},
                result.stats.literal_evaluations,
            )
        estimate = root.attributes.get("plan_estimate")
        if isinstance(estimate, (int, float)) and estimate > 0:
            ratio = result.cost / estimate
            root.set(cost_ratio=round(ratio, 3))
            threshold = _slow_plan_ratio()
            if ratio >= threshold:
                obs.counter_inc("repro_slow_plans_total", {"algorithm": result.algorithm})
                _slow_plan_logger.warning(
                    "slow plan: %s run cost %.1f is %.1fx the planner estimate %.1f "
                    "(threshold %.1fx, trace %s)",
                    result.algorithm,
                    result.cost,
                    ratio,
                    estimate,
                    threshold,
                    root.trace_id,
                )

    def _annotate_root(self, mode: str, graph: Graph, plans) -> None:
        """Stamp run context onto the root span (no-op outside a traced run)."""
        root = obs.current_span()
        if root is None:
            return
        root.set(
            mode=mode,
            execution=self.options.execution,
            store=graph.store_backend,
            nodes=graph.node_count(),
            edges=graph.edge_count(),
        )
        if plans:
            root.set(
                plan_estimate=round(
                    sum(plan.estimated_unit_cost(0) for plan in plans), 3
                )
            )

    def _adaptive_argument(self, plans, processes: bool):
        """Resolve what the kernels receive as ``adaptive``.

        In-process kernels get session-built controllers (so the session
        can harvest their observations into ``history`` afterwards); the
        processes backend only gets the bool/None switch — controllers
        cannot cross the process boundary, workers build their own.
        """
        if processes:
            return self.options.adaptive
        if not plans:
            return self.options.adaptive
        resolved = resolve_adaptive(plans, self.options.adaptive)
        if resolved is None:
            return False
        return resolved

    def _harvesting(self, events, controllers):
        """Run ``events`` to completion, then fold controller observations."""
        result = yield from events
        self.history.fold_controllers(controllers)
        return result

    def _batch_events(
        self, graph: Graph, plans: Optional[Sequence[MatchPlan]] = None
    ) -> Iterator[Violation]:
        from repro.detect.dect import iter_dect
        from repro.detect.parallel.pdect import iter_p_dect

        mode = self._resolve_batch_engine()
        graph = self._prepare(graph)
        caller_plans = plans is not None
        if plans is None:
            plans = self.compile_plans(graph)
        sink = self._sink()
        budget = self.options.budget()
        notify_start(sink, self)
        if not self.options.planner_active():
            plans = ()  # explicit off marker: the kernel must not recompile
        self._annotate_root(mode, graph, plans)
        processes = mode == "parallel" and self.options.execution == "processes"
        adaptive = self._adaptive_argument(plans, processes)
        if mode == "batch":
            events = iter_dect(
                graph,
                self.rules,
                use_literal_pruning=self.options.use_literal_pruning,
                budget=budget,
                sink=sink,
                plans=plans,
                adaptive=adaptive,
                compiled=self.options.compiled,
            )
        else:
            pool = self.executor_pool() if processes else None
            events = iter_p_dect(
                graph,
                self.rules,
                processors=self._effective_processors(),
                policy=self.options.policy,
                use_literal_pruning=self.options.use_literal_pruning,
                budget=budget,
                sink=sink,
                plans=plans,
                execution=self.options.execution,
                start_method=self.options.start_method,
                adaptive=adaptive,
                warm_pool=pool,
                runtime_key=self._runtime_key(graph, caller_plans) if pool is not None else None,
                compiled=self.options.compiled,
            )
        if isinstance(adaptive, tuple):
            return self._harvesting(events, adaptive)
        return events

    def _incremental_events(
        self,
        graph: Graph,
        delta: BatchUpdate,
        graph_after: Optional[Graph],
        plans: Optional[Sequence[MatchPlan]] = None,
    ) -> Iterator[ViolationEvent]:
        from repro.detect.incdect import iter_inc_dect
        from repro.detect.parallel.pincdect import iter_pinc_dect

        mode = self._resolve_incremental_engine()
        graph = self._prepare(graph)
        if graph_after is not None:
            graph_after = self._prepare(graph_after)
        if plans is None and mode in ("incremental", "parallel"):
            # plans are compiled against G ⊕ ΔG when it is already
            # materialised (the service always hands it over); otherwise
            # against G — the statistics differ by at most |ΔG|
            plans = self.compile_plans(graph_after if graph_after is not None else graph)
        sink = self._sink()
        budget = self.options.budget()
        notify_start(sink, self)
        if not self.options.planner_active():
            plans = ()  # explicit off marker: the kernel must not recompile
        self._annotate_root(mode, graph, plans)
        processes = mode == "parallel" and self.options.execution == "processes"
        adaptive = self._adaptive_argument(plans, processes)
        if mode == "incremental":
            events = iter_inc_dect(
                graph,
                self.rules,
                delta,
                use_literal_pruning=self.options.use_literal_pruning,
                restrict_to_neighborhood=self.options.restrict_to_neighborhood,
                graph_after=graph_after,
                budget=budget,
                sink=sink,
                plans=plans,
                adaptive=adaptive,
                compiled=self.options.compiled,
            )
            if isinstance(adaptive, tuple):
                return self._harvesting(events, adaptive)
            return events
        if mode == "parallel":
            events = iter_pinc_dect(
                graph,
                self.rules,
                delta,
                processors=self._effective_processors(),
                policy=self.options.policy,
                use_literal_pruning=self.options.use_literal_pruning,
                graph_after=graph_after,
                budget=budget,
                sink=sink,
                plans=plans,
                execution=self.options.execution,
                start_method=self.options.start_method,
                adaptive=adaptive,
                warm_pool=self.executor_pool() if processes else None,
                compiled=self.options.compiled,
            )
            if isinstance(adaptive, tuple):
                return self._harvesting(events, adaptive)
            return events
        if budget is not None:
            raise SessionError(
                "engine='batch' incremental detection (BatchDiff) cannot honour "
                "a DetectionBudget: capping either full batch run would make the "
                "diff unsound; drop max_violations/max_cost or use "
                "engine='incremental'/'parallel'"
            )
        return self._batch_diff_events(graph, delta, graph_after, sink, plans)

    def _batch_diff_events(
        self,
        graph: Graph,
        delta: BatchUpdate,
        graph_after: Optional[Graph],
        sink: Optional[ViolationSink],
        plans: Optional[Sequence[MatchPlan]] = None,
    ) -> Iterator[ViolationEvent]:
        """Ground-truth incremental mode for ``engine="batch"``.

        Runs the batch kernel on ``G`` and ``G ⊕ ΔG`` and diffs the two
        violation sets — exactly the oracle the incremental algorithms are
        validated against in the tests.  Budgets are rejected upstream in
        :meth:`_incremental_events` (a capped batch run would make the diff
        unsound); events stream only after the second run completes.  Each
        batch run receives its own plans (explicit ``plans`` serve both
        graphs; ``()`` is the session's planner-off marker, which pins the
        static pipeline regardless of ``REPRO_MATCH_PLANNER``).
        """
        from repro.detect.dect import iter_dect

        started = time.perf_counter()
        updated = graph_after if graph_after is not None else apply_update(graph, delta)
        if plans is None:
            before_plans = self.compile_plans(graph)
            after_plans = self.compile_plans(updated)
        else:
            before_plans = after_plans = plans
        before = drain(
            iter_dect(
                graph,
                self.rules,
                self.options.use_literal_pruning,
                plans=before_plans,
                compiled=self.options.compiled,
            )
        )
        after = drain(
            iter_dect(
                updated,
                self.rules,
                self.options.use_literal_pruning,
                plans=after_plans,
                compiled=self.options.compiled,
            )
        )
        violation_delta = ViolationDelta.from_sets(before.violations, after.violations)
        stats = before.stats
        stats.merge(after.stats)
        result = IncrementalDetectionResult(
            delta=violation_delta,
            stats=stats,
            wall_time=time.perf_counter() - started,
            cost=before.cost + after.cost,
            processors=1,
            algorithm="BatchDiff",
        )
        for violation in sorted(violation_delta.introduced, key=str):
            notify_violation(sink, violation, introduced=True)
            yield ViolationEvent(violation, introduced=True)
        for violation in sorted(violation_delta.removed, key=str):
            notify_violation(sink, violation, introduced=False)
            yield ViolationEvent(violation, introduced=False)
        return result
