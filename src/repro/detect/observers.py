"""Streaming observers and termination budgets for the detection kernels.

The paper's four algorithms (Dect, IncDect, PDect, PIncDect) compute
``Vio(Σ, G)`` (or its delta) as one monolithic batch; downstream consumers —
repair pipelines, dashboards, the CLI — usually want violations *as they are
found* and often only need the first few.  This module supplies the two
building blocks the kernels share to support that natively:

* :class:`ViolationSink` — an observer notified of every violation the
  moment its work unit completes (before the run finishes);
* :class:`DetectionBudget` — early-termination limits (``max_violations``,
  ``max_cost``) enforced *inside* the kernels, so a capped run really does
  less work instead of discarding surplus results.

Both are threaded through the kernels as optional keyword arguments; the
:class:`~repro.detect.session.Detector` session wires them up from
:class:`~repro.detect.session.DetectionOptions`.

Threading contract
------------------

A single detection run notifies its sink from one thread: the generator
kernels call ``on_violation`` from whichever thread is consuming the
iterator, and the simulated parallel engines (PDect / PIncDect) notify in
*worker completion order* but still from the consuming thread.  The
thread-based engine (:mod:`repro.detect.parallel.threaded`) and — more
importantly — the detection service (:mod:`repro.service`) break that
assumption: the service shares sinks across concurrently-running sessions
served by :class:`http.server.ThreadingHTTPServer` worker threads, so a
sink instance may receive interleaved ``on_violation`` / ``on_finish``
calls from several threads at once.

The rule is therefore: a sink attached to exactly one :class:`Detector`
used from one thread may be as simple as it likes; **any sink shared
between sessions or threads must serialise its own state changes**.  The
sinks shipped here follow it — :class:`CollectingSink` guards its violation
sets and :class:`FanOutSink` holds an internal lock across each broadcast
so children observe every event atomically and in a consistent order.

Exception contract
------------------

A sink is an *observer*: it must never be able to abort the detection that
feeds it.  Every kernel therefore notifies sinks through the
``notify_start`` / ``notify_violation`` / ``notify_finish`` helpers below,
which catch any exception the sink raises, log it once (logger
``repro.detect.sink``), count it in the ``repro_sink_errors_total{method}``
metric, and carry on.  The stream the consumer sees — violations yielded,
the final result — is byte-identical whether a sink raises or not.
(Before this contract, a raising sink had kernel-dependent behavior:
some kernels crashed mid-run, others lost violations.)  Sinks that need
their errors surfaced should catch and report them on their own channel.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.core.violations import Violation, ViolationSet
from repro.errors import SessionError

__all__ = [
    "ViolationSink",
    "CollectingSink",
    "CallbackSink",
    "FanOutSink",
    "ViolationEvent",
    "DetectionBudget",
    "drain",
    "notify_start",
    "notify_violation",
    "notify_finish",
]

_logger = logging.getLogger("repro.detect.sink")


def _sink_error(method: str, exc: BaseException) -> None:
    obs.counter_inc("repro_sink_errors_total", {"method": method})
    _logger.warning("violation sink raised in %s (ignored): %r", method, exc)


def notify_start(sink: Optional["ViolationSink"], detector: object) -> None:
    """Call ``sink.on_start``; a raising sink is logged + counted, never fatal."""
    if sink is None:
        return
    try:
        sink.on_start(detector)
    except Exception as exc:
        _sink_error("on_start", exc)


def notify_violation(
    sink: Optional["ViolationSink"], violation: Violation, introduced: bool = True
) -> None:
    """Call ``sink.on_violation``; a raising sink is logged + counted, never fatal."""
    if sink is None:
        return
    try:
        sink.on_violation(violation, introduced)
    except Exception as exc:
        _sink_error("on_violation", exc)


def notify_finish(sink: Optional["ViolationSink"], result: object) -> None:
    """Call ``sink.on_finish``; a raising sink is logged + counted, never fatal."""
    if sink is None:
        return
    try:
        sink.on_finish(result)
    except Exception as exc:
        _sink_error("on_finish", exc)


@dataclass(frozen=True)
class ViolationEvent:
    """One streamed finding: the violation plus its direction.

    ``introduced`` is always True for batch detection; incremental runs use
    False to flag a violation *removed* by the update (ΔVio⁻).
    """

    violation: Violation
    introduced: bool = True


class ViolationSink:
    """Observer protocol for streaming detection.

    Subclass and override any subset; the base methods are no-ops so sinks
    only pay for what they watch.  ``on_violation`` is invoked by the
    detection kernels the moment a violating match is confirmed — i.e. before
    the run completes — so sinks must not mutate the graph being searched.
    """

    def on_start(self, detector: object) -> None:
        """Called once by the session before the kernel starts."""

    def on_violation(self, violation: Violation, introduced: bool = True) -> None:
        """Called for every violation as its work unit completes."""

    def on_finish(self, result: object) -> None:
        """Called once with the final result object (including early stops)."""


class CollectingSink(ViolationSink):
    """A sink that accumulates streamed violations into violation sets.

    Safe to share between concurrently-running detections: additions to the
    violation sets and the results list are serialised by an internal lock
    (see the module's threading contract).
    """

    def __init__(self) -> None:
        self.introduced = ViolationSet()
        self.removed = ViolationSet()
        self.results: list[object] = []
        self._lock = threading.Lock()

    @property
    def violations(self) -> ViolationSet:
        """The violations of a batch run (alias for ``introduced``)."""
        return self.introduced

    def on_violation(self, violation: Violation, introduced: bool = True) -> None:
        with self._lock:
            (self.introduced if introduced else self.removed).add(violation)

    def on_finish(self, result: object) -> None:
        with self._lock:
            self.results.append(result)


class CallbackSink(ViolationSink):
    """Adapt a plain callable ``fn(violation, introduced)`` into a sink."""

    def __init__(self, callback: Callable[[Violation, bool], object]) -> None:
        self._callback = callback

    def on_violation(self, violation: Violation, introduced: bool = True) -> None:
        self._callback(violation, introduced)


class FanOutSink(ViolationSink):
    """Broadcast every notification to a list of child sinks, in order.

    Thread-safe: an internal lock is held across each whole broadcast, so
    when the fan-out is shared between sessions (as the detection service
    does) every child sink sees each event exactly once, events are never
    interleaved mid-broadcast, and all children observe the same order.
    Child sinks therefore need no locking of their own *against siblings*,
    though a child also attached elsewhere must still guard itself.
    """

    def __init__(self, sinks: Iterable[ViolationSink]) -> None:
        self._sinks = tuple(sinks)
        self._lock = threading.Lock()

    def on_start(self, detector: object) -> None:
        with self._lock:
            for sink in self._sinks:
                sink.on_start(detector)

    def on_violation(self, violation: Violation, introduced: bool = True) -> None:
        with self._lock:
            for sink in self._sinks:
                sink.on_violation(violation, introduced)

    def on_finish(self, result: object) -> None:
        with self._lock:
            for sink in self._sinks:
                sink.on_finish(result)


@dataclass(frozen=True)
class DetectionBudget:
    """Early-termination limits enforced inside the detection kernels.

    * ``max_violations`` — stop as soon as this many violations have been
      emitted (for incremental runs: ΔVio⁺ and ΔVio⁻ events combined);
    * ``max_cost`` — stop once the run's cost measure (work units for the
      sequential kernels, simulated makespan for the parallel ones) reaches
      this bound.

    A capped run reports ``stopped_early=True`` and the triggering limit in
    ``stop_reason`` on its result; the violations found up to that point are
    exact members of the full answer (the kernels only ever emit confirmed
    matches), the run is simply incomplete.

    Caps must leave the kernel something to do: ``max_violations`` at least
    1, ``max_cost`` positive (the kernels check exhaustion after emitting /
    charging, so a zero cap could not be honoured exactly).
    """

    max_violations: Optional[int] = None
    max_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_violations is not None and self.max_violations < 1:
            raise SessionError(
                f"max_violations must be >= 1, got {self.max_violations}"
            )
        if self.max_cost is not None and self.max_cost <= 0:
            raise SessionError(f"max_cost must be > 0, got {self.max_cost}")

    def violations_exhausted(self, emitted: int) -> bool:
        """Return True once ``emitted`` violations hit the cap."""
        return self.max_violations is not None and emitted >= self.max_violations

    def cost_exhausted(self, cost: float) -> bool:
        """Return True once the cost measure hits the cap."""
        return self.max_cost is not None and cost >= self.max_cost


def drain(events: Iterator) -> object:
    """Run a detection event iterator to completion and return its result.

    The kernels are generators that *yield* violations (or
    :class:`ViolationEvent`\\ s) and *return* their result object; ``drain``
    is the batch-mode consumer that discards the stream and keeps the result.
    """
    while True:
        try:
            next(events)
        except StopIteration as stop:
            return stop.value
