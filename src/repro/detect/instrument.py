"""Shared per-rule instrumentation helpers for the detection kernels.

All four kernels (Dect, IncDect, PDect, PIncDect) attribute their work the
same way: snapshot the run's :class:`~repro.matching.candidates.MatchStatistics`
before a rule starts, diff after it ends, and emit the delta as per-rule
counters plus one ``detect.rule`` span whose attributes carry the exact
counter deltas.  Summing the rule spans of one trace therefore reproduces
the run's ``MatchStatistics`` — the invariant ``repro-detect run --profile``
and the observability tests rely on.

Helpers here are cheap (a tuple of five int reads per rule) and fully
inert when observability is disabled.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import obs
from repro.matching.candidates import STEP_COUNT_PREFIX, MatchStatistics

__all__ = [
    "stats_snapshot",
    "begin_rule_span",
    "finish_rule",
    "flush_step_counts",
    "RuleAttribution",
]

STAT_FIELDS = (
    "candidates_examined",
    "expansions",
    "edge_checks",
    "literal_evaluations",
    "matches_emitted",
)


def stats_snapshot(stats: MatchStatistics) -> Tuple[int, int, int, int, int]:
    return (
        stats.candidates_examined,
        stats.expansions,
        stats.edge_checks,
        stats.literal_evaluations,
        stats.matches_emitted,
    )


def begin_rule_span(
    trace_parent: Optional[obs.Span], rule_name: str, algorithm: str
) -> Optional[obs.Span]:
    """Open a ``detect.rule`` span under the run's root span (if any)."""
    if trace_parent is None:
        return None
    span = obs.Span(
        "detect.rule",
        trace_id=trace_parent.trace_id,
        parent_id=trace_parent.span_id,
        attributes={"rule": rule_name, "algorithm": algorithm},
    )
    return span


def finish_rule(
    rule_name: str,
    span: Optional[obs.Span],
    before: Tuple[int, int, int, int, int],
    stats: MatchStatistics,
    cost_delta: float,
    violations_delta: int,
) -> None:
    """Emit one rule's counter deltas and close its span."""
    if not obs.enabled():
        return
    after = stats_snapshot(stats)
    delta = {field: after[i] - before[i] for i, field in enumerate(STAT_FIELDS)}
    labels = {"rule": rule_name}
    obs.counter_inc("repro_detect_candidates_total", labels, delta["candidates_examined"])
    obs.counter_inc("repro_detect_matches_total", labels, delta["matches_emitted"])
    obs.counter_inc("repro_detect_violations_total", labels, violations_delta)
    if span is not None:
        span.set(cost=round(cost_delta, 6), violations=violations_delta, **delta)
        span.finish()
        obs.recorder().record(span)


def flush_step_counts(stats: MatchStatistics) -> None:
    """Emit the run's per-(rule, step, strategy) candidate-scan counters.

    ``step_candidates`` accumulates scan counts under
    :data:`~repro.matching.candidates.STEP_COUNT_PREFIX` keys in
    ``stats.extra`` (plain dict arithmetic — registry label handling is too
    slow for the per-expansion hot path); the session calls this once per
    completed run.  ``extra`` merges additively across threads and worker
    processes, so one flush covers every execution mode.
    """
    if not obs.enabled():
        return
    for key, scanned in stats.extra.items():
        if not key.startswith(STEP_COUNT_PREFIX) or not scanned:
            continue
        _, rule_name, step, strategy = key.split("\x1f")
        obs.counter_inc(
            "repro_match_candidates_examined",
            {"rule": rule_name, "step": step, "strategy": strategy},
            scanned,
        )


class RuleAttribution:
    """Per-rule accumulator for kernels whose units interleave across rules.

    The parallel kernels pop work units in completion order, so rules are
    not contiguous; instead of one live span per rule, deltas are
    accumulated per rule (plain dict arithmetic, no registry traffic in the
    hot loop) and emitted once at the end of the run.  The emitted
    counters and ``detect.rule`` span attributes carry the same field set
    as :func:`finish_rule`, so profile consumers see one shape everywhere.
    """

    __slots__ = ("enabled", "algorithm", "_acc")

    def __init__(self, algorithm: str) -> None:
        self.enabled = obs.enabled()
        self.algorithm = algorithm
        # rule_name -> [5 stat deltas, violations]
        self._acc: dict = {}

    def before(self, stats: MatchStatistics):
        if not self.enabled:
            return None
        return stats_snapshot(stats)

    def after(self, rule_name: str, before, stats: MatchStatistics) -> None:
        if before is None:
            return
        after = stats_snapshot(stats)
        cell = self._acc.setdefault(rule_name, [0, 0, 0, 0, 0, 0])
        for index in range(5):
            cell[index] += after[index] - before[index]

    def violation(self, rule_name: str, count: int = 1) -> None:
        if not self.enabled:
            return
        cell = self._acc.setdefault(rule_name, [0, 0, 0, 0, 0, 0])
        cell[5] += count

    def emit(self, trace_parent: Optional[obs.Span] = None) -> None:
        """Flush the accumulators to the registry (reusable after)."""
        if not self.enabled:
            return
        for rule_name, cell in self._acc.items():
            labels = {"rule": rule_name}
            obs.counter_inc("repro_detect_candidates_total", labels, cell[0])
            obs.counter_inc("repro_detect_matches_total", labels, cell[4])
            obs.counter_inc("repro_detect_violations_total", labels, cell[5])
            if trace_parent is not None:
                span = begin_rule_span(trace_parent, rule_name, self.algorithm)
                if span is not None:
                    span.set(
                        violations=cell[5],
                        **{field: cell[i] for i, field in enumerate(STAT_FIELDS)},
                    )
                    span.finish()
                    obs.recorder().record(span)
        self._acc.clear()
