"""Experiment harness: dataset builders, drivers for every figure, and table formatting."""

from repro.experiments.config import DATASET_BUILDERS, ExperimentConfig, build_dataset, experiment_scale
from repro.experiments.reporting import format_series, print_series, speedup_summary
from repro.experiments.runner import (
    ExperimentSeries,
    run_exp1_vary_delta,
    run_exp2_vary_graph_size,
    run_exp3_vary_diameter,
    run_exp3_vary_rules,
    run_exp4_vary_interval,
    run_exp4_vary_latency,
    run_exp4_vary_processors,
    run_compiled_eval,
    run_exp5_effectiveness,
    run_parallel_speedup,
    run_selftuning,
    run_storage_backend_comparison,
)

__all__ = [
    "DATASET_BUILDERS",
    "ExperimentConfig",
    "ExperimentSeries",
    "build_dataset",
    "experiment_scale",
    "format_series",
    "print_series",
    "run_exp1_vary_delta",
    "run_exp2_vary_graph_size",
    "run_exp3_vary_diameter",
    "run_exp3_vary_rules",
    "run_exp4_vary_interval",
    "run_exp4_vary_latency",
    "run_exp4_vary_processors",
    "run_compiled_eval",
    "run_exp5_effectiveness",
    "run_parallel_speedup",
    "run_selftuning",
    "run_storage_backend_comparison",
    "speedup_summary",
]
