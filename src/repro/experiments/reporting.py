"""Formatting of experiment results as the tables the paper's figures plot."""

from __future__ import annotations

from repro.experiments.runner import ExperimentSeries

__all__ = ["format_series", "print_series", "speedup_summary"]


def format_series(series: ExperimentSeries, precision: int = 1) -> str:
    """Render an :class:`ExperimentSeries` as a fixed-width text table."""
    algorithms = series.algorithms()
    header = [series.x_label] + algorithms
    rows: list[list[str]] = []
    for x, row in series.values.items():
        rendered = [str(x)]
        for algorithm in algorithms:
            value = row.get(algorithm)
            rendered.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(rendered)
    widths = [max(len(str(cell)) for cell in column) for column in zip(header, *rows)]
    lines = [series.title]
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def print_series(series: ExperimentSeries, precision: int = 1) -> None:
    """Print the table to stdout (what the benchmark files do)."""
    print()
    print(format_series(series, precision))


def speedup_summary(series: ExperimentSeries, baseline: str, algorithm: str) -> str:
    """Summarise the speedup of ``algorithm`` over ``baseline`` across the sweep."""
    ratios = series.speedup(baseline, algorithm)
    if not ratios:
        return f"no common points for {algorithm} vs {baseline}"
    values = list(ratios.values())
    return (
        f"{algorithm} vs {baseline}: min {min(values):.2f}x, "
        f"max {max(values):.2f}x, mean {sum(values) / len(values):.2f}x"
    )
