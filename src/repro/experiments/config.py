"""Experiment configuration and scaling.

The paper's experiments run on graphs of up to 80M nodes on a 20-machine
cluster; this reproduction defaults to laptop-sized analogues that finish in
seconds.  The environment variable ``REPRO_SCALE`` multiplies every dataset
size (e.g. ``REPRO_SCALE=4`` makes each benchmark graph four times larger),
so the same harness can be pushed as far as the host allows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.datasets.kb import dbpedia_like, pokec_like, yago_like
from repro.datasets.synthetic import synthetic_graph
from repro.errors import ExperimentError
from repro.graph.graph import Graph

__all__ = ["experiment_scale", "ExperimentConfig", "build_dataset", "DATASET_BUILDERS"]


def experiment_scale(default: float = 1.0) -> float:
    """Return the global experiment scale factor (``REPRO_SCALE``, default 1.0)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ExperimentError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ExperimentError("REPRO_SCALE must be positive")
    return value


def _synthetic_default(scale: float = 1.0, seed: int = 0) -> Graph:
    return synthetic_graph(
        num_nodes=int(3000 * scale),
        num_edges=int(3600 * scale),
        structured_fraction=0.7,
        seed=seed,
        name="Synthetic",
    )


#: Dataset name → builder accepting (scale, seed); names follow the paper.
DATASET_BUILDERS = {
    "DBpedia": lambda scale=1.0, seed=11: dbpedia_like(scale=scale, seed=seed),
    "YAGO2": lambda scale=1.0, seed=13: yago_like(scale=scale, seed=seed),
    "Pokec": lambda scale=1.0, seed=17: pokec_like(scale=scale, seed=seed),
    "Synthetic": _synthetic_default,
}


def build_dataset(name: str, scale: float | None = None, seed: int | None = None) -> Graph:
    """Build one of the four evaluation graphs by its paper name."""
    if name not in DATASET_BUILDERS:
        raise ExperimentError(f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}")
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    return DATASET_BUILDERS[name](scale=scale if scale is not None else experiment_scale(), **kwargs)


@dataclass
class ExperimentConfig:
    """Shared defaults of the experiment drivers (Section 7's fixed parameters)."""

    rules_count: int = 40
    max_diameter: int = 5
    processors: int = 8
    latency: float = 60.0
    interval: float = 45.0
    delta_fraction: float = 0.15
    insert_ratio: float = 0.5
    seed: int = 0
    scale: float = field(default_factory=experiment_scale)

    def scaled(self, **overrides: object) -> "ExperimentConfig":
        """Return a copy with selected fields overridden."""
        data = self.__dict__ | overrides
        return ExperimentConfig(**data)  # type: ignore[arg-type]
