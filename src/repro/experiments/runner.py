"""Experiment drivers: one function per figure of the paper's evaluation.

Every driver returns an :class:`ExperimentSeries` — a mapping from the swept
parameter (x-axis) to per-algorithm costs (y-axis) — and is completely
deterministic given its configuration.  The benchmark files under
``benchmarks/`` call these drivers and print the resulting tables; the same
drivers power ``examples/parallel_scaling.py`` and the EXPERIMENTS.md record.

Cost is the simulated/operation-count measure described in
``repro.detect.base``; it replaces the cluster wall-clock of the paper while
preserving the comparisons the figures make (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.builtin_rules import effectiveness_rules, example_rules
from repro.core.ngd import RuleSet
from repro.core.validation import find_violations
from repro.datasets.rules import benchmark_rules, rules_with_diameter
from repro.datasets.synthetic import synthetic_graph
from repro.detect import (
    BalancingPolicy,
    DetectionOptions,
    Detector,
    p_dect,
    pinc_dect,
)
from repro.experiments.config import ExperimentConfig, build_dataset
from repro.graph.graph import Graph
from repro.graph.neighborhood import update_neighborhood
from repro.graph.updates import BatchUpdate, UpdateGenerator, apply_update

__all__ = [
    "ExperimentSeries",
    "run_exp1_vary_delta",
    "run_exp2_vary_graph_size",
    "run_exp3_vary_rules",
    "run_exp3_vary_diameter",
    "run_exp4_vary_processors",
    "run_exp4_vary_latency",
    "run_exp4_vary_interval",
    "run_exp5_effectiveness",
    "run_compiled_eval",
    "run_parallel_speedup",
    "run_selftuning",
    "run_storage_backend_comparison",
]


@dataclass
class ExperimentSeries:
    """Result of one experiment: ``values[x][algorithm] = cost`` plus metadata."""

    title: str
    x_label: str
    values: dict[object, dict[str, float]] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    def algorithms(self) -> list[str]:
        """Return the algorithm names present, in first-seen order."""
        seen: list[str] = []
        for row in self.values.values():
            for name in row:
                if name not in seen:
                    seen.append(name)
        return seen

    def series(self, algorithm: str) -> list[tuple[object, float]]:
        """Return the (x, cost) points of one algorithm."""
        return [(x, row[algorithm]) for x, row in self.values.items() if algorithm in row]

    def speedup(self, baseline: str, algorithm: str) -> dict[object, float]:
        """Return baseline-cost / algorithm-cost per x value (>1 means faster than baseline)."""
        result = {}
        for x, row in self.values.items():
            if baseline in row and algorithm in row and row[algorithm] > 0:
                result[x] = row[baseline] / row[algorithm]
        return result


def _prepare(
    config: ExperimentConfig,
    dataset: str,
    delta_fraction: Optional[float] = None,
    rules: Optional[RuleSet] = None,
) -> tuple[Graph, RuleSet, BatchUpdate, Graph]:
    """Build the graph, rule set, batch update and updated graph for a run."""
    graph = build_dataset(dataset, scale=config.scale, seed=config.seed + 1)
    rule_set = rules if rules is not None else benchmark_rules(
        graph, count=config.rules_count, max_diameter=config.max_diameter, seed=config.seed
    )
    fraction = config.delta_fraction if delta_fraction is None else delta_fraction
    generator = UpdateGenerator(seed=config.seed + 7)
    delta = generator.generate(
        graph, size=max(1, int(graph.edge_count() * fraction)), insert_ratio=config.insert_ratio
    )
    updated = apply_update(graph, delta)
    return graph, rule_set, delta, updated


def _incremental_variants(config: ExperimentConfig) -> dict[str, BalancingPolicy]:
    return {
        "PIncDect": BalancingPolicy.hybrid(config.latency, config.interval),
        "PIncDect_ns": BalancingPolicy.no_splitting(config.latency, config.interval),
        "PIncDect_nb": BalancingPolicy.no_rebalancing(config.latency, config.interval),
        "PIncDect_NO": BalancingPolicy.none(config.latency, config.interval),
    }


def _cost_row(
    graph: Graph,
    rule_set: RuleSet,
    wanted: Iterable[str],
    config: ExperimentConfig,
    delta: Optional[BatchUpdate] = None,
    updated: Optional[Graph] = None,
    policies: Optional[dict[str, BalancingPolicy]] = None,
) -> dict[str, float]:
    """Compute one row of an experiment series through ``Detector`` sessions.

    ``wanted`` selects the algorithms; the incremental ones run only when a
    ``delta`` is supplied.  ``policies`` maps extra PIncDect variant names
    (``PIncDect_ns`` …) to their balancing policies.
    """
    wanted = set(wanted)
    row: dict[str, float] = {}
    if "Dect" in wanted:
        row["Dect"] = Detector(rule_set, engine="batch").run(graph).cost
    if "PDect" in wanted:
        row["PDect"] = (
            Detector(rule_set, engine="parallel", processors=config.processors).run(graph).cost
        )
    if delta is not None:
        if "IncDect" in wanted:
            row["IncDect"] = (
                Detector(rule_set, engine="incremental")
                .run_incremental(graph, delta, graph_after=updated)
                .cost
            )
        variants = policies if policies is not None else {"PIncDect": None}
        for name, policy in variants.items():
            if name not in wanted:
                continue
            detector = Detector(
                rule_set,
                engine="parallel",
                processors=config.processors,
                options=DetectionOptions(policy=policy),
            )
            row[name] = detector.run_incremental(graph, delta, graph_after=updated).cost
    return row


def run_exp1_vary_delta(
    dataset: str,
    delta_fractions: Iterable[float] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35),
    config: Optional[ExperimentConfig] = None,
    algorithms: Iterable[str] = ("Dect", "IncDect", "PDect", "PIncDect", "PIncDect_NO"),
) -> ExperimentSeries:
    """Exp-1 / Figures 4(a)–(d): incremental vs batch detection while |ΔG| grows."""
    config = config or ExperimentConfig()
    wanted = list(algorithms)
    series = ExperimentSeries(
        title=f"Exp-1 ({dataset}): varying |ΔG|", x_label="|ΔG| / |G|", metadata={"dataset": dataset}
    )
    graph = build_dataset(dataset, scale=config.scale, seed=config.seed + 1)
    rule_set = benchmark_rules(graph, count=config.rules_count, max_diameter=config.max_diameter, seed=config.seed)
    variants = _incremental_variants(config)

    # batch detection is insensitive to |ΔG|: compute its costs once
    batch_row = _cost_row(graph, rule_set, set(wanted) & {"Dect", "PDect"}, config)

    for fraction in delta_fractions:
        generator = UpdateGenerator(seed=config.seed + 7)
        delta = generator.generate(
            graph, size=max(1, int(graph.edge_count() * fraction)), insert_ratio=config.insert_ratio
        )
        updated = apply_update(graph, delta)
        row = dict(batch_row)
        row.update(
            _cost_row(
                graph,
                rule_set,
                set(wanted) - {"Dect", "PDect"},
                config,
                delta=delta,
                updated=updated,
                policies=variants,
            )
        )
        series.values[fraction] = row
    return series


def run_exp2_vary_graph_size(
    sizes: Iterable[tuple[int, int]] = ((1000, 2000), (2000, 4000), (3000, 6000), (6000, 8000), (8000, 10000)),
    config: Optional[ExperimentConfig] = None,
    algorithms: Iterable[str] = ("Dect", "IncDect", "PDect", "PIncDect"),
) -> ExperimentSeries:
    """Exp-2 / Figure 4(e): scalability with |G| on synthetic graphs (|ΔG| fixed at 15%)."""
    config = config or ExperimentConfig()
    wanted = list(algorithms)
    series = ExperimentSeries(title="Exp-2 (Synthetic): varying |G|", x_label="(|V|, |E|)")
    for num_nodes, num_edges in sizes:
        graph = synthetic_graph(
            num_nodes=int(num_nodes * config.scale),
            num_edges=int(num_edges * config.scale),
            seed=config.seed + 1,
            name=f"Synthetic({num_nodes},{num_edges})",
        )
        rule_set = benchmark_rules(graph, count=config.rules_count, max_diameter=config.max_diameter, seed=config.seed)
        generator = UpdateGenerator(seed=config.seed + 7)
        delta = generator.generate(
            graph, size=max(1, int(graph.edge_count() * config.delta_fraction)), insert_ratio=config.insert_ratio
        )
        updated = apply_update(graph, delta)
        series.values[(num_nodes, num_edges)] = _cost_row(
            graph, rule_set, wanted, config, delta=delta, updated=updated
        )
    return series


def run_exp3_vary_rules(
    dataset: str,
    rule_counts: Iterable[int] = (50, 60, 70, 80, 90, 100),
    config: Optional[ExperimentConfig] = None,
    algorithms: Iterable[str] = ("Dect", "IncDect", "PDect", "PIncDect"),
) -> ExperimentSeries:
    """Exp-3 / Figures 4(f)–(g): impact of ‖Σ‖ (|ΔG| fixed at 15%)."""
    config = config or ExperimentConfig()
    wanted = list(algorithms)
    series = ExperimentSeries(
        title=f"Exp-3 ({dataset}): varying ‖Σ‖", x_label="‖Σ‖", metadata={"dataset": dataset}
    )
    graph, full_rules, delta, updated = _prepare(
        config.scaled(rules_count=max(rule_counts)), dataset
    )
    for count in rule_counts:
        rule_set = full_rules.restrict(count)
        series.values[count] = _cost_row(
            graph, rule_set, wanted, config, delta=delta, updated=updated
        )
    return series


def run_exp3_vary_diameter(
    dataset: str = "DBpedia",
    diameters: Iterable[int] = (2, 3, 4, 5, 6),
    config: Optional[ExperimentConfig] = None,
    algorithms: Iterable[str] = ("Dect", "IncDect", "PDect", "PIncDect"),
) -> ExperimentSeries:
    """Exp-3 / Figure 4(h): impact of the rule-set diameter dΣ."""
    config = config or ExperimentConfig()
    wanted = list(algorithms)
    series = ExperimentSeries(
        title=f"Exp-3 ({dataset}): varying dΣ", x_label="dΣ", metadata={"dataset": dataset}
    )
    graph = build_dataset(dataset, scale=config.scale, seed=config.seed + 1)
    generator = UpdateGenerator(seed=config.seed + 7)
    delta = generator.generate(
        graph, size=max(1, int(graph.edge_count() * config.delta_fraction)), insert_ratio=config.insert_ratio
    )
    updated = apply_update(graph, delta)
    for diameter in diameters:
        rule_set = rules_with_diameter(graph, diameter, count=config.rules_count, seed=config.seed)
        series.values[diameter] = _cost_row(
            graph, rule_set, wanted, config, delta=delta, updated=updated
        )
    return series


def run_exp4_vary_processors(
    dataset: str,
    processor_counts: Iterable[int] = (4, 8, 12, 16, 20),
    config: Optional[ExperimentConfig] = None,
    algorithms: Iterable[str] = ("PDect", "PIncDect", "PIncDect_ns", "PIncDect_nb", "PIncDect_NO"),
) -> ExperimentSeries:
    """Exp-4 / Figures 4(i)–(l): parallel scalability with the number of processors."""
    config = config or ExperimentConfig()
    wanted = list(algorithms)
    series = ExperimentSeries(
        title=f"Exp-4 ({dataset}): varying p", x_label="p", metadata={"dataset": dataset}
    )
    graph, rule_set, delta, updated = _prepare(config, dataset)
    for processors in processor_counts:
        row: dict[str, float] = {}
        if "PDect" in wanted:
            row["PDect"] = p_dect(graph, rule_set, processors=processors).cost
        for name, policy in _incremental_variants(config).items():
            if name in wanted:
                row[name] = pinc_dect(
                    graph, rule_set, delta, processors=processors, policy=policy, graph_after=updated
                ).cost
        series.values[processors] = row
    return series


def run_exp4_vary_latency(
    dataset: str = "Pokec",
    latencies: Iterable[float] = (20, 40, 60, 80, 100),
    config: Optional[ExperimentConfig] = None,
) -> ExperimentSeries:
    """Exp-4 / Figure 4(m): sensitivity to the communication-latency parameter C."""
    config = config or ExperimentConfig()
    series = ExperimentSeries(
        title=f"Exp-4 ({dataset}): varying C", x_label="C", metadata={"dataset": dataset}
    )
    graph, rule_set, delta, updated = _prepare(config, dataset)
    for latency in latencies:
        row = {
            "PIncDect": pinc_dect(
                graph,
                rule_set,
                delta,
                processors=config.processors,
                policy=BalancingPolicy.hybrid(latency, config.interval),
                graph_after=updated,
            ).cost,
            "PIncDect_nb": pinc_dect(
                graph,
                rule_set,
                delta,
                processors=config.processors,
                policy=BalancingPolicy.no_rebalancing(latency, config.interval),
                graph_after=updated,
            ).cost,
        }
        series.values[latency] = row
    return series


def run_exp4_vary_interval(
    dataset: str = "YAGO2",
    intervals: Iterable[float] = (15, 30, 45, 50, 65),
    config: Optional[ExperimentConfig] = None,
) -> ExperimentSeries:
    """Exp-4 / Figure 4(n): sensitivity to the workload-monitoring interval intvl."""
    config = config or ExperimentConfig()
    series = ExperimentSeries(
        title=f"Exp-4 ({dataset}): varying intvl", x_label="intvl", metadata={"dataset": dataset}
    )
    graph, rule_set, delta, updated = _prepare(config, dataset)
    for interval in intervals:
        row = {
            "PIncDect": pinc_dect(
                graph,
                rule_set,
                delta,
                processors=config.processors,
                policy=BalancingPolicy.hybrid(config.latency, interval),
                graph_after=updated,
            ).cost,
            "PIncDect_ns": pinc_dect(
                graph,
                rule_set,
                delta,
                processors=config.processors,
                policy=BalancingPolicy.no_splitting(config.latency, interval),
                graph_after=updated,
            ).cost,
        }
        series.values[interval] = row
    return series


def run_exp5_effectiveness(config: Optional[ExperimentConfig] = None) -> ExperimentSeries:
    """Exp-5: how many errors the example / effectiveness NGDs catch on each graph.

    The paper reports 415 / 212 / 568 errors on DBpedia / YAGO2 / Pokec, 92%
    of which need NGD (not GFD) expressiveness; here the planted error rates
    of the synthetic analogues determine the counts, and the split between
    "numeric" (needs arithmetic/comparison) and "GFD-expressible" violations
    is reported alongside.
    """
    config = config or ExperimentConfig()
    series = ExperimentSeries(title="Exp-5: effectiveness of NGDs", x_label="dataset")
    from repro.datasets.figure1 import figure1_graphs

    figure_rules = example_rules()
    for name, graph in figure1_graphs().items():
        found = find_violations(graph, figure_rules)
        series.values[f"Figure1-{name}"] = {"violations": float(len(found))}

    for dataset in ("DBpedia", "YAGO2", "Pokec"):
        graph = build_dataset(dataset, scale=config.scale, seed=config.seed + 1)
        rule_set = benchmark_rules(graph, count=config.rules_count, max_diameter=config.max_diameter, seed=config.seed)
        found = find_violations(graph, rule_set)
        numeric_rules = {rule.name for rule in rule_set if not rule.is_gfd()}
        numeric_violations = sum(1 for violation in found if violation.rule in numeric_rules)
        series.values[dataset] = {
            "violations": float(len(found)),
            "numeric_only": float(numeric_violations),
            "numeric_share": (numeric_violations / len(found)) if len(found) else 0.0,
        }
    return series


def _expansion_kernel(graph: Graph, edge_labels: list[str]) -> int:
    """Drive the matcher's label-filtered expansion primitive over the graph.

    For every node and every pattern edge label, fetch the label-matching
    successors and predecessors and enumerate them — exactly the adjacency
    access pattern of ``HomomorphismMatcher._candidates_for`` when a
    neighbour of the next variable is already matched, stripped of the
    backend-neutral matcher bookkeeping that would otherwise dilute the
    storage-layer difference.
    """
    touched = 0
    successors_by_label = graph.successors_by_label
    predecessors_by_label = graph.predecessors_by_label
    for node_id in graph.node_ids():
        for label in edge_labels:
            for _ in successors_by_label(node_id, label):
                touched += 1
            for _ in predecessors_by_label(node_id, label):
                touched += 1
    return touched


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_storage_backend_comparison(
    sizes: Iterable[tuple[int, int]] = ((1000, 2000), (3000, 6000), (8000, 10000)),
    backends: Iterable[str] = ("dict", "indexed"),
    config: Optional[ExperimentConfig] = None,
    repeats: int = 3,
) -> ExperimentSeries:
    """Compare graph storage backends on the matcher and neighbourhood hot paths.

    Unlike the other drivers this one measures *wall-clock seconds*: the
    deterministic work-unit cost model charges both backends identically by
    construction (they execute the same algorithm on the same data), so only
    real time can expose the difference between the reference ``DictStore``
    (flat adjacency, copy-on-read, O(degree) label filtering) and the
    optimized ``IndexedStore`` (label-keyed adjacency, zero-copy views).

    For each synthetic exp2 graph size the driver builds byte-identical
    graphs on every backend and times

    * ``expand`` — the label-filtered matcher-expansion kernel
      (:func:`_expansion_kernel`): the pure storage access pattern of
      candidate filtering, where the adjacency layout difference shows
      undiluted;
    * ``match`` — full batch detection (``find_violations``), which also
      spends most of its time in backend-neutral literal evaluation and
      matcher bookkeeping;
    * ``nbhd`` — ``G_d(ΔG)`` extraction for a 15% batch update, dominated
      by BFS adjacency reads and induced-subgraph construction.

    Each measurement is the best of ``repeats`` runs.  The driver also
    asserts the backends agree on the violation set — a drifting backend
    would silently invalidate every benchmark above — and records per-size
    speedups in ``series.metadata["speedups"]``.
    """
    config = config or ExperimentConfig()
    backends = list(backends)
    series = ExperimentSeries(
        title="Storage backends: matcher expansion & neighbourhood extraction (seconds)",
        x_label="(|V|, |E|)",
        metadata={"backends": backends, "repeats": repeats},
    )
    speedups: dict[object, dict[str, float]] = {}
    for num_nodes, num_edges in sizes:
        row: dict[str, float] = {}
        violation_sets = {}
        for backend in backends:
            graph = synthetic_graph(
                num_nodes=int(num_nodes * config.scale),
                num_edges=int(num_edges * config.scale),
                seed=config.seed + 1,
                name=f"Synthetic({num_nodes},{num_edges})",
                store=backend,
            )
            rule_set = benchmark_rules(
                graph, count=config.rules_count, max_diameter=config.max_diameter, seed=config.seed
            )
            pattern_edge_labels = sorted(
                {edge.label for rule in rule_set for edge in rule.pattern.edges()}
            )
            generator = UpdateGenerator(seed=config.seed + 7)
            delta = generator.generate(
                graph,
                size=max(1, int(graph.edge_count() * config.delta_fraction)),
                insert_ratio=config.insert_ratio,
            )

            row[f"expand[{backend}]"] = _best_of(
                repeats, lambda: _expansion_kernel(graph, pattern_edge_labels)
            )
            found: list = []

            def timed_match(graph=graph, rule_set=rule_set, found=found):
                found[:] = find_violations(graph, rule_set)

            row[f"match[{backend}]"] = _best_of(repeats, timed_match)
            violation_sets[backend] = frozenset(found)
            row[f"nbhd[{backend}]"] = _best_of(
                repeats, lambda: update_neighborhood(graph, delta, hops=config.max_diameter)
            )

        first = violation_sets[backends[0]]
        for backend, found in violation_sets.items():
            if found != first:
                raise AssertionError(
                    f"storage backends disagree on violations at size {(num_nodes, num_edges)}: "
                    f"{backends[0]} vs {backend}"
                )

        size_key = (num_nodes, num_edges)
        series.values[size_key] = row
        if "dict" in backends and "indexed" in backends:
            speedups[size_key] = {
                metric: row[f"{metric}[dict]"] / row[f"{metric}[indexed]"]
                if row[f"{metric}[indexed]"]
                else float("inf")
                for metric in ("expand", "match", "nbhd")
            }
    series.metadata["speedups"] = speedups
    return series


def run_parallel_speedup(
    processors: int = 4,
    entities: int = 4000,
    rules_count: int = 36,
    repeats: int = 2,
    seed: int = 8,
) -> dict:
    """Measure wall-clock speedup of ``execution="processes"`` over serial Dect.

    The first *measured* (rather than simulated) performance number of the
    reproduction: a skewed Exp-4-style knowledge-graph workload (hub
    entities concentrate adjacency, so rule subtrees are uneven) is
    detected serially, on the simulated cluster (the deterministic
    cost-model oracle — reported for the record), and on the real
    multi-process backend at 1 and ``processors`` workers.  Violation sets
    are asserted byte-identical across all four runs; the wall-clock
    numbers are environment-dependent by design.

    Returns a JSON-ready report (``benchmarks/BENCH_parallel.json`` keeps
    the committed baseline).
    """
    import json as _json
    import os
    import platform

    from repro.datasets.kb import KBConfig, knowledge_graph

    config = KBConfig(
        name="kb-speedup",
        num_entities=entities,
        num_entity_types=6,
        num_value_relations=5,
        num_link_relations=4,
        values_per_entity=3,
        links_per_entity=3.0,
        error_rate=0.05,
        seed=seed,
        hub_link_fraction=0.5,
        num_hubs=4,
    )
    graph = knowledge_graph(config)
    rule_set = benchmark_rules(graph, count=rules_count, max_diameter=5, seed=2)

    serial_detector = Detector(rule_set, engine="batch")
    serial_time = _best_of(repeats, lambda: serial_detector.run(graph))
    serial = serial_detector.last_result

    simulated = Detector(rule_set, engine="parallel", processors=processors).run(graph)

    process_times: dict[int, float] = {}
    process_results: dict[int, object] = {}
    for workers in sorted({1, processors}):
        detector = Detector(
            rule_set,
            engine="parallel",
            processors=workers,
            options=DetectionOptions(execution="processes"),
        )
        process_times[workers] = _best_of(repeats, lambda d=detector: d.run(graph))
        process_results[workers] = detector.last_result

    reference = serial.violations.to_json()
    for label, result in (("simulated", simulated), *(
        (f"processes[{w}]", r) for w, r in process_results.items()
    )):
        if result.violations.to_json() != reference:
            raise AssertionError(f"{label} violations differ from serial Dect")

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    speedup = serial_time / process_times[processors] if process_times[processors] else 0.0
    report = {
        "workload": {
            "entities": entities,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "rules": len(rule_set),
            "violations": len(serial.violations),
        },
        "machine": {"cpus": cpus, "platform": platform.platform()},
        "processors": processors,
        "serial_wall_seconds": round(serial_time, 4),
        "process_wall_seconds": {str(w): round(t, 4) for w, t in process_times.items()},
        "speedup_vs_serial": round(speedup, 3),
        "simulated_makespan": simulated.cost,
        "byte_identical_violations": True,
    }
    baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
    if baseline:
        with open(baseline, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _correlated_hub_graph(roots: int, wide: int, narrow: int, survivor_stride: int) -> Graph:
    """A workload the static planner misjudges: every root fans out to
    ``wide`` ``b``-nodes (edge ``e2``) of which only one in
    ``survivor_stride`` satisfies the premise literal, and to ``narrow``
    ``a``-nodes (edge ``e1``) that all survive.  Statistics order the
    cheap-looking ``a`` step first; the observed cardinalities say the
    ``b`` step is the near-empty one and should run first."""
    graph = Graph("kb-selftuning")
    for index in range(roots):
        root = f"r{index}"
        graph.add_node(root, "root", {})
        for j in range(wide):
            node = f"b{index}_{j}"
            survives = (index * wide + j) % survivor_stride == 0
            graph.add_node(node, "b", {"val": 1 if survives else 0})
            graph.add_edge(root, node, "e2")
        for j in range(narrow):
            node = f"a{index}_{j}"
            graph.add_node(node, "a", {"val": j})
            graph.add_edge(root, node, "e1")
    return graph


def _selftuning_rules() -> RuleSet:
    from repro.core.ngd import NGD
    from repro.graph.pattern import Pattern

    pattern = Pattern.from_edges(
        "Qst",
        nodes=[("x", "root"), ("y", "a"), ("z", "b")],
        edges=[("x", "y", "e1"), ("x", "z", "e2")],
    )
    rule = NGD.from_text(pattern, premise="z.val = 1", conclusion="y.val < 0", name="st1")
    return RuleSet([rule], name="selftuning-rules")


def run_selftuning(
    roots: int = 120,
    wide: int = 20,
    narrow: int = 3,
    jobs: int = 4,
    processors: int = 2,
    entities: int = 600,
) -> dict:
    """Measure both halves of the self-tuning executor.

    **Adaptive replanning** runs serial Dect twice over a correlated-hub
    workload whose statistics mislead the static planner (see
    :func:`_correlated_hub_graph`): once with ``adaptive=False`` (the
    compiled order executes verbatim) and once with the default observe/
    replan loop.  Violation sets must be byte-identical; the ratio of
    ``total_operations()`` is the reported win.

    **Warm worker pools** runs the same detection request ``jobs`` times
    through the service path (:class:`~repro.service.jobs.SessionManager`
    with ``execution="processes"``, which runs jobs on pool threads and
    therefore spawns workers): once with a fresh manager per job (every
    job pays worker start-up + runtime loading — the cold regime this PR
    retires) and once through a single shared manager whose
    :class:`~repro.detect.parallel.WarmExecutorPool` keeps the crew alive
    (job 1 misses, jobs 2+ hit).  Violation records must match; per-job
    wall-clock means are reported.

    ``REPRO_WRITE_BENCH_BASELINE=path`` persists the report
    (``benchmarks/BENCH_selftuning.json`` keeps the committed baseline).
    """
    import json as _json
    import os
    import platform

    from repro.datasets.kb import KBConfig, knowledge_graph
    from repro.service.jobs import SessionManager
    from repro.service.protocol import DetectRequest
    from repro.service.registry import GraphRegistry

    # ------------------------------------------------- adaptive replanning
    graph = _correlated_hub_graph(roots, wide, narrow, survivor_stride=97)
    rules = _selftuning_rules()
    static_detector = Detector(rules, engine="batch", options=DetectionOptions(adaptive=False))
    static_result = static_detector.run(graph)
    adaptive_detector = Detector(rules, engine="batch", options=DetectionOptions(adaptive=True))
    adaptive_result = adaptive_detector.run(graph)
    if static_result.violations.to_json() != adaptive_result.violations.to_json():
        raise AssertionError("adaptive replanning changed the violation set")
    static_operations = static_result.stats.total_operations()
    adaptive_operations = adaptive_result.stats.total_operations()

    # ------------------------------------------------- warm worker pools
    config = KBConfig(
        name="kb-selftuning-service",
        num_entities=entities,
        num_entity_types=4,
        num_value_relations=4,
        num_link_relations=3,
        values_per_entity=3,
        links_per_entity=2.0,
        error_rate=0.08,
        seed=8,
        hub_link_fraction=0.4,
        num_hubs=2,
    )
    service_graph = knowledge_graph(config)
    service_rules = benchmark_rules(service_graph, count=8, max_diameter=4, seed=2)
    request = DetectRequest(
        catalog="selftuning", engine="auto", processors=processors, execution="processes"
    )

    def job(manager: SessionManager) -> tuple[float, list[dict]]:
        started = time.perf_counter()
        records = list(manager.stream_detection("kb", request))
        return time.perf_counter() - started, records

    def fresh_manager() -> SessionManager:
        registry = GraphRegistry()
        registry.register("kb", service_graph)
        return SessionManager(registry, catalogs={"selftuning": service_rules})

    cold_times: list[float] = []
    cold_records: list[dict] = []
    for _ in range(jobs):
        manager = fresh_manager()
        try:
            elapsed, records = job(manager)
        finally:
            manager.shutdown()
        cold_times.append(elapsed)
        cold_records = records

    warm_manager = fresh_manager()
    try:
        warm_times: list[float] = []
        warm_records: list[dict] = []
        for _ in range(jobs):
            elapsed, warm_records = job(warm_manager)
            warm_times.append(elapsed)
        pool_stats = warm_manager.executor_pool(processors).stats()
    finally:
        warm_manager.shutdown()

    def stream_violations(records: list[dict]) -> list[dict]:
        # completion order across worker processes is nondeterministic;
        # the *set* of violation records is what must agree
        return sorted(
            (record for record in records if record.get("type") == "violation"),
            key=lambda record: _json.dumps(record, sort_keys=True),
        )

    if stream_violations(cold_records) != stream_violations(warm_records):
        raise AssertionError("warm-pool job records differ from cold-pool records")

    cold_per_job = sum(cold_times) / len(cold_times)
    # job 1 loads the runtime (a miss by design); jobs 2+ are the steady state
    warm_steady = warm_times[1:] if len(warm_times) > 1 else warm_times
    warm_per_job = sum(warm_steady) / len(warm_steady)

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    report = {
        "adaptive": {
            "workload": {
                "roots": roots,
                "wide_fanout": wide,
                "narrow_fanout": narrow,
                "violations": len(static_result.violations),
            },
            "static_operations": static_operations,
            "adaptive_operations": adaptive_operations,
            "operations_ratio": round(static_operations / max(adaptive_operations, 1), 3),
            "byte_identical_violations": True,
        },
        "warm_pool": {
            "workload": {
                "entities": entities,
                "nodes": service_graph.node_count(),
                "edges": service_graph.edge_count(),
                "rules": len(service_rules),
                "violations": len(stream_violations(warm_records)),
            },
            "jobs": jobs,
            "processors": processors,
            "cold_seconds_per_job": round(cold_per_job, 4),
            "warm_seconds_per_job": round(warm_per_job, 4),
            "warm_speedup": round(cold_per_job / warm_per_job if warm_per_job else 0.0, 3),
            "pool": pool_stats,
            "identical_violation_records": True,
        },
        "machine": {"cpus": cpus, "platform": platform.platform()},
    }
    baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
    if baseline:
        with open(baseline, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _literal_heavy_graph(products: int, sellers: int, seed: int = 3) -> Graph:
    """A product/seller marketplace where literal evaluation dominates the
    search: every candidate pair pays five premise literals (two of them
    arithmetic) before the single arithmetic conclusion is tested."""
    import random as _random

    rng = _random.Random(seed)
    graph = Graph("compiled-eval")
    for index in range(products):
        graph.add_node(f"p{index}", "product", {"price": rng.randint(1, 400)})
    for index in range(sellers):
        graph.add_node(f"s{index}", "seller", {"rating": rng.randint(0, 5)})
    seen: set = set()
    for _ in range(products * 4):
        edge = (rng.randrange(products), rng.randrange(products))
        if edge[0] != edge[1] and edge not in seen:
            seen.add(edge)
            graph.add_edge(f"p{edge[0]}", f"p{edge[1]}", "variant")
    for _ in range(sellers * 30):
        edge = ("s", rng.randrange(sellers), rng.randrange(products))
        if edge not in seen:
            seen.add(edge)
            graph.add_edge(f"s{edge[1]}", f"p{edge[2]}", "sells")
    return graph


def _compiled_eval_rules() -> RuleSet:
    from repro.core.ngd import NGD
    from repro.expr.expressions import (
        AbsoluteValue,
        Add,
        Divide,
        Multiply,
        Subtract,
        const,
        var,
    )
    from repro.expr.literals import Comparison, Literal, LiteralSet
    from repro.graph.pattern import Pattern

    pattern = Pattern("Qce")
    pattern.add_node("x", "product")
    pattern.add_node("y", "product")
    pattern.add_node("z", "seller")
    pattern.add_edge("x", "y", "variant")
    pattern.add_edge("z", "x", "sells")
    premise = LiteralSet(
        [
            Literal(var("x", "price"), Comparison.GT, const(0)),
            Literal(var("y", "price"), Comparison.GT, const(0)),
            Literal(var("z", "rating"), Comparison.GE, const(1)),
            Literal(
                AbsoluteValue(Subtract(var("x", "price"), var("y", "price"))),
                Comparison.LE,
                const(400),
            ),
            Literal(
                Add(var("x", "price"), var("y", "price")), Comparison.LE, const(600)
            ),
        ]
    )
    conclusion = LiteralSet(
        [
            Literal(
                Multiply(var("x", "price"), const(4)),
                Comparison.GE,
                Add(var("y", "price"), Divide(var("z", "rating"), const(2))),
            )
        ]
    )
    rule = NGD(pattern, premise, conclusion, name="ce1")
    return RuleSet([rule], name="compiled-eval-rules")


def run_compiled_eval(products: int = 4000, sellers: int = 400, repeats: int = 3) -> dict:
    """Measure the closure-compiled literal schedules against the interpreted
    evaluator.

    One literal-heavy workload (:func:`_literal_heavy_graph` — five premise
    literals and an arithmetic conclusion per candidate pair) runs serial
    Dect twice: once with ``DetectionOptions(compiled=False)`` (the
    interpreted AST walk the compiled path replaces) and once with the
    default compiled schedules.  Each leg takes the best of ``repeats``
    runs to shed scheduler noise.  Violation sets and every
    ``MatchStatistics`` field must be byte-identical — the compiled path is
    a pure evaluation-strategy change — and the wall-clock ratio is the
    reported win.

    ``REPRO_WRITE_BENCH_BASELINE=path`` persists the report
    (``benchmarks/BENCH_compiled.json`` keeps the committed baseline).
    """
    import json as _json
    import os
    import platform

    graph = _literal_heavy_graph(products, sellers)
    rules = _compiled_eval_rules()

    def leg(compiled: bool) -> tuple[float, object]:
        best = None
        result = None
        for _ in range(max(repeats, 1)):
            detector = Detector(
                rules, engine="batch", options=DetectionOptions(compiled=compiled)
            )
            started = time.perf_counter()
            result = detector.run(graph)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, result

    compiled_time, compiled_result = leg(True)
    interpreted_time, interpreted_result = leg(False)
    if compiled_result.violations.to_json() != interpreted_result.violations.to_json():
        raise AssertionError("compiled evaluation changed the violation set")
    compiled_stats = compiled_result.stats
    interpreted_stats = interpreted_result.stats
    statistics_fields = (
        "candidates_examined",
        "expansions",
        "edge_checks",
        "literal_evaluations",
        "matches_emitted",
    )
    for field_name in statistics_fields:
        if getattr(compiled_stats, field_name) != getattr(interpreted_stats, field_name):
            raise AssertionError(
                f"compiled evaluation changed MatchStatistics.{field_name}"
            )

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    speedup = interpreted_time / compiled_time if compiled_time else 0.0
    report = {
        "workload": {
            "products": products,
            "sellers": sellers,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "rules": len(rules),
            "violations": len(compiled_result.violations),
            "literal_evaluations": compiled_stats.literal_evaluations,
        },
        "machine": {"cpus": cpus, "platform": platform.platform()},
        "repeats": repeats,
        "compiled_wall_seconds": round(compiled_time, 4),
        "interpreted_wall_seconds": round(interpreted_time, 4),
        "speedup_vs_interpreted": round(speedup, 3),
        "byte_identical_violations": True,
        "identical_statistics": True,
    }
    baseline = os.environ.get("REPRO_WRITE_BENCH_BASELINE")
    if baseline:
        with open(baseline, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report
