"""d-neighbourhoods and locality helpers.

Section 6.1 of the paper defines, for a node ``v`` of graph ``G``:

* ``V_d(v)`` — all nodes within ``d`` hops of ``v`` when ``G`` is treated as
  an undirected graph;
* ``G_d(v)`` — the subgraph of ``G`` induced by ``V_d(v)``, the
  *d-neighbour* of ``v``.

The cost of a *localizable* incremental algorithm is determined by the
dΣ-neighbours of the nodes touched by ΔG, where dΣ is the maximum pattern
diameter in Σ.  This module computes those neighbourhoods, both for single
nodes and for whole batch updates (``G_dΣ(ΔG)``, the union used in the cost
analyses), plus the candidate neighbourhood ``N_C`` extraction that PIncDect
replicates across processors.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.graph.graph import Graph
from repro.graph.updates import BatchUpdate

__all__ = [
    "nodes_within_hops",
    "multi_source_nodes_within_hops",
    "d_neighbor",
    "d_neighbor_of_nodes",
    "update_neighborhood",
    "undirected_distance",
    "average_component_diameter",
]


def multi_source_nodes_within_hops(
    graph: Graph, sources: Iterable[Hashable], hops: int
) -> frozenset[Hashable]:
    """Return the union of ``V_d(v)`` over all sources with a single multi-source BFS.

    Equivalent to unioning :func:`nodes_within_hops` per source but costs one
    pass over the graph, which is what the incremental algorithms are charged
    for identifying ``G_dΣ(ΔG)``.  Sources absent from the graph are ignored.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    seen: dict[Hashable, int] = {}
    frontier = deque()
    for source in sources:
        if graph.has_node(source) and source not in seen:
            seen[source] = 0
            frontier.append(source)
    while frontier:
        current = frontier.popleft()
        depth = seen[current]
        if depth >= hops:
            continue
        for neighbour in graph.neighbours(current):
            if neighbour not in seen:
                seen[neighbour] = depth + 1
                frontier.append(neighbour)
    return frozenset(seen)


def nodes_within_hops(graph: Graph, start: Hashable, hops: int) -> frozenset[Hashable]:
    """Return ``V_d(start)``: node ids within ``hops`` undirected hops of ``start``.

    ``start`` itself is always included (distance 0).  Nodes absent from the
    graph are treated as isolated: the result is empty.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    if not graph.has_node(start):
        return frozenset()
    seen: dict[Hashable, int] = {start: 0}
    frontier = deque([start])
    while frontier:
        current = frontier.popleft()
        depth = seen[current]
        if depth >= hops:
            continue
        for neighbour in graph.neighbours(current):
            if neighbour not in seen:
                seen[neighbour] = depth + 1
                frontier.append(neighbour)
    return frozenset(seen)


def d_neighbor(graph: Graph, node: Hashable, hops: int) -> Graph:
    """Return ``G_d(node)``: the subgraph induced by ``V_d(node)``."""
    return graph.induced_subgraph(nodes_within_hops(graph, node, hops), name=f"{graph.name}_d{hops}({node!r})")


def d_neighbor_of_nodes(graph: Graph, nodes: Iterable[Hashable], hops: int) -> Graph:
    """Return the subgraph induced by the union of ``V_d(v)`` for ``v`` in ``nodes``.

    Node ids missing from the graph are ignored (they may be endpoints of
    insertions that have not been applied yet).  The union is computed with a
    single multi-source BFS, and the induced subgraph is built from the
    adjacency of the reached nodes, so the whole extraction costs the size of
    the neighbourhood — never a scan of all of E.
    """
    union = multi_source_nodes_within_hops(graph, nodes, hops)
    return graph.induced_subgraph(union, name=f"{graph.name}_d{hops}(union)")


def update_neighborhood(graph: Graph, delta: BatchUpdate, hops: int) -> Graph:
    """Return ``G_d(ΔG)``: the induced subgraph around every node touched by ΔG.

    This is the region a localizable incremental algorithm is allowed to read;
    its size appears in the cost bound ``O(|Σ| · |G_dΣ(ΔG)|^|Σ|)`` of IncDect.
    The neighbourhood is computed on ``graph`` as given — callers decide
    whether that is ``G`` or ``G ⊕ ΔG⁺``.
    """
    return d_neighbor_of_nodes(graph, delta.touched_nodes(), hops)


def undirected_distance(graph: Graph, source: Hashable, target: Hashable) -> float:
    """Return ``dist(source, target)`` treating the graph as undirected.

    Returns ``inf`` when the nodes are in different components or absent.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return float("inf")
    if source == target:
        return 0.0
    seen = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbour in graph.neighbours(current):
            if neighbour in seen:
                continue
            seen[neighbour] = seen[current] + 1
            if neighbour == target:
                return float(seen[neighbour])
            frontier.append(neighbour)
    return float("inf")


def average_component_diameter(graph: Graph, sample_size: int = 32, seed: int = 0) -> float:
    """Estimate the average diameter of connected components (Section 7 statistic).

    Exact diameters are quadratic; for the synthetic dataset statistics we use
    the standard double-BFS estimate per component, sampling at most
    ``sample_size`` components (deterministic given ``seed``).
    """
    import random

    rng = random.Random(seed)
    unvisited = set(graph.node_ids())
    diameters: list[int] = []
    components: list[set[Hashable]] = []
    while unvisited:
        start = next(iter(unvisited))
        component = set(nodes_within_hops(graph, start, graph.node_count()))
        components.append(component)
        unvisited -= component
    if not components:
        return 0.0
    if len(components) > sample_size:
        components = rng.sample(components, sample_size)
    for component in components:
        start = next(iter(component))
        far, _ = _farthest(graph, start)
        _, depth = _farthest(graph, far)
        diameters.append(depth)
    return sum(diameters) / len(diameters)


def _farthest(graph: Graph, start: Hashable) -> tuple[Hashable, int]:
    """Return the node farthest from ``start`` (undirected BFS) and its distance."""
    seen = {start: 0}
    frontier = deque([start])
    best, best_depth = start, 0
    while frontier:
        current = frontier.popleft()
        for neighbour in graph.neighbours(current):
            if neighbour not in seen:
                seen[neighbour] = seen[current] + 1
                if seen[neighbour] > best_depth:
                    best, best_depth = neighbour, seen[neighbour]
                frontier.append(neighbour)
    return best, best_depth
