"""Property-graph substrate: graphs, patterns, updates, neighbourhoods, partitioning."""

from repro.graph.graph import WILDCARD, Edge, Graph, Node
from repro.graph.neighborhood import (
    d_neighbor,
    d_neighbor_of_nodes,
    nodes_within_hops,
    undirected_distance,
    update_neighborhood,
)
from repro.graph.partition import (
    Fragment,
    Fragmentation,
    bfs_edge_cut,
    greedy_vertex_cut,
    hash_edge_cut,
)
from repro.graph.pattern import Pattern, PatternEdge, PatternNode
from repro.graph.store import (
    STORE_REGISTRY,
    DictStore,
    GraphStore,
    IndexedStore,
    default_store_name,
    make_store,
)
from repro.graph.updates import (
    BatchUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodePayload,
    UpdateGenerator,
    apply_update,
)

# importing the durable engine registers "persistent" in STORE_REGISTRY so
# every store-selection surface (env var, Graph(store=...), --store) sees it
from repro.storage import persistent as _persistent  # noqa: E402,F401

__all__ = [
    "WILDCARD",
    "Edge",
    "Graph",
    "Node",
    "Pattern",
    "PatternEdge",
    "PatternNode",
    "BatchUpdate",
    "EdgeDeletion",
    "EdgeInsertion",
    "NodePayload",
    "UpdateGenerator",
    "apply_update",
    "d_neighbor",
    "d_neighbor_of_nodes",
    "nodes_within_hops",
    "undirected_distance",
    "update_neighborhood",
    "Fragment",
    "Fragmentation",
    "bfs_edge_cut",
    "greedy_vertex_cut",
    "hash_edge_cut",
    "STORE_REGISTRY",
    "DictStore",
    "GraphStore",
    "IndexedStore",
    "default_store_name",
    "make_store",
]
