"""Pluggable storage engines behind the :class:`~repro.graph.graph.Graph` facade.

The detection algorithms (``Matchn``, ``Dect``, ``IncDect`` and the simulated
parallel variants) bottom out in adjacency lookups, so the physical layout of
the adjacency indexes dominates the hot path.  This module separates that
layout from the graph *semantics*:

* :class:`GraphStore` — the storage contract: node/edge CRUD, label-filtered
  adjacency, the label and edge-signature indexes, and a deterministic
  insertion-order rank used by the matchers in place of ``sorted(key=repr)``;
* :class:`DictStore` — the reference engine, preserving the layout the
  project started with: one flat ``node -> {(neighbour, edge_label)}``
  adjacency map per direction, with reads returning defensive frozenset
  copies and label-filtered lookups scanning the whole adjacency list;
* :class:`IndexedStore` — the optimized engine: interned labels, adjacency
  keyed ``node -> edge_label -> neighbour ids`` so a label-filtered lookup is
  O(result) instead of O(degree), and zero-copy read views instead of
  per-call copies.

The facade owns all *semantic* checks (missing nodes, duplicate edges,
wildcard handling); stores may assume their preconditions hold.  Future
engines (CSR arrays, sharded or remote stores) drop in behind the same
contract — see ``docs/ARCHITECTURE.md``.

Stores are selected by name through :func:`make_store`; the process-wide
default comes from the ``REPRO_GRAPH_STORE`` environment variable and falls
back to ``"indexed"``.
"""

from __future__ import annotations

import os
import sys
from abc import ABC, abstractmethod
from array import array
from bisect import bisect_left
from collections.abc import Hashable, Iterator, Set as AbstractSet
from typing import Optional, Union

from repro.errors import GraphError
from repro.graph.model import Edge, Node

__all__ = [
    "GraphStore",
    "DictStore",
    "IndexedStore",
    "CsrStore",
    "STORE_REGISTRY",
    "default_store_name",
    "make_store",
]

EdgeKey = tuple[Hashable, Hashable, str]
Signature = tuple[str, str, str]

_EMPTY_DICT: dict = {}
#: Shared empty zero-copy view (a keys view over a dict nothing mutates).
_EMPTY_KEYS = _EMPTY_DICT.keys()


class _PairsView(AbstractSet):
    """Zero-copy view of ``(neighbour, edge_label)`` pairs over label-keyed adjacency.

    Backed by one node's ``{edge_label: {neighbour: None}}`` mapping of the
    :class:`IndexedStore`; the pair count is tracked by the store's degree
    counters and injected so ``len`` stays O(1).
    """

    __slots__ = ("_buckets", "_degrees", "_node_id")

    def __init__(self, buckets: dict, degrees: dict, node_id: Hashable) -> None:
        self._buckets = buckets
        self._degrees = degrees
        self._node_id = node_id

    def __contains__(self, item: object) -> bool:
        if not isinstance(item, tuple) or len(item) != 2:
            return False
        neighbour, label = item
        return neighbour in self._buckets.get(label, _EMPTY_DICT)

    def __iter__(self) -> Iterator[tuple[Hashable, str]]:
        for label, neighbours in self._buckets.items():
            for neighbour in neighbours:
                yield (neighbour, label)

    def __len__(self) -> int:
        return self._degrees.get(self._node_id, 0)

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        return frozenset(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PairsView({set(self)!r})"


class GraphStore(ABC):
    """Storage contract shared by every graph backend.

    Mutators may assume the facade already enforced the semantic
    preconditions: endpoints of ``add_edge`` exist, ``remove_node`` is called
    only after incident edges are gone, keys passed to ``remove_edge`` are
    present.  Read methods return *read-only* collections; whether they are
    zero-copy views or defensive copies is up to the backend.
    """

    #: Registry name of the backend (e.g. ``"dict"``, ``"indexed"``).
    backend: str = "abstract"

    #: False for frozen engines (:class:`CsrStore`): mutation raises once the
    #: compact layout is built.  The parity suites use this to scope the
    #: interleaved-mutation tests to engines that support them.
    supports_mutation: bool = True

    def fresh(self) -> "GraphStore":
        """Return a new, empty store of the same backend."""
        return type(self)()

    # ------------------------------------------------------------------ nodes

    @abstractmethod
    def add_node(self, node: Node) -> None:
        """Store a new node (id known to be absent) and assign its rank."""

    @abstractmethod
    def replace_node(self, node: Node) -> None:
        """Replace the stored node with the same id (label unchanged)."""

    @abstractmethod
    def remove_node(self, node_id: Hashable) -> None:
        """Forget a node with no remaining incident edges."""

    @abstractmethod
    def get_node(self, node_id: Hashable) -> Optional[Node]:
        """Return the node or None."""

    @abstractmethod
    def has_node(self, node_id: Hashable) -> bool:
        """Return True when the id is stored."""

    @abstractmethod
    def node_count(self) -> int:
        """Return |V|."""

    @abstractmethod
    def nodes(self) -> Iterator[Node]:
        """Iterate nodes in insertion order."""

    @abstractmethod
    def node_ids(self) -> Iterator[Hashable]:
        """Iterate node ids in insertion order."""

    @abstractmethod
    def all_node_ids(self):
        """Return a read-only set-like collection of every node id."""

    @abstractmethod
    def node_rank(self, node_id: Hashable) -> int:
        """Return the node's deterministic insertion-order rank.

        Ranks are assigned monotonically when nodes are added and never
        reused, so ``sorted(ids, key=store.node_rank)`` reproduces insertion
        order with an O(1) key — the matcher's replacement for the old
        ``sorted(key=repr)`` determinism hack.
        """

    @abstractmethod
    def nodes_with_label(self, label: str):
        """Return a read-only set-like collection of ids carrying ``label``."""

    @abstractmethod
    def labels(self) -> frozenset[str]:
        """Return the node labels present."""

    # ------------------------------------------------------------------ edges

    @abstractmethod
    def add_edge(self, edge: Edge) -> None:
        """Store a new edge (key known to be absent, endpoints present)."""

    @abstractmethod
    def remove_edge(self, key: EdgeKey) -> None:
        """Forget a stored edge."""

    @abstractmethod
    def get_edge(self, key: EdgeKey) -> Optional[Edge]:
        """Return the edge or None."""

    @abstractmethod
    def has_edge_key(self, key: EdgeKey) -> bool:
        """Return True when the exact (source, target, label) edge is stored."""

    @abstractmethod
    def has_any_edge(self, source: Hashable, target: Hashable) -> bool:
        """Return True when any edge source -> target exists, whatever its label."""

    @abstractmethod
    def edge_count(self) -> int:
        """Return |E|."""

    @abstractmethod
    def edges(self) -> Iterator[Edge]:
        """Iterate edges in insertion order."""

    @abstractmethod
    def edge_labels(self) -> frozenset[str]:
        """Return the edge labels present."""

    @abstractmethod
    def edges_with_exact_signature(self, signature: Signature) -> list[Edge]:
        """Return edges matching a fully-specified (src label, edge label, dst label)."""

    @abstractmethod
    def signature_items(self) -> Iterator[tuple[Signature, list[Edge]]]:
        """Iterate the signature index (for wildcard queries in the facade)."""

    # -------------------------------------------------------------- adjacency

    @abstractmethod
    def successors(self, node_id: Hashable):
        """Return read-only ``(target, edge_label)`` pairs leaving the node."""

    @abstractmethod
    def predecessors(self, node_id: Hashable):
        """Return read-only ``(source, edge_label)`` pairs entering the node."""

    @abstractmethod
    def successors_by_label(self, node_id: Hashable, edge_label: str):
        """Return read-only target ids reachable over ``edge_label`` edges."""

    @abstractmethod
    def predecessors_by_label(self, node_id: Hashable, edge_label: str):
        """Return read-only source ids reaching the node over ``edge_label`` edges."""

    @abstractmethod
    def out_edge_labels(self, node_id: Hashable):
        """Return the read-only set of edge labels leaving the node."""

    @abstractmethod
    def in_edge_labels(self, node_id: Hashable):
        """Return the read-only set of edge labels entering the node."""

    @abstractmethod
    def out_degree(self, node_id: Hashable) -> int:
        """Return the number of outgoing edges."""

    @abstractmethod
    def in_degree(self, node_id: Hashable) -> int:
        """Return the number of incoming edges."""

    def neighbour_ids(self, node_id: Hashable) -> frozenset[Hashable]:
        """Return ids adjacent to the node, ignoring direction and labels.

        The BFS primitive of the neighbourhood extraction; backends override
        it with layouts that avoid materializing ``(neighbour, label)`` pairs.
        """
        ids = {nbr for nbr, _ in self.successors(node_id)}
        ids.update(nbr for nbr, _ in self.predecessors(node_id))
        return frozenset(ids)

    def edges_between(self, wanted: AbstractSet) -> Iterator[Edge]:
        """Yield every stored edge with both endpoints in ``wanted``.

        Walks the adjacency of the wanted nodes (O(sum of their degrees))
        instead of scanning all of E; nodes are visited in rank order so the
        emission order is deterministic.
        """
        ordered = sorted(wanted, key=self.node_rank)
        for node_id in ordered:
            for target, label in self.successors(node_id):
                if target in wanted:
                    edge = self.get_edge((node_id, target, label))
                    if edge is not None:
                        yield edge

    # ------------------------------------------------------------- lifecycle

    @abstractmethod
    def clone(self) -> "GraphStore":
        """Return a deep, independent copy of this store (bulk fast path)."""

    @abstractmethod
    def validate(self) -> None:
        """Check internal index consistency; raise :class:`GraphError` on corruption."""


class DictStore(GraphStore):
    """The reference engine: flat adjacency maps with copy-on-read semantics.

    This preserves the behaviour (and cost profile) of the original in-Graph
    layout: adjacency is one flat ``{(neighbour, edge_label)}`` collection per
    node and direction, every read returns a defensive ``frozenset`` copy,
    and label-filtered lookups scan and filter the whole adjacency list.  It
    exists as the easy-to-audit baseline the parity suite and the storage
    benchmarks compare :class:`IndexedStore` against.

    (The flat collections are insertion-ordered dicts used as sets, so edge
    iteration stays deterministic across interpreter runs; the keying and the
    read costs are unchanged from the original implementation.)
    """

    backend = "dict"

    def __init__(self) -> None:
        self._nodes: dict[Hashable, Node] = {}
        self._rank: dict[Hashable, int] = {}
        self._next_rank = 0
        self._edges: dict[EdgeKey, Edge] = {}
        # adjacency: node id -> ordered set of (neighbour id, edge label)
        self._out: dict[Hashable, dict[tuple[Hashable, str], None]] = {}
        self._in: dict[Hashable, dict[tuple[Hashable, str], None]] = {}
        self._label_index: dict[str, dict[Hashable, None]] = {}
        self._signatures: dict[Signature, dict[EdgeKey, None]] = {}

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        self._nodes[node.id] = node
        self._rank[node.id] = self._next_rank
        self._next_rank += 1
        self._out[node.id] = {}
        self._in[node.id] = {}
        self._label_index.setdefault(node.label, {})[node.id] = None

    def replace_node(self, node: Node) -> None:
        self._nodes[node.id] = node

    def remove_node(self, node_id: Hashable) -> None:
        node = self._nodes.pop(node_id)
        del self._rank[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        bucket = self._label_index.get(node.label)
        if bucket is not None:
            bucket.pop(node_id, None)
            if not bucket:
                del self._label_index[node.label]

    def get_node(self, node_id: Hashable) -> Optional[Node]:
        return self._nodes.get(node_id)

    def has_node(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def node_count(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[Hashable]:
        return iter(self._nodes.keys())

    def all_node_ids(self) -> frozenset[Hashable]:
        return frozenset(self._nodes.keys())

    def node_rank(self, node_id: Hashable) -> int:
        return self._rank[node_id]

    def nodes_with_label(self, label: str) -> frozenset[Hashable]:
        return frozenset(self._label_index.get(label, _EMPTY_DICT))

    def labels(self) -> frozenset[str]:
        return frozenset(self._label_index.keys())

    # ------------------------------------------------------------------ edges

    def add_edge(self, edge: Edge) -> None:
        key = edge.key()
        self._edges[key] = edge
        self._out[edge.source][(edge.target, edge.label)] = None
        self._in[edge.target][(edge.source, edge.label)] = None
        signature = (self._nodes[edge.source].label, edge.label, self._nodes[edge.target].label)
        self._signatures.setdefault(signature, {})[key] = None

    def remove_edge(self, key: EdgeKey) -> None:
        source, target, label = key
        del self._edges[key]
        self._out[source].pop((target, label), None)
        self._in[target].pop((source, label), None)
        signature = (self._nodes[source].label, label, self._nodes[target].label)
        bucket = self._signatures.get(signature)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._signatures[signature]

    def get_edge(self, key: EdgeKey) -> Optional[Edge]:
        return self._edges.get(key)

    def has_edge_key(self, key: EdgeKey) -> bool:
        return key in self._edges

    def has_any_edge(self, source: Hashable, target: Hashable) -> bool:
        return any(nbr == target for nbr, _ in self._out.get(source, _EMPTY_DICT))

    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def edge_labels(self) -> frozenset[str]:
        return frozenset(edge.label for edge in self._edges.values())

    def edges_with_exact_signature(self, signature: Signature) -> list[Edge]:
        keys = self._signatures.get(signature, _EMPTY_DICT)
        return [self._edges[key] for key in keys]

    def signature_items(self) -> Iterator[tuple[Signature, list[Edge]]]:
        for signature, keys in self._signatures.items():
            yield signature, [self._edges[key] for key in keys]

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable) -> frozenset[tuple[Hashable, str]]:
        return frozenset(self._out[node_id])

    def predecessors(self, node_id: Hashable) -> frozenset[tuple[Hashable, str]]:
        return frozenset(self._in[node_id])

    def successors_by_label(self, node_id: Hashable, edge_label: str) -> frozenset[Hashable]:
        return frozenset(nbr for nbr, label in self._out[node_id] if label == edge_label)

    def predecessors_by_label(self, node_id: Hashable, edge_label: str) -> frozenset[Hashable]:
        return frozenset(nbr for nbr, label in self._in[node_id] if label == edge_label)

    def out_edge_labels(self, node_id: Hashable) -> frozenset[str]:
        return frozenset(label for _, label in self._out[node_id])

    def in_edge_labels(self, node_id: Hashable) -> frozenset[str]:
        return frozenset(label for _, label in self._in[node_id])

    def out_degree(self, node_id: Hashable) -> int:
        return len(self._out[node_id])

    def in_degree(self, node_id: Hashable) -> int:
        return len(self._in[node_id])

    def neighbour_ids(self, node_id: Hashable) -> frozenset[Hashable]:
        ids = {nbr for nbr, _ in self._out[node_id]}
        ids.update(nbr for nbr, _ in self._in[node_id])
        return frozenset(ids)

    def edges_between(self, wanted: AbstractSet) -> Iterator[Edge]:
        # walk the insertion-ordered adjacency dicts directly: the inherited
        # default would iterate the frozenset copies successors() returns,
        # whose order is hash-dependent
        edges = self._edges
        for node_id in sorted(wanted, key=self._rank.__getitem__):
            for target, label in self._out[node_id]:
                if target in wanted:
                    yield edges[(node_id, target, label)]

    # ------------------------------------------------------------- lifecycle

    def clone(self) -> "DictStore":
        other = DictStore()
        other._nodes = dict(self._nodes)
        other._rank = dict(self._rank)
        other._next_rank = self._next_rank
        other._edges = dict(self._edges)
        other._out = {node: dict(pairs) for node, pairs in self._out.items()}
        other._in = {node: dict(pairs) for node, pairs in self._in.items()}
        other._label_index = {label: dict(ids) for label, ids in self._label_index.items()}
        if self._signatures is not None:
            other._signatures = {sig: dict(keys) for sig, keys in self._signatures.items()}
        return other

    def validate(self) -> None:
        for (source, target, label), edge in self._edges.items():
            if source not in self._nodes or target not in self._nodes:
                raise GraphError(f"edge {edge!r} references a missing node")
            if (target, label) not in self._out.get(source, _EMPTY_DICT):
                raise GraphError(f"out-adjacency missing for {edge!r}")
            if (source, label) not in self._in.get(target, _EMPTY_DICT):
                raise GraphError(f"in-adjacency missing for {edge!r}")
        for label, ids in self._label_index.items():
            for node_id in ids:
                node = self._nodes.get(node_id)
                if node is None or node.label != label:
                    raise GraphError(f"label index corrupt for label {label!r}, node {node_id!r}")
        for node_id in self._nodes:
            if node_id not in self._rank:
                raise GraphError(f"missing insertion rank for node {node_id!r}")


class IndexedStore(GraphStore):
    """The optimized engine: label-keyed adjacency with zero-copy read views.

    * node and edge labels are interned (:func:`sys.intern`), so index probes
      compare by pointer on the hot path;
    * adjacency is ``node -> edge_label -> {neighbour: None}``, making
      ``successors_by_label`` O(result) instead of O(degree) — the lookup the
      matcher's candidate filtering performs per expansion step;
    * every read returns a live zero-copy view (a dict keys view, or
      :class:`_PairsView` for ``(neighbour, label)`` pairs) instead of a
      defensive frozenset copy;
    * degree counters keep ``len(successors(v))`` and the PIncDect cost model's
      ``|v.adj|`` O(1).

    All inner collections are insertion-ordered dicts, so iteration order —
    and therefore match enumeration order — is deterministic across runs
    regardless of string-hash randomization.
    """

    backend = "indexed"

    def __init__(self) -> None:
        self._nodes: dict[Hashable, Node] = {}
        self._rank: dict[Hashable, int] = {}
        self._next_rank = 0
        self._edges: dict[EdgeKey, Edge] = {}
        # adjacency: node id -> edge label -> ordered set of neighbour ids
        self._out: dict[Hashable, dict[str, dict[Hashable, None]]] = {}
        self._in: dict[Hashable, dict[str, dict[Hashable, None]]] = {}
        self._out_degree: dict[Hashable, int] = {}
        self._in_degree: dict[Hashable, int] = {}
        self._label_index: dict[str, dict[Hashable, None]] = {}
        # The signature index is built lazily on the first signature query
        # (None = not built) and maintained incrementally afterwards; batch
        # loads and subgraph extractions that never ask for signatures skip
        # its maintenance cost entirely.  Node labels never change after
        # insertion (replace_node only swaps attributes), so deferring the
        # build is safe.
        self._signatures: Optional[dict[Signature, dict[EdgeKey, None]]] = None

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        label = sys.intern(node.label)
        if label is not node.label:
            node = Node(node.id, label, node.attributes)
        node_id = node.id
        self._nodes[node_id] = node
        self._rank[node_id] = self._next_rank
        self._next_rank += 1
        self._out[node_id] = {}
        self._in[node_id] = {}
        self._out_degree[node_id] = 0
        self._in_degree[node_id] = 0
        bucket = self._label_index.get(label)
        if bucket is None:
            self._label_index[label] = bucket = {}
        bucket[node_id] = None

    def replace_node(self, node: Node) -> None:
        self._nodes[node.id] = node

    def remove_node(self, node_id: Hashable) -> None:
        node = self._nodes.pop(node_id)
        del self._rank[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        self._out_degree.pop(node_id, None)
        self._in_degree.pop(node_id, None)
        bucket = self._label_index.get(node.label)
        if bucket is not None:
            bucket.pop(node_id, None)
            if not bucket:
                del self._label_index[node.label]

    def get_node(self, node_id: Hashable) -> Optional[Node]:
        return self._nodes.get(node_id)

    def has_node(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def node_count(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[Hashable]:
        return iter(self._nodes.keys())

    def all_node_ids(self):
        return self._nodes.keys()

    def node_rank(self, node_id: Hashable) -> int:
        return self._rank[node_id]

    def nodes_with_label(self, label: str):
        bucket = self._label_index.get(label)
        return bucket.keys() if bucket is not None else _EMPTY_KEYS

    def labels(self) -> frozenset[str]:
        return frozenset(self._label_index.keys())

    # ------------------------------------------------------------------ edges

    def add_edge(self, edge: Edge) -> None:
        label = sys.intern(edge.label)
        if label is not edge.label:
            edge = Edge(edge.source, edge.target, label)
        source, target = edge.source, edge.target
        key = (source, target, label)
        self._edges[key] = edge
        out_buckets = self._out[source]
        bucket = out_buckets.get(label)
        if bucket is None:
            out_buckets[label] = bucket = {}
        bucket[target] = None
        in_buckets = self._in[target]
        bucket = in_buckets.get(label)
        if bucket is None:
            in_buckets[label] = bucket = {}
        bucket[source] = None
        self._out_degree[source] += 1
        self._in_degree[target] += 1
        if self._signatures is not None:
            signature = (self._nodes[source].label, label, self._nodes[target].label)
            sig_bucket = self._signatures.get(signature)
            if sig_bucket is None:
                self._signatures[signature] = sig_bucket = {}
            sig_bucket[key] = None

    def remove_edge(self, key: EdgeKey) -> None:
        source, target, label = key
        del self._edges[key]
        out_bucket = self._out[source].get(label)
        if out_bucket is not None:
            out_bucket.pop(target, None)
            if not out_bucket:
                del self._out[source][label]
        in_bucket = self._in[target].get(label)
        if in_bucket is not None:
            in_bucket.pop(source, None)
            if not in_bucket:
                del self._in[target][label]
        self._out_degree[source] -= 1
        self._in_degree[target] -= 1
        if self._signatures is not None:
            signature = (self._nodes[source].label, label, self._nodes[target].label)
            sig_bucket = self._signatures.get(signature)
            if sig_bucket is not None:
                sig_bucket.pop(key, None)
                if not sig_bucket:
                    del self._signatures[signature]

    def get_edge(self, key: EdgeKey) -> Optional[Edge]:
        return self._edges.get(key)

    def has_edge_key(self, key: EdgeKey) -> bool:
        return key in self._edges

    def has_any_edge(self, source: Hashable, target: Hashable) -> bool:
        buckets = self._out.get(source, _EMPTY_DICT)
        return any(target in neighbours for neighbours in buckets.values())

    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def edge_labels(self) -> frozenset[str]:
        labels: set[str] = set()
        for buckets in self._out.values():
            labels.update(buckets)
        return frozenset(labels)

    def _built_signatures(self) -> dict[Signature, dict[EdgeKey, None]]:
        """Build the signature index on first use (one O(|E|) pass)."""
        if self._signatures is None:
            nodes = self._nodes
            signatures: dict[Signature, dict[EdgeKey, None]] = {}
            for key, edge in self._edges.items():
                signature = (nodes[edge.source].label, edge.label, nodes[edge.target].label)
                bucket = signatures.get(signature)
                if bucket is None:
                    signatures[signature] = bucket = {}
                bucket[key] = None
            self._signatures = signatures
        return self._signatures

    def edges_with_exact_signature(self, signature: Signature) -> list[Edge]:
        keys = self._built_signatures().get(signature, _EMPTY_DICT)
        return [self._edges[key] for key in keys]

    def signature_items(self) -> Iterator[tuple[Signature, list[Edge]]]:
        for signature, keys in self._built_signatures().items():
            yield signature, [self._edges[key] for key in keys]

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable) -> _PairsView:
        return _PairsView(self._out[node_id], self._out_degree, node_id)

    def predecessors(self, node_id: Hashable) -> _PairsView:
        return _PairsView(self._in[node_id], self._in_degree, node_id)

    def successors_by_label(self, node_id: Hashable, edge_label: str):
        bucket = self._out[node_id].get(edge_label)
        return bucket.keys() if bucket is not None else _EMPTY_KEYS

    def predecessors_by_label(self, node_id: Hashable, edge_label: str):
        bucket = self._in[node_id].get(edge_label)
        return bucket.keys() if bucket is not None else _EMPTY_KEYS

    def out_edge_labels(self, node_id: Hashable):
        return self._out[node_id].keys()

    def in_edge_labels(self, node_id: Hashable):
        return self._in[node_id].keys()

    def out_degree(self, node_id: Hashable) -> int:
        return self._out_degree[node_id]

    def in_degree(self, node_id: Hashable) -> int:
        return self._in_degree[node_id]

    def neighbour_ids(self, node_id: Hashable) -> frozenset[Hashable]:
        ids: set[Hashable] = set()
        for bucket in self._out[node_id].values():
            ids.update(bucket)
        for bucket in self._in[node_id].values():
            ids.update(bucket)
        return frozenset(ids)

    def edges_between(self, wanted: AbstractSet) -> Iterator[Edge]:
        edges = self._edges
        for node_id in sorted(wanted, key=self._rank.__getitem__):
            for label, bucket in self._out[node_id].items():
                for target in bucket:
                    if target in wanted:
                        yield edges[(node_id, target, label)]

    # ------------------------------------------------------------- lifecycle

    def clone(self) -> "IndexedStore":
        other = IndexedStore()
        other._nodes = dict(self._nodes)
        other._rank = dict(self._rank)
        other._next_rank = self._next_rank
        other._edges = dict(self._edges)
        other._out = {
            node: {label: dict(nbrs) for label, nbrs in buckets.items()}
            for node, buckets in self._out.items()
        }
        other._in = {
            node: {label: dict(nbrs) for label, nbrs in buckets.items()}
            for node, buckets in self._in.items()
        }
        other._out_degree = dict(self._out_degree)
        other._in_degree = dict(self._in_degree)
        other._label_index = {label: dict(ids) for label, ids in self._label_index.items()}
        if self._signatures is not None:
            other._signatures = {sig: dict(keys) for sig, keys in self._signatures.items()}
        return other

    def validate(self) -> None:
        for (source, target, label), edge in self._edges.items():
            if source not in self._nodes or target not in self._nodes:
                raise GraphError(f"edge {edge!r} references a missing node")
            if target not in self._out.get(source, _EMPTY_DICT).get(label, _EMPTY_DICT):
                raise GraphError(f"out-adjacency missing for {edge!r}")
            if source not in self._in.get(target, _EMPTY_DICT).get(label, _EMPTY_DICT):
                raise GraphError(f"in-adjacency missing for {edge!r}")
        if self._signatures is not None:
            total = sum(len(keys) for keys in self._signatures.values())
            if total != len(self._edges):
                raise GraphError("signature index drifted from the edge set")
            for signature, keys in self._signatures.items():
                for key in keys:
                    if key not in self._edges:
                        raise GraphError(f"signature index holds stale edge {key!r}")
        for label, ids in self._label_index.items():
            for node_id in ids:
                node = self._nodes.get(node_id)
                if node is None or node.label != label:
                    raise GraphError(f"label index corrupt for label {label!r}, node {node_id!r}")
        for node_id in self._nodes:
            if node_id not in self._rank:
                raise GraphError(f"missing insertion rank for node {node_id!r}")
            out_total = sum(len(bucket) for bucket in self._out[node_id].values())
            in_total = sum(len(bucket) for bucket in self._in[node_id].values())
            if out_total != self._out_degree[node_id]:
                raise GraphError(f"out-degree counter drifted for node {node_id!r}")
            if in_total != self._in_degree[node_id]:
                raise GraphError(f"in-degree counter drifted for node {node_id!r}")


class _CsrNeighboursView(AbstractSet):
    """Zero-copy view of the neighbour ids behind one (node, label) CSR slice.

    Backed by a contiguous ``array('q')`` slice of neighbour *ranks* sorted
    ascending, so ``len`` is O(1), iteration is a sequential array walk (the
    cache-friendly scan the backend exists for), and membership is a binary
    search.
    """

    __slots__ = ("_ranks", "_start", "_stop", "_ids", "_index")

    def __init__(self, ranks: array, start: int, stop: int, ids: list, index: dict) -> None:
        self._ranks = ranks
        self._start = start
        self._stop = stop
        self._ids = ids
        self._index = index

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[Hashable]:
        ids = self._ids
        ranks = self._ranks
        for position in range(self._start, self._stop):
            yield ids[ranks[position]]

    def __contains__(self, item: object) -> bool:
        rank = self._index.get(item)
        if rank is None:
            return False
        position = bisect_left(self._ranks, rank, self._start, self._stop)
        return position < self._stop and self._ranks[position] == rank

    def rank_slice(self) -> tuple[array, int, int, list]:
        """Expose ``(ranks, start, stop, ids)`` for sorted-rank intersection.

        ``ranks[start:stop]`` is this view's ascending neighbour-rank slice
        and ``ids[rank]`` resolves a rank back to a node id — what the
        compiled anchored strategy merges instead of hash-probing
        (:func:`repro.matching.compiled.csr_sorted_intersection`).
        """
        return self._ranks, self._start, self._stop, self._ids

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        return frozenset(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CsrNeighboursView({set(self)!r})"


class _CsrPairsView(AbstractSet):
    """Zero-copy ``(neighbour, edge_label)`` pairs over one node's CSR slices."""

    __slots__ = ("_slices", "_ranks", "_ids", "_index", "_degree")

    def __init__(self, slices: dict, ranks: array, ids: list, index: dict, degree: int) -> None:
        self._slices = slices
        self._ranks = ranks
        self._ids = ids
        self._index = index
        self._degree = degree

    def __len__(self) -> int:
        return self._degree

    def __iter__(self) -> Iterator[tuple[Hashable, str]]:
        ids = self._ids
        ranks = self._ranks
        for label, (start, stop) in self._slices.items():
            for position in range(start, stop):
                yield (ids[ranks[position]], label)

    def __contains__(self, item: object) -> bool:
        if not isinstance(item, tuple) or len(item) != 2:
            return False
        neighbour, label = item
        bounds = self._slices.get(label)
        if bounds is None:
            return False
        rank = self._index.get(neighbour)
        if rank is None:
            return False
        start, stop = bounds
        position = bisect_left(self._ranks, rank, start, stop)
        return position < stop and self._ranks[position] == rank

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        return frozenset(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CsrPairsView({set(self)!r})"


class CsrStore(GraphStore):
    """A frozen compressed-sparse-row engine for cache-friendly batch detection.

    The build protocol is append-only: load nodes and edges (``Graph.
    with_backend("csr")``, ``graph/io.load_graph(store="csr")``, or any bulk
    build that only adds), then the first adjacency read *freezes* the store —
    one pass over E compacts the adjacency into flat ``array('q')`` rank
    arrays:

    * per node and direction, a ``{edge_label: (start, stop)}`` slice table
      into one shared neighbour-rank array, neighbours sorted by rank inside
      each slice — ``successors_by_label`` is an O(1) table probe returning a
      zero-copy array-slice view, membership a binary search, iteration a
      sequential array walk;
    * node ranks are dense (0..|V|-1 in insertion order, no removals can
      have happened), so ranks double as array indexes.

    After the freeze every mutator raises :class:`GraphError`; removals are
    refused even while building (they would break rank density).  ``clone()``
    of a frozen store returns the store itself — it is immutable, so sharing
    is safe and free, which is exactly what the planner's repeated batch
    passes want.  To modify a CSR graph, rebuild it on a mutable engine
    (``graph.with_backend("indexed")``).
    """

    backend = "csr"
    supports_mutation = False

    def __init__(self) -> None:
        self._nodes: dict[Hashable, Node] = {}
        self._rank: dict[Hashable, int] = {}
        self._edges: dict[EdgeKey, Edge] = {}
        self._label_index: dict[str, dict[Hashable, None]] = {}
        self._frozen = False
        # built by _freeze():
        self._ids: list[Hashable] = []
        self._out_ranks: array = array("q")
        self._in_ranks: array = array("q")
        self._out_slices: list[dict[str, tuple[int, int]]] = []
        self._in_slices: list[dict[str, tuple[int, int]]] = []
        self._out_degree: array = array("q")
        self._in_degree: array = array("q")
        # the signature index is lazy, exactly as on IndexedStore
        self._signatures: Optional[dict[Signature, dict[EdgeKey, None]]] = None

    # ------------------------------------------------------------- freezing

    def _refuse_mutation(self, operation: str) -> None:
        raise GraphError(
            f"csr store is frozen: {operation} is not supported (rebuild the "
            "graph on a mutable backend, e.g. graph.with_backend('indexed'))"
        )

    def _freeze(self) -> None:
        """Compact the adjacency into CSR arrays (first adjacency read)."""
        if self._frozen:
            return
        ids = list(self._nodes.keys())
        rank = self._rank
        n = len(ids)
        out_groups: list[dict[str, list[int]]] = [{} for _ in range(n)]
        in_groups: list[dict[str, list[int]]] = [{} for _ in range(n)]
        for edge in self._edges.values():
            source_rank = rank[edge.source]
            target_rank = rank[edge.target]
            out_groups[source_rank].setdefault(edge.label, []).append(target_rank)
            in_groups[target_rank].setdefault(edge.label, []).append(source_rank)
        for groups, ranks, slices, degrees in (
            (out_groups, self._out_ranks, self._out_slices, self._out_degree),
            (in_groups, self._in_ranks, self._in_slices, self._in_degree),
        ):
            for node_rank in range(n):
                table: dict[str, tuple[int, int]] = {}
                degree = 0
                for label, neighbour_ranks in groups[node_rank].items():
                    neighbour_ranks.sort()
                    start = len(ranks)
                    ranks.extend(neighbour_ranks)
                    table[label] = (start, len(ranks))
                    degree += len(neighbour_ranks)
                slices.append(table)
                degrees.append(degree)
        self._ids = ids
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """Return True once the CSR arrays have been built."""
        return self._frozen

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        if self._frozen:
            self._refuse_mutation("add_node")
        label = sys.intern(node.label)
        if label is not node.label:
            node = Node(node.id, label, node.attributes)
        self._nodes[node.id] = node
        self._rank[node.id] = len(self._rank)
        bucket = self._label_index.get(label)
        if bucket is None:
            self._label_index[label] = bucket = {}
        bucket[node.id] = None

    def replace_node(self, node: Node) -> None:
        if self._frozen:
            self._refuse_mutation("replace_node")
        self._nodes[node.id] = node

    def remove_node(self, node_id: Hashable) -> None:
        self._refuse_mutation("remove_node")

    def get_node(self, node_id: Hashable) -> Optional[Node]:
        return self._nodes.get(node_id)

    def has_node(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def node_count(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[Hashable]:
        return iter(self._nodes.keys())

    def all_node_ids(self):
        return self._nodes.keys()

    def node_rank(self, node_id: Hashable) -> int:
        return self._rank[node_id]

    def nodes_with_label(self, label: str):
        bucket = self._label_index.get(label)
        return bucket.keys() if bucket is not None else _EMPTY_KEYS

    def labels(self) -> frozenset[str]:
        return frozenset(self._label_index.keys())

    # ------------------------------------------------------------------ edges

    def add_edge(self, edge: Edge) -> None:
        if self._frozen:
            self._refuse_mutation("add_edge")
        label = sys.intern(edge.label)
        if label is not edge.label:
            edge = Edge(edge.source, edge.target, label)
        self._edges[(edge.source, edge.target, label)] = edge

    def remove_edge(self, key: EdgeKey) -> None:
        self._refuse_mutation("remove_edge")

    def get_edge(self, key: EdgeKey) -> Optional[Edge]:
        return self._edges.get(key)

    def has_edge_key(self, key: EdgeKey) -> bool:
        return key in self._edges

    def has_any_edge(self, source: Hashable, target: Hashable) -> bool:
        if not self._frozen:
            return any(
                edge_source == source and edge_target == target
                for edge_source, edge_target, _ in self._edges
            )
        source_rank = self._rank.get(source)
        target_rank = self._rank.get(target)
        if source_rank is None or target_rank is None:
            return False
        ranks = self._out_ranks
        for start, stop in self._out_slices[source_rank].values():
            position = bisect_left(ranks, target_rank, start, stop)
            if position < stop and ranks[position] == target_rank:
                return True
        return False

    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def edge_labels(self) -> frozenset[str]:
        return frozenset(edge.label for edge in self._edges.values())

    def _built_signatures(self) -> dict[Signature, dict[EdgeKey, None]]:
        if self._signatures is None:
            nodes = self._nodes
            signatures: dict[Signature, dict[EdgeKey, None]] = {}
            for key, edge in self._edges.items():
                signature = (nodes[edge.source].label, edge.label, nodes[edge.target].label)
                bucket = signatures.get(signature)
                if bucket is None:
                    signatures[signature] = bucket = {}
                bucket[key] = None
            self._signatures = signatures
        return self._signatures

    def edges_with_exact_signature(self, signature: Signature) -> list[Edge]:
        keys = self._built_signatures().get(signature, _EMPTY_DICT)
        return [self._edges[key] for key in keys]

    def signature_items(self) -> Iterator[tuple[Signature, list[Edge]]]:
        for signature, keys in self._built_signatures().items():
            yield signature, [self._edges[key] for key in keys]

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable) -> _CsrPairsView:
        self._freeze()
        rank = self._rank[node_id]
        return _CsrPairsView(
            self._out_slices[rank], self._out_ranks, self._ids, self._rank, self._out_degree[rank]
        )

    def predecessors(self, node_id: Hashable) -> _CsrPairsView:
        self._freeze()
        rank = self._rank[node_id]
        return _CsrPairsView(
            self._in_slices[rank], self._in_ranks, self._ids, self._rank, self._in_degree[rank]
        )

    def successors_by_label(self, node_id: Hashable, edge_label: str):
        self._freeze()
        bounds = self._out_slices[self._rank[node_id]].get(edge_label)
        if bounds is None:
            return _EMPTY_KEYS
        return _CsrNeighboursView(self._out_ranks, bounds[0], bounds[1], self._ids, self._rank)

    def predecessors_by_label(self, node_id: Hashable, edge_label: str):
        self._freeze()
        bounds = self._in_slices[self._rank[node_id]].get(edge_label)
        if bounds is None:
            return _EMPTY_KEYS
        return _CsrNeighboursView(self._in_ranks, bounds[0], bounds[1], self._ids, self._rank)

    def out_edge_labels(self, node_id: Hashable):
        self._freeze()
        return self._out_slices[self._rank[node_id]].keys()

    def in_edge_labels(self, node_id: Hashable):
        self._freeze()
        return self._in_slices[self._rank[node_id]].keys()

    def out_degree(self, node_id: Hashable) -> int:
        self._freeze()
        return self._out_degree[self._rank[node_id]]

    def in_degree(self, node_id: Hashable) -> int:
        self._freeze()
        return self._in_degree[self._rank[node_id]]

    def neighbour_ids(self, node_id: Hashable) -> frozenset[Hashable]:
        self._freeze()
        rank = self._rank[node_id]
        ids = self._ids
        collected: set[Hashable] = set()
        for ranks, slices in (
            (self._out_ranks, self._out_slices[rank]),
            (self._in_ranks, self._in_slices[rank]),
        ):
            for start, stop in slices.values():
                for position in range(start, stop):
                    collected.add(ids[ranks[position]])
        return frozenset(collected)

    def edges_between(self, wanted: AbstractSet) -> Iterator[Edge]:
        self._freeze()
        edges = self._edges
        ids = self._ids
        ranks = self._out_ranks
        for node_id in sorted(wanted, key=self._rank.__getitem__):
            for label, (start, stop) in self._out_slices[self._rank[node_id]].items():
                for position in range(start, stop):
                    target = ids[ranks[position]]
                    if target in wanted:
                        yield edges[(node_id, target, label)]

    # ------------------------------------------------------------- lifecycle

    def clone(self) -> "CsrStore":
        if self._frozen:
            # a frozen store is immutable: sharing it is safe and free
            return self
        other = CsrStore()
        other._nodes = dict(self._nodes)
        other._rank = dict(self._rank)
        other._edges = dict(self._edges)
        other._label_index = {label: dict(ids) for label, ids in self._label_index.items()}
        return other

    def validate(self) -> None:
        self._freeze()
        for (source, target, label), edge in self._edges.items():
            if source not in self._nodes or target not in self._nodes:
                raise GraphError(f"edge {edge!r} references a missing node")
            bounds = self._out_slices[self._rank[source]].get(label)
            if bounds is None or target not in _CsrNeighboursView(
                self._out_ranks, bounds[0], bounds[1], self._ids, self._rank
            ):
                raise GraphError(f"out-CSR slice missing for {edge!r}")
            bounds = self._in_slices[self._rank[target]].get(label)
            if bounds is None or source not in _CsrNeighboursView(
                self._in_ranks, bounds[0], bounds[1], self._ids, self._rank
            ):
                raise GraphError(f"in-CSR slice missing for {edge!r}")
        if len(self._out_ranks) != len(self._edges) or len(self._in_ranks) != len(self._edges):
            raise GraphError("CSR arrays drifted from the edge set")
        for label, ids in self._label_index.items():
            for node_id in ids:
                node = self._nodes.get(node_id)
                if node is None or node.label != label:
                    raise GraphError(f"label index corrupt for label {label!r}, node {node_id!r}")
        for position, node_id in enumerate(self._ids):
            if self._rank[node_id] != position:
                raise GraphError(f"rank table corrupt for node {node_id!r}")


#: Name -> backend class; future engines (sharded, remote) register here.
STORE_REGISTRY: dict[str, type[GraphStore]] = {
    DictStore.backend: DictStore,
    IndexedStore.backend: IndexedStore,
    CsrStore.backend: CsrStore,
}


def default_store_name() -> str:
    """Return the process-default backend name.

    Reads ``REPRO_GRAPH_STORE`` (so benchmarks and CI can flip backends
    without code changes) and falls back to ``"indexed"``.
    """
    return os.environ.get("REPRO_GRAPH_STORE", IndexedStore.backend)


def make_store(spec: Union[str, GraphStore, None] = None) -> GraphStore:
    """Resolve a backend spec into a store instance.

    ``spec`` may be a store instance (used as-is), a registry name, or None
    (the process default).  Unknown names raise :class:`GraphError` listing
    the registered backends.
    """
    if isinstance(spec, GraphStore):
        return spec
    name = spec if spec is not None else default_store_name()
    try:
        factory = STORE_REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown graph store {name!r}; registered backends: {sorted(STORE_REGISTRY)}"
        ) from None
    return factory()
