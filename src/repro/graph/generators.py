"""Synthetic graph generators.

Section 7 of the paper generates synthetic graphs "with labels and attributes
drawn from an alphabet L of 500 symbols and values from a set of 2000
integers", controlled by |V| and |E| (up to 80M/100M).  This module provides:

* :func:`random_labeled_graph` — the direct analogue of that generator,
  scaled to laptop sizes;
* :func:`power_law_graph` — a preferential-attachment variant whose degree
  skew stresses the workload-balancing machinery (stragglers with large
  adjacency lists);
* :func:`community_graph` — a planted-partition generator whose locality
  mirrors social networks (used by the Pokec-like dataset);
* :func:`star_graph` / :func:`chain_graph` — tiny deterministic shapes used
  throughout the unit tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.store import GraphStore

__all__ = [
    "random_labeled_graph",
    "power_law_graph",
    "community_graph",
    "star_graph",
    "chain_graph",
]

#: Default attribute names attached to synthetic nodes; "val" mirrors the
#: attribute used by the paper's example NGDs.
DEFAULT_NUMERIC_ATTRIBUTES = ("val", "count", "rank")


def _label_alphabet(size: int) -> list[str]:
    return [f"L{i}" for i in range(size)]


def _edge_alphabet(size: int) -> list[str]:
    return [f"e{i}" for i in range(size)]


def random_labeled_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int = 500,
    num_edge_labels: int = 50,
    value_pool: int = 2000,
    numeric_attributes: Sequence[str] = DEFAULT_NUMERIC_ATTRIBUTES,
    seed: int = 0,
    name: str = "Synthetic",
    store: str | GraphStore | None = None,
) -> Graph:
    """Return a uniform random directed graph with labelled nodes and edges.

    Node labels are sampled uniformly from ``num_labels`` symbols, edge labels
    from ``num_edge_labels`` symbols, and each node carries every attribute in
    ``numeric_attributes`` with an integer value in ``[0, value_pool)``.
    Self-loops and duplicate (source, target, label) triples are avoided.
    """
    if num_nodes < 0 or num_edges < 0:
        raise GraphError("node and edge counts must be non-negative")
    if num_nodes < 2 and num_edges > 0:
        raise GraphError("at least two nodes are required to place edges")
    rng = random.Random(seed)
    labels = _label_alphabet(num_labels)
    edge_labels = _edge_alphabet(num_edge_labels)
    graph = Graph(name, store=store)
    for i in range(num_nodes):
        attributes = {attr: rng.randrange(value_pool) for attr in numeric_attributes}
        graph.add_node(i, rng.choice(labels), attributes)
    placed = 0
    seen: set[tuple[int, int, str]] = set()
    attempts = 0
    max_attempts = 20 * max(1, num_edges)
    while placed < num_edges and attempts < max_attempts:
        attempts += 1
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source == target:
            continue
        label = rng.choice(edge_labels)
        key = (source, target, label)
        if key in seen:
            continue
        seen.add(key)
        graph.add_edge(source, target, label)
        placed += 1
    return graph


def power_law_graph(
    num_nodes: int,
    edges_per_node: int = 3,
    num_labels: int = 50,
    num_edge_labels: int = 10,
    value_pool: int = 2000,
    numeric_attributes: Sequence[str] = DEFAULT_NUMERIC_ATTRIBUTES,
    seed: int = 0,
    name: str = "PowerLaw",
    store: str | GraphStore | None = None,
) -> Graph:
    """Return a preferential-attachment graph with a heavy-tailed degree distribution.

    Every new node attaches ``edges_per_node`` outgoing edges to targets chosen
    proportionally to their current degree (plus one).  Hub nodes end up with
    very large adjacency lists, which is exactly the skew PIncDect's work-unit
    splitting is designed to handle.
    """
    if num_nodes < 1:
        raise GraphError("power-law graphs need at least one node")
    rng = random.Random(seed)
    labels = _label_alphabet(num_labels)
    edge_labels = _edge_alphabet(num_edge_labels)
    graph = Graph(name, store=store)
    attachment_pool: list[int] = []
    for i in range(num_nodes):
        attributes = {attr: rng.randrange(value_pool) for attr in numeric_attributes}
        graph.add_node(i, rng.choice(labels), attributes)
        targets: set[int] = set()
        for _ in range(min(edges_per_node, i)):
            target = rng.choice(attachment_pool) if attachment_pool else rng.randrange(max(1, i))
            if target == i or target in targets:
                continue
            targets.add(target)
            graph.add_edge(i, target, rng.choice(edge_labels))
            attachment_pool.append(target)
        attachment_pool.append(i)
    return graph


def community_graph(
    num_communities: int,
    community_size: int,
    intra_probability: float = 0.08,
    inter_probability: float = 0.002,
    num_labels: int = 30,
    num_edge_labels: int = 8,
    value_pool: int = 2000,
    numeric_attributes: Sequence[str] = DEFAULT_NUMERIC_ATTRIBUTES,
    seed: int = 0,
    name: str = "Community",
    store: str | GraphStore | None = None,
) -> Graph:
    """Return a planted-partition graph: dense communities, sparse cross links.

    Social graphs (Pokec in the paper) have exactly this structure; it gives
    BFS edge-cut partitioning something meaningful to exploit and keeps
    dΣ-neighbourhoods compact.
    """
    if num_communities < 1 or community_size < 1:
        raise GraphError("community counts and sizes must be positive")
    if not (0.0 <= intra_probability <= 1.0 and 0.0 <= inter_probability <= 1.0):
        raise GraphError("edge probabilities must lie in [0, 1]")
    rng = random.Random(seed)
    labels = _label_alphabet(num_labels)
    edge_labels = _edge_alphabet(num_edge_labels)
    graph = Graph(name, store=store)
    total = num_communities * community_size
    for i in range(total):
        community = i // community_size
        attributes = {attr: rng.randrange(value_pool) for attr in numeric_attributes}
        attributes["community"] = community
        graph.add_node(i, rng.choice(labels), attributes)
    for source in range(total):
        source_community = source // community_size
        for target in range(total):
            if source == target:
                continue
            same = (target // community_size) == source_community
            probability = intra_probability if same else inter_probability
            if rng.random() < probability:
                graph.add_edge(source, target, rng.choice(edge_labels))
    return graph


def star_graph(num_leaves: int, hub_label: str = "hub", leaf_label: str = "leaf", edge_label: str = "link") -> Graph:
    """Return a star: one hub with ``num_leaves`` outgoing edges (deterministic)."""
    if num_leaves < 0:
        raise GraphError("number of leaves must be non-negative")
    graph = Graph("Star")
    graph.add_node("hub", hub_label, {"val": num_leaves})
    for i in range(num_leaves):
        graph.add_node(f"leaf{i}", leaf_label, {"val": i})
        graph.add_edge("hub", f"leaf{i}", edge_label)
    return graph


def chain_graph(length: int, label: str = "n", edge_label: str = "next", value_start: int = 0) -> Graph:
    """Return a directed chain ``n0 -> n1 -> ... -> n(length-1)`` (deterministic)."""
    if length < 0:
        raise GraphError("chain length must be non-negative")
    graph = Graph("Chain")
    for i in range(length):
        graph.add_node(f"n{i}", label, {"val": value_start + i})
    for i in range(length - 1):
        graph.add_edge(f"n{i}", f"n{i + 1}", edge_label)
    return graph
