"""Graph (de)serialisation.

Real deployments load knowledge graphs from dumps; this module provides a
small, dependency-free JSON format plus a tab-separated edge-list format so
examples and experiments can persist graphs and batch updates.

JSON document shape::

    {
      "name": "G",
      "nodes": [{"id": ..., "label": ..., "attributes": {...}}, ...],
      "edges": [{"source": ..., "target": ..., "label": ...}, ...]
    }

Batch updates use one JSON object per unit update with an ``"op"`` field of
``"insert"`` or ``"delete"``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.errors import GraphError, UpdateError
from repro.graph.graph import Graph
from repro.graph.store import GraphStore
from repro.graph.updates import BatchUpdate, EdgeDeletion, EdgeInsertion, NodePayload

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "atomic_write_json",
    "load_json_document",
    "save_update",
    "load_update",
    "write_edge_list",
    "read_edge_list",
]

PathLike = Union[str, Path]


def graph_to_dict(graph: Graph) -> dict:
    """Return a JSON-serialisable dictionary describing ``graph``."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": node.id, "label": node.label, "attributes": dict(node.attributes)}
            for node in graph.nodes()
        ],
        "edges": [
            {"source": edge.source, "target": edge.target, "label": edge.label}
            for edge in graph.edges()
        ],
    }


StoreSpec = Union[str, GraphStore, None]


def graph_from_dict(document: dict, store: StoreSpec = None) -> Graph:
    """Rebuild a :class:`Graph` from the dictionary produced by :func:`graph_to_dict`.

    ``store`` selects the storage backend of the rebuilt graph (name,
    instance, or None for the process default).
    """
    if "nodes" not in document or "edges" not in document:
        raise GraphError("graph document must contain 'nodes' and 'edges' lists")
    graph = Graph(document.get("name", "G"), store=store)
    for entry in document["nodes"]:
        graph.add_node(entry["id"], entry["label"], entry.get("attributes", {}))
    for entry in document["edges"]:
        graph.add_edge(entry["source"], entry["target"], entry["label"])
    return graph


def atomic_write_json(document: object, path: PathLike) -> None:
    """Write ``document`` to ``path`` as JSON, atomically.

    The bytes land in a sibling temp file that is fsync'd and then renamed
    over ``path``, so a crash mid-write leaves either the old file or the
    new one — never a torn JSON document.  Checkpoints and the data-dir
    manifest rely on this: recovery must always find a parseable file.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_json_document(path: PathLike) -> object:
    """Read one JSON document from ``path`` (checkpoint/manifest loader)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_graph(graph: Graph, path: PathLike, atomic: bool = False) -> None:
    """Write ``graph`` to ``path`` as JSON (``atomic=True`` for tmp+rename)."""
    if atomic:
        atomic_write_json(graph_to_dict(graph), path)
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=2, sort_keys=True, default=str)


def load_graph(path: PathLike, store: StoreSpec = None) -> Graph:
    """Load a graph previously written by :func:`save_graph`.

    ``store`` selects the storage backend of the loaded graph.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle), store=store)


def update_to_list(delta: BatchUpdate) -> list[dict]:
    """Return a JSON-serialisable list describing ``delta``."""
    entries = []
    for update in delta:
        entry = {
            "op": "insert" if update.is_insertion else "delete",
            "source": update.source,
            "target": update.target,
            "label": update.label,
        }
        if isinstance(update, EdgeInsertion):
            for side, payload in (("source", update.source_payload), ("target", update.target_payload)):
                if payload is not None:
                    entry[f"{side}_payload"] = {
                        "label": payload.label,
                        "attributes": dict(payload.attributes),
                    }
        entries.append(entry)
    return entries


def update_from_list(entries: list[dict]) -> BatchUpdate:
    """Rebuild a :class:`BatchUpdate` from :func:`update_to_list` output."""
    batch = BatchUpdate()
    for entry in entries:
        op = entry.get("op")
        if op == "insert":
            payloads = {}
            for side in ("source", "target"):
                raw = entry.get(f"{side}_payload")
                if raw is not None:
                    payloads[f"{side}_payload"] = NodePayload(raw["label"], raw.get("attributes", {}))
            batch.extend(
                [EdgeInsertion(entry["source"], entry["target"], entry["label"], **payloads)]
            )
        elif op == "delete":
            batch.extend([EdgeDeletion(entry["source"], entry["target"], entry["label"])])
        else:
            raise UpdateError(f"unknown update op {op!r}")
    return batch


def save_update(delta: BatchUpdate, path: PathLike) -> None:
    """Write a batch update to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(update_to_list(delta), handle, indent=2, default=str)


def load_update(path: PathLike) -> BatchUpdate:
    """Load a batch update previously written by :func:`save_update`."""
    with open(path, "r", encoding="utf-8") as handle:
        return update_from_list(json.load(handle))


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a tab-separated edge list: ``source \\t edge_label \\t target`` per line.

    Node labels and attributes are written in a companion header section of
    the form ``# node <id> <label> <json attributes>`` so the file round-trips.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# graph {graph.name}\n")
        for node in graph.nodes():
            handle.write(
                "# node\t{}\t{}\t{}\n".format(node.id, node.label, json.dumps(dict(node.attributes), default=str))
            )
        for edge in graph.edges():
            handle.write(f"{edge.source}\t{edge.label}\t{edge.target}\n")


def read_edge_list(path: PathLike, store: StoreSpec = None) -> Graph:
    """Read a graph written by :func:`write_edge_list`."""
    graph = Graph(store=store)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# graph "):
                graph.name = line[len("# graph "):]
                continue
            if line.startswith("# node\t"):
                _, node_id, label, attributes = line.split("\t", 3)
                graph.add_node(node_id, label, json.loads(attributes))
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphError(f"malformed edge-list line: {line!r}")
            source, label, target = parts
            graph.ensure_node(source)
            graph.ensure_node(target)
            graph.add_edge(source, target, label)
    return graph
