"""Sharded read-only graph images for the multi-process execution backend.

The parallel kernels historically ran on the :class:`ClusterSimulator` —
one process doing all the work, charging virtual clocks.  Real
multi-process execution (``execution="processes"``) needs the opposite
data layout: every worker process must be able to *read* the part of the
graph its work units expand into, without sharing mutable state with the
parent.  :class:`ShardedStore` provides that layout:

* the graph is partitioned by a :class:`~repro.graph.partition.Fragmentation`
  (BFS edge-cut by default — the METIS stand-in, so neighbourhoods tend to
  stay fragment-local);
* each fragment becomes one *shard image*: the subgraph induced by the
  fragment's owned nodes **plus a halo** of every node within
  ``halo_hops`` of them.  With ``halo_hops ≥ dΣ`` (the rule set's maximum
  pattern diameter) any *connected*-pattern search seeded at an owned node
  finds exactly the matches it would find in the full graph: a complete
  match maps pattern paths onto data walks, so every matched node lies
  within dΣ undirected hops of the seed, and the induced halo contains all
  of those nodes and every edge between them;
* shard images are **frozen** onto the :class:`~repro.graph.store.CsrStore`
  before any worker starts.  A frozen CSR image is immutable, so under the
  ``fork`` start method the child processes share the parent's arrays
  copy-on-write with no churn (fork-safe, zero-copy), and under ``spawn``
  each image is serialized exactly once (:meth:`ShardedStore.spool`, the
  :mod:`repro.graph.io` JSON conventions) and memo-loaded at most once per
  worker process (:func:`load_spooled`).

The sharding contract — what a worker may assume
------------------------------------------------

1. Shard images are *read-only*.  Workers must never mutate them (the CSR
   engine enforces this by raising on every mutator).
2. A work unit seeded at node ``v`` may be expanded against
   ``shard(owner(v))`` iff every rule pattern is connected and has
   diameter ≤ ``halo_hops`` (checked by :func:`supports_localized_matching`
   + the build-time ``halo_hops`` choice).  Disconnected patterns scan the
   global label index, which a shard truncates — callers must fall back
   to a single full image for those (``ShardedStore.single``).
3. Cost counters measured inside a shard may differ from the full-graph
   run (border nodes have truncated adjacency), but the *violations* are
   identical — parity is over results, not over work accounting.
4. Spooled images round-trip node ids through JSON (``default=str``, the
   :mod:`repro.graph.io` convention); graphs with non-JSON node ids must
   use the fork/inherit path.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Hashable, Iterable
from pathlib import Path
from typing import Optional, Union

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.io import load_graph, save_graph
from repro.graph.neighborhood import multi_source_nodes_within_hops
from repro.graph.partition import Fragmentation, bfs_edge_cut, hash_edge_cut

__all__ = [
    "ShardedStore",
    "supports_localized_matching",
    "freeze_shard_image",
    "spool_graph",
    "load_spooled",
    "clear_spool_cache",
]

#: Default storage backend of shard images (frozen, immutable, fork-safe).
SHARD_BACKEND = "csr"

#: Per-process memo of spooled images: (resolved path, backend) -> Graph.
#: Worker processes consult this before touching the disk, so each image is
#: deserialized at most once per process no matter how many work units land
#: there.  Spool directories are one-shot (a fresh tempdir per run), so the
#: cache needs no invalidation.
_SPOOL_CACHE: dict[tuple[str, str], Graph] = {}


def freeze_shard_image(graph: Graph) -> Graph:
    """Force a graph's store into its frozen/read-only form, if it has one.

    The CSR engine freezes lazily on the first adjacency read; a shard
    image must freeze *before* the workers fork so the compact arrays are
    built once in the parent and shared copy-on-write, rather than being
    rebuilt (and re-allocated) inside every child.
    """
    store = graph.store
    freeze = getattr(store, "_freeze", None)
    if callable(freeze):
        freeze()
    return graph


def supports_localized_matching(rules: Iterable) -> bool:
    """Return True when every rule pattern is connected.

    Connected patterns expand through adjacency only (after the seed), so
    a halo image serves them exactly.  A disconnected pattern needs a
    label-index scan for the far component, which only the full graph can
    answer — shard-local and neighbourhood-local search would silently
    miss matches.
    """
    for rule in rules:
        pattern = rule.pattern
        variables = pattern.variables
        if not variables:
            continue
        seen = {variables[0]}
        frontier = [variables[0]]
        while frontier:
            variable = frontier.pop()
            for neighbour in pattern.neighbours(variable):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if len(seen) != len(variables):
            return False
    return True


def spool_graph(graph: Graph, path: Union[str, Path]) -> str:
    """Serialize one read-only image to ``path`` (the graph/io JSON format)."""
    save_graph(graph, path)
    return str(path)


def load_spooled(path: Union[str, Path], store: str = SHARD_BACKEND) -> Graph:
    """Load a spooled image, memoized per process (see ``_SPOOL_CACHE``)."""
    key = (str(Path(path).resolve()), store)
    cached = _SPOOL_CACHE.get(key)
    if cached is None:
        cached = freeze_shard_image(load_graph(path, store=store))
        _SPOOL_CACHE[key] = cached
    return cached


def clear_spool_cache() -> None:
    """Drop every memoized image (tests re-spooling to the same paths)."""
    _SPOOL_CACHE.clear()


class ShardedStore:
    """A graph partitioned into per-fragment read-only images.

    Build one in the parent process with :meth:`build`; route a work unit
    seeded at node ``v`` with :meth:`owner`; read the image with
    :meth:`shard`.  For ``spawn``-style workers, :meth:`spool` writes every
    image plus a manifest once, and :meth:`load` reopens the store lazily
    (images deserialize on first :meth:`shard` call, memoized per process).
    """

    def __init__(
        self,
        shard_paths: list[Optional[str]],
        halo_hops: int,
        strategy: str,
        backend: str = SHARD_BACKEND,
        images: Optional[list[Optional[Graph]]] = None,
        owners: Optional[dict[Hashable, int]] = None,
        manifest_path: Optional[str] = None,
    ) -> None:
        self._paths = list(shard_paths)
        self.halo_hops = halo_hops
        self.strategy = strategy
        self.backend = backend
        self._images: list[Optional[Graph]] = (
            list(images) if images is not None else [None] * len(shard_paths)
        )
        self._owners = owners
        self.manifest_path = manifest_path

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        graph: Graph,
        num_shards: int,
        halo_hops: int,
        strategy: str = "bfs",
        backend: str = SHARD_BACKEND,
    ) -> "ShardedStore":
        """Partition ``graph`` into ``num_shards`` frozen halo images.

        ``halo_hops`` must be at least the maximum pattern diameter of the
        rules that will run against the shards (``RuleSet.diameter()``);
        the executor passes exactly that.
        """
        if num_shards < 1:
            raise PartitionError("a sharded store needs at least one shard")
        if num_shards == 1:
            return cls.single(graph, backend=backend)
        fragmentation = cls._fragment(graph, num_shards, strategy)
        images: list[Optional[Graph]] = []
        for fragment in fragmentation.fragments:
            if fragment.nodes:
                halo = multi_source_nodes_within_hops(graph, fragment.nodes, halo_hops)
                image = graph.induced_subgraph(
                    halo | set(fragment.nodes), name=f"{graph.name}[shard{fragment.index}]"
                )
            else:
                image = Graph(f"{graph.name}[shard{fragment.index}]", store=graph.store.fresh())
            if image.store_backend != backend:
                image = image.with_backend(backend)
            images.append(freeze_shard_image(image))
        owners = {
            node: fragment.index
            for fragment in fragmentation.fragments
            for node in fragment.nodes
        }
        return cls(
            shard_paths=[None] * num_shards,
            halo_hops=halo_hops,
            strategy=fragmentation.strategy,
            backend=backend,
            images=images,
            owners=owners,
        )

    @classmethod
    def single(cls, graph: Graph, backend: Optional[str] = None) -> "ShardedStore":
        """Wrap the whole graph as one shard (the full-image fallback).

        Used when the rule set has disconnected patterns (shard-local
        search would be incomplete) and by incremental runs whose search
        space is already a replicated neighbourhood.  ``backend=None``
        keeps the image on its current engine (the fork path shares it
        copy-on-write as-is); a spooled single-image store is still loaded
        on the read-only :data:`SHARD_BACKEND` by the workers.
        """
        if backend is not None and graph.store_backend != backend:
            graph = graph.with_backend(backend)
        return cls(
            shard_paths=[None],
            halo_hops=0,
            strategy="single",
            backend=backend if backend is not None else SHARD_BACKEND,
            images=[freeze_shard_image(graph)],
            owners=None,
        )

    @staticmethod
    def _fragment(graph: Graph, num_shards: int, strategy: str) -> Fragmentation:
        if strategy == "bfs":
            return bfs_edge_cut(graph, num_shards)
        if strategy == "hash":
            return hash_edge_cut(graph, num_shards)
        raise PartitionError(f"unknown sharding strategy {strategy!r}; expected 'bfs' or 'hash'")

    # ----------------------------------------------------------------- access

    @property
    def num_shards(self) -> int:
        """Return the number of shard images."""
        return len(self._paths)

    def owner(self, node_id: Hashable) -> int:
        """Return the shard index owning ``node_id`` (0 for a single shard)."""
        if self._owners is None:
            return 0
        try:
            return self._owners[node_id]
        except KeyError:
            raise PartitionError(f"node {node_id!r} is not assigned to any shard") from None

    def shard(self, index: int) -> Graph:
        """Return shard ``index``'s image, loading (memoized) if spooled."""
        image = self._images[index]
        if image is None:
            path = self._paths[index]
            if path is None:
                raise PartitionError(f"shard {index} has neither an image nor a spool path")
            image = load_spooled(path, store=self.backend)
            self._images[index] = image
        return image

    # ------------------------------------------------------------------ spool

    def spool(self, directory: Optional[Union[str, Path]] = None) -> str:
        """Serialize every image once; return the manifest path.

        Idempotent: a store that has already been spooled returns its
        existing manifest (the shard files and the manifest must share a
        directory — basenames are resolved relative to the manifest).
        The manifest records the shard file names, halo radius and
        strategy, so a worker process can :meth:`load` the store from the
        path alone.
        """
        if self.manifest_path is not None:
            return self.manifest_path
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-shards-")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        adopted = self._adopt_manifest(directory)
        if adopted is not None:
            return adopted
        for index in range(self.num_shards):
            if self._paths[index] is None:
                path = directory / f"shard{index}.json"
                spool_graph(self.shard(index), path)
                self._paths[index] = str(path)
        manifest = {
            "format": "repro-sharded-store",
            "halo_hops": self.halo_hops,
            "strategy": self.strategy,
            "backend": self.backend,
            "shards": [os.path.basename(path) for path in self._paths],
        }
        manifest_path = directory / "manifest.json"
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        self.manifest_path = str(manifest_path)
        return self.manifest_path

    def _adopt_manifest(self, directory: Path) -> Optional[str]:
        """Reuse a manifest already spooled into ``directory``, if compatible.

        The durable segment cache hands the executor the same directory for
        the same runtime key across warm-pool reloads; when a previous load
        already serialized this store's images there, re-serializing them
        would only burn I/O.  Adoption requires an exact parameter match
        (shard count, halo radius, strategy, backend) and every shard file
        on disk — anything else falls through to a fresh spool, which
        overwrites the stale manifest.
        """
        manifest_path = directory / "manifest.json"
        if not manifest_path.is_file():
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != "repro-sharded-store"
            or manifest.get("halo_hops") != self.halo_hops
            or manifest.get("strategy") != self.strategy
            or manifest.get("backend") != self.backend
        ):
            return None
        names = manifest.get("shards")
        if not isinstance(names, list) or len(names) != self.num_shards:
            return None
        paths = [str(directory / name) for name in names]
        if not all(os.path.isfile(path) for path in paths):
            return None
        self._paths = paths
        self.manifest_path = str(manifest_path)
        return self.manifest_path

    @classmethod
    def load(cls, manifest_path: Union[str, Path], backend: Optional[str] = None) -> "ShardedStore":
        """Reopen a spooled store lazily (images load on first access)."""
        manifest_path = Path(manifest_path)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != "repro-sharded-store":
            raise PartitionError(f"{manifest_path} is not a sharded-store manifest")
        directory = manifest_path.parent
        return cls(
            shard_paths=[str(directory / name) for name in manifest["shards"]],
            halo_hops=manifest["halo_hops"],
            strategy=manifest["strategy"],
            backend=backend if backend is not None else manifest.get("backend", SHARD_BACKEND),
            manifest_path=str(manifest_path),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedStore(shards={self.num_shards}, halo={self.halo_hops}, "
            f"strategy={self.strategy!r}, backend={self.backend!r})"
        )
