"""Graph fragmentation: edge-cut and vertex-cut partitioning.

The parallel algorithms of the paper (Section 6.3) run on a graph "partitioned
via edge-cut [9] or vertex-cut [37]" across ``p`` processors; the experiments
fragment graphs with METIS.  METIS is not available offline, so this module
provides two partitioners with the properties the algorithms rely on:

* :func:`hash_edge_cut` — assigns nodes to fragments by hashing, the simplest
  balanced edge-cut;
* :func:`bfs_edge_cut` — grows fragments by BFS from seeds, a locality-aware
  edge-cut that stands in for METIS (neighbouring nodes tend to share a
  fragment, keeping candidate neighbourhoods local);
* :func:`greedy_vertex_cut` — assigns *edges* to fragments, replicating cut
  vertices, in the style of PowerGraph-like vertex-cuts.

Each partitioner returns a :class:`Fragmentation`, which records fragment
membership, crossing edges, and border ("entry/exit") nodes — the pieces
PIncDect's candidate-neighbourhood extraction coordinates over.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.graph.graph import Edge, Graph

__all__ = [
    "Fragment",
    "Fragmentation",
    "hash_edge_cut",
    "bfs_edge_cut",
    "greedy_vertex_cut",
]


@dataclass
class Fragment:
    """One fragment of a partitioned graph.

    ``nodes`` are node ids owned by this fragment.  ``edges`` are edge keys
    whose *source* is owned here (edge-cut) or that were assigned here
    (vertex-cut).  ``border_nodes`` are owned nodes with at least one crossing
    edge; they are the entry/exit points messages travel through.
    """

    index: int
    nodes: set[Hashable] = field(default_factory=set)
    edges: set[tuple[Hashable, Hashable, str]] = field(default_factory=set)
    border_nodes: set[Hashable] = field(default_factory=set)

    def node_count(self) -> int:
        """Return the number of nodes owned by the fragment."""
        return len(self.nodes)

    def edge_count(self) -> int:
        """Return the number of edges assigned to the fragment."""
        return len(self.edges)

    def size(self) -> int:
        """Return nodes + edges, the fragment's share of |G|."""
        return len(self.nodes) + len(self.edges)


class Fragmentation:
    """A partition of a graph into ``p`` fragments plus crossing-edge bookkeeping."""

    def __init__(self, graph: Graph, fragments: Sequence[Fragment], strategy: str) -> None:
        self.graph = graph
        self.fragments = list(fragments)
        self.strategy = strategy
        self._owner: dict[Hashable, int] = {}
        for fragment in self.fragments:
            for node in fragment.nodes:
                # vertex-cut replicates nodes; the first assignment is the owner
                self._owner.setdefault(node, fragment.index)
        self.crossing_edges: list[Edge] = [
            edge
            for edge in graph.edges()
            if self._owner.get(edge.source) != self._owner.get(edge.target)
        ]
        crossing_endpoints = {e.source for e in self.crossing_edges} | {
            e.target for e in self.crossing_edges
        }
        for fragment in self.fragments:
            fragment.border_nodes = fragment.nodes & crossing_endpoints

    @property
    def num_fragments(self) -> int:
        """Return p, the number of fragments."""
        return len(self.fragments)

    def owner_of(self, node_id: Hashable) -> int:
        """Return the index of the fragment owning ``node_id``."""
        try:
            return self._owner[node_id]
        except KeyError:
            raise PartitionError(f"node {node_id!r} is not assigned to any fragment") from None

    def fragment_of(self, node_id: Hashable) -> Fragment:
        """Return the fragment owning ``node_id``."""
        return self.fragments[self.owner_of(node_id)]

    def crossing_edge_count(self) -> int:
        """Return the number of edges whose endpoints live in different fragments."""
        return len(self.crossing_edges)

    def edge_cut_fraction(self) -> float:
        """Return the fraction of edges that cross fragments (partition quality)."""
        total = self.graph.edge_count()
        return self.crossing_edge_count() / total if total else 0.0

    def balance(self) -> float:
        """Return max fragment size / average fragment size (1.0 = perfectly balanced)."""
        sizes = [fragment.size() for fragment in self.fragments]
        if not sizes or sum(sizes) == 0:
            return 1.0
        return max(sizes) / (sum(sizes) / len(sizes))

    def local_subgraph(self, index: int) -> Graph:
        """Return the subgraph stored at fragment ``index``.

        Contains the fragment's owned nodes, the opposite endpoints of its
        crossing edges (as replicated border copies), and every edge with at
        least one owned endpoint — what a worker can read without messages.
        """
        fragment = self.fragments[index]
        keep = set(fragment.nodes)
        for edge in self.crossing_edges:
            if edge.source in fragment.nodes or edge.target in fragment.nodes:
                keep.add(edge.source)
                keep.add(edge.target)
        return self.graph.induced_subgraph(keep, name=f"{self.graph.name}[frag{index}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Fragmentation(p={self.num_fragments}, strategy={self.strategy!r}, "
            f"cut={self.crossing_edge_count()})"
        )


def _check_fragment_count(graph: Graph, num_fragments: int) -> None:
    if num_fragments < 1:
        raise PartitionError("number of fragments must be at least 1")
    if graph.node_count() == 0 and num_fragments > 1:
        raise PartitionError("cannot fragment an empty graph into multiple fragments")


def hash_edge_cut(graph: Graph, num_fragments: int) -> Fragmentation:
    """Partition nodes round-robin in insertion order (balanced edge-cut).

    Insertion order is deterministic for any storage backend (the stores keep
    nodes in rank order), so this needs no ``sorted(key=repr)`` pass.
    """
    _check_fragment_count(graph, num_fragments)
    fragments = [Fragment(i) for i in range(num_fragments)]
    for position, node_id in enumerate(graph.node_ids()):
        fragments[position % num_fragments].nodes.add(node_id)
    owner = {n: f.index for f in fragments for n in f.nodes}
    for edge in graph.edges():
        fragments[owner[edge.source]].edges.add(edge.key())
    return Fragmentation(graph, fragments, strategy="hash-edge-cut")


def bfs_edge_cut(graph: Graph, num_fragments: int) -> Fragmentation:
    """Grow fragments by BFS from evenly spaced seeds (locality-aware edge-cut).

    This is the METIS stand-in: connected regions tend to stay together, so
    dΣ-neighbourhoods of most nodes are fragment-local, which is what the
    candidate-neighbourhood extraction of PIncDect benefits from.
    """
    _check_fragment_count(graph, num_fragments)
    fragments = [Fragment(i) for i in range(num_fragments)]
    if graph.node_count() == 0:
        return Fragmentation(graph, fragments, strategy="bfs-edge-cut")

    capacity = -(-graph.node_count() // num_fragments)  # ceil division
    unassigned = set(graph.node_ids())
    order = sorted(unassigned, key=graph.node_rank)
    current = 0
    frontier: deque[Hashable] = deque()
    while unassigned:
        if not frontier:
            seed = next(node for node in order if node in unassigned)
            frontier.append(seed)
        node_id = frontier.popleft()
        if node_id not in unassigned:
            continue
        if fragments[current].node_count() >= capacity and current < num_fragments - 1:
            current += 1
            frontier.clear()
            frontier.append(node_id)
            continue
        fragments[current].nodes.add(node_id)
        unassigned.discard(node_id)
        for neighbour in sorted(graph.neighbours(node_id), key=graph.node_rank):
            if neighbour in unassigned:
                frontier.append(neighbour)
    owner = {n: f.index for f in fragments for n in f.nodes}
    for edge in graph.edges():
        fragments[owner[edge.source]].edges.add(edge.key())
    return Fragmentation(graph, fragments, strategy="bfs-edge-cut")


def greedy_vertex_cut(graph: Graph, num_fragments: int) -> Fragmentation:
    """Assign edges to fragments greedily, replicating endpoints (vertex-cut).

    Each edge goes to the fragment that already holds one of its endpoints and
    currently has the fewest edges, breaking ties toward the least-loaded
    fragment overall.  Nodes replicated in several fragments are "entry/exit"
    nodes in the paper's terminology.
    """
    _check_fragment_count(graph, num_fragments)
    fragments = [Fragment(i) for i in range(num_fragments)]
    placements: dict[Hashable, set[int]] = {}
    # edge iteration is insertion-ordered (deterministic) for every backend
    for edge in graph.edges():
        candidates = placements.get(edge.source, set()) | placements.get(edge.target, set())
        pool = candidates if candidates else set(range(num_fragments))
        chosen = min(pool, key=lambda i: (fragments[i].edge_count(), i))
        fragments[chosen].edges.add(edge.key())
        for endpoint in edge.endpoints():
            placements.setdefault(endpoint, set()).add(chosen)
            fragments[chosen].nodes.add(endpoint)
    # isolated nodes still need a home
    isolated = [node_id for node_id in graph.node_ids() if node_id not in placements]
    for position, node_id in enumerate(isolated):
        fragments[position % num_fragments].nodes.add(node_id)
    return Fragmentation(graph, fragments, strategy="greedy-vertex-cut")
