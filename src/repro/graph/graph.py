"""Directed property graphs.

The paper (Section 2) works with directed graphs ``G = (V, E, L, F_A)``:

* ``V`` — a finite set of nodes;
* ``E ⊆ V × V`` — directed edges, each carrying a label;
* ``L`` — a labelling function on nodes and edges;
* ``F_A`` — for each node, a tuple of attribute/value pairs carrying the
  node's content (numbers, strings, dates).

:class:`Graph` is a *facade*: it owns the semantics of the model (duplicate
and missing-node errors, wildcard labels, subgraph construction) and
delegates the physical layout to a pluggable storage engine
(:mod:`repro.graph.store`).  The engine provides the indexes the detection
algorithms need:

* forward and reverse adjacency (``successors`` / ``predecessors``), plus
  the label-filtered forms (``successors_by_label`` and friends) the
  matchers use so candidate filtering costs O(result), not O(degree);
* a label index over nodes (``nodes_with_label``) used for candidate
  selection in pattern matching;
* an edge-label index keyed by ``(source_label, edge_label, target_label)``
  triples used by update-driven matching to locate update pivots quickly;
* a deterministic insertion-order rank (``node_rank``) giving the matchers
  a cheap, stable candidate ordering.

Pick an engine with ``Graph(store="dict")`` / ``Graph(store="indexed")`` or
the ``REPRO_GRAPH_STORE`` environment variable (default: ``indexed``).

Unlike the formal model, parallel edges with *different labels* between the
same pair of nodes are allowed (real knowledge graphs have them); a second
edge with the same label is a no-op.  Node attribute values may be integers,
floats, or strings — literals only ever see the numeric ones.

Adjacency and label reads may return live zero-copy views (depending on the
engine): do not mutate the graph while iterating one.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional, Union

from repro.errors import DuplicateNode, EdgeNotFound, NodeNotFound
from repro.graph.model import WILDCARD, Edge, Node
from repro.graph.store import GraphStore, make_store

__all__ = ["Node", "Edge", "Graph", "WILDCARD"]


class Graph:
    """A directed property graph over a pluggable storage engine.

    All mutating operations keep the engine's indexes consistent; the facade
    itself holds no graph state beyond the engine and the name.
    """

    __slots__ = ("name", "_store")

    def __init__(self, name: str = "G", store: Union[str, GraphStore, None] = None) -> None:
        self.name = name
        self._store = make_store(store)

    # ------------------------------------------------------------------ store

    @property
    def store(self) -> GraphStore:
        """Return the backing storage engine."""
        return self._store

    @property
    def store_backend(self) -> str:
        """Return the registry name of the backing engine (e.g. ``"indexed"``)."""
        return self._store.backend

    def with_backend(self, store: Union[str, GraphStore], name: Optional[str] = None) -> "Graph":
        """Return a copy of this graph rebuilt on another storage engine.

        Used by the storage benchmarks to compare engines on identical data.
        """
        converted = Graph(name or self.name, store=store)
        for node in self._store.nodes():
            converted._store.add_node(node)
        for edge in self._store.edges():
            converted._store.add_edge(edge)
        return converted

    # ------------------------------------------------------------------ nodes

    def add_node(
        self,
        node_id: Hashable,
        label: str,
        attributes: Optional[Mapping[str, object]] = None,
    ) -> Node:
        """Add a node and return it.

        Re-adding an identical node is a no-op; re-adding with a different
        label or attributes raises :class:`DuplicateNode`.
        """
        existing = self._store.get_node(node_id)
        if existing is not None:
            if existing.label == label and dict(existing.attributes) == dict(attributes or {}):
                return existing
            raise DuplicateNode(node_id)
        node = Node(node_id, label, dict(attributes or {}))
        self._store.add_node(node)
        return self._store.get_node(node_id)  # engines may intern the label

    def ensure_node(self, node_id: Hashable, label: str = WILDCARD) -> Node:
        """Return the node, creating it with ``label`` and no attributes if missing."""
        existing = self._store.get_node(node_id)
        if existing is not None:
            return existing
        return self.add_node(node_id, label)

    def node(self, node_id: Hashable) -> Node:
        """Return the node with id ``node_id`` or raise :class:`NodeNotFound`."""
        node = self._store.get_node(node_id)
        if node is None:
            raise NodeNotFound(node_id)
        return node

    def has_node(self, node_id: Hashable) -> bool:
        """Return True when ``node_id`` is in the graph."""
        return self._store.has_node(node_id)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in insertion order."""
        return self._store.nodes()

    def node_ids(self) -> Iterator[Hashable]:
        """Iterate over all node ids in insertion order."""
        return self._store.node_ids()

    def node_rank(self, node_id: Hashable) -> int:
        """Return the node's deterministic insertion-order rank.

        ``sorted(ids, key=graph.node_rank)`` reproduces insertion order with
        an O(1) key; the matchers use it for stable candidate enumeration.
        """
        return self._store.node_rank(node_id)

    def nodes_with_label(self, label: str):
        """Return the ids of all nodes carrying ``label`` (read-only set).

        The wildcard label returns every node id, matching the pattern
        semantics of Section 2 (wildcard matches any label).  Depending on
        the engine the result may be a live zero-copy view.
        """
        if label == WILDCARD:
            return self._store.all_node_ids()
        return self._store.nodes_with_label(label)

    def set_attribute(self, node_id: Hashable, name: str, value: object) -> Node:
        """Set attribute ``name`` of node ``node_id`` to ``value`` and return the new node."""
        updated = self.node(node_id).with_attribute(name, value)
        self._store.replace_node(updated)
        return updated

    def remove_node(self, node_id: Hashable) -> None:
        """Remove a node and all edges incident to it."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        for neighbour, label in list(self._store.successors(node_id)):
            self._store.remove_edge((node_id, neighbour, label))
        for neighbour, label in list(self._store.predecessors(node_id)):
            self._store.remove_edge((neighbour, node_id, label))
        self._store.remove_node(node_id)

    # ------------------------------------------------------------------ edges

    def add_edge(self, source: Hashable, target: Hashable, label: str) -> Edge:
        """Add a labelled edge; endpoints must already exist.

        Adding an edge that is already present is a no-op and returns the
        existing edge object.
        """
        if not self._store.has_node(source):
            raise NodeNotFound(source)
        if not self._store.has_node(target):
            raise NodeNotFound(target)
        key = (source, target, label)
        existing = self._store.get_edge(key)
        if existing is not None:
            return existing
        self._store.add_edge(Edge(source, target, label))
        return self._store.get_edge(key)

    def edge(self, source: Hashable, target: Hashable, label: str) -> Edge:
        """Return the edge or raise :class:`EdgeNotFound`."""
        found = self._store.get_edge((source, target, label))
        if found is None:
            raise EdgeNotFound(source, target, label)
        return found

    def has_edge(self, source: Hashable, target: Hashable, label: Optional[str] = None) -> bool:
        """Return True when an edge from ``source`` to ``target`` exists.

        When ``label`` is None, any label counts.
        """
        if label is not None:
            return self._store.has_edge_key((source, target, label))
        return self._store.has_any_edge(source, target)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in insertion order."""
        return self._store.edges()

    def edges_with_signature(self, source_label: str, edge_label: str, target_label: str) -> list[Edge]:
        """Return edges whose endpoint labels and edge label match the signature.

        Wildcards in ``source_label``/``target_label`` match any node label.
        Used by update-driven matching to find update pivots.
        """
        if source_label != WILDCARD and target_label != WILDCARD:
            return self._store.edges_with_exact_signature((source_label, edge_label, target_label))
        matches: list[Edge] = []
        for (s_label, e_label, t_label), edges in self._store.signature_items():
            if e_label != edge_label:
                continue
            if source_label != WILDCARD and s_label != source_label:
                continue
            if target_label != WILDCARD and t_label != target_label:
                continue
            matches.extend(edges)
        return matches

    def remove_edge(self, source: Hashable, target: Hashable, label: str) -> None:
        """Remove an edge; raises :class:`EdgeNotFound` when absent."""
        key = (source, target, label)
        if not self._store.has_edge_key(key):
            raise EdgeNotFound(source, target, label)
        self._store.remove_edge(key)

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable):
        """Return the ``(target id, edge label)`` pairs leaving ``node_id`` (read-only set)."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.successors(node_id)

    def predecessors(self, node_id: Hashable):
        """Return the ``(source id, edge label)`` pairs entering ``node_id`` (read-only set)."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.predecessors(node_id)

    def successors_by_label(self, node_id: Hashable, edge_label: str):
        """Return the target ids reachable from ``node_id`` over ``edge_label`` edges.

        The label-filtered access path of the matchers: on the indexed engine
        this is an O(result) index probe with no copying.
        """
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.successors_by_label(node_id, edge_label)

    def predecessors_by_label(self, node_id: Hashable, edge_label: str):
        """Return the source ids reaching ``node_id`` over ``edge_label`` edges."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.predecessors_by_label(node_id, edge_label)

    def out_edge_labels(self, node_id: Hashable):
        """Return the set of edge labels leaving ``node_id`` (read-only set).

        Used by candidate filtering for the degree-signature check without
        materializing the adjacency list.
        """
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.out_edge_labels(node_id)

    def in_edge_labels(self, node_id: Hashable):
        """Return the set of edge labels entering ``node_id`` (read-only set)."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.in_edge_labels(node_id)

    def neighbours(self, node_id: Hashable) -> frozenset[Hashable]:
        """Return ids adjacent to ``node_id`` ignoring direction and labels."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.neighbour_ids(node_id)

    def degree(self, node_id: Hashable) -> int:
        """Return the total (in + out) degree of ``node_id``."""
        if not self._store.has_node(node_id):
            raise NodeNotFound(node_id)
        return self._store.out_degree(node_id) + self._store.in_degree(node_id)

    def adjacency_size(self, node_id: Hashable) -> int:
        """Alias of :meth:`degree`; the cost model of PIncDect uses |v.adj|."""
        return self.degree(node_id)

    # ------------------------------------------------------------- subgraphs

    def induced_subgraph(self, node_ids: Iterable[Hashable], name: Optional[str] = None) -> "Graph":
        """Return the subgraph induced by ``node_ids`` (Section 2).

        The result contains exactly the requested nodes (with their labels and
        attributes) and every edge of this graph whose endpoints both fall in
        the requested set.  Built from the adjacency of the wanted nodes —
        O(sum of their degrees) — rather than scanning all of E, so extracting
        a d-neighbourhood of a large sparse graph costs only the neighbourhood.
        The result uses the same storage backend as this graph.
        """
        wanted = set(node_ids)
        store = self._store
        missing = [node_id for node_id in wanted if not store.has_node(node_id)]
        if missing:
            raise NodeNotFound(sorted(missing, key=repr)[0])
        sub = Graph(name or f"{self.name}[induced]", store=store.fresh())
        sub_store = sub._store
        # Node/Edge are immutable value objects, so the subgraph shares them
        # with this graph instead of re-allocating copies
        for node_id in sorted(wanted, key=store.node_rank):
            sub_store.add_node(store.get_node(node_id))
        for edge in store.edges_between(wanted):
            sub_store.add_edge(edge)
        return sub

    def copy(self, name: Optional[str] = None) -> "Graph":
        """Return a deep, independent copy of this graph (same backend).

        Uses the engine's bulk clone fast path instead of re-inserting every
        node and edge through the checked facade operations.
        """
        clone = Graph(name or self.name, store=self._store.clone())
        return clone

    def is_subgraph_of(self, other: "Graph") -> bool:
        """Return True when every node and edge of this graph occurs in ``other``.

        Node labels and attributes must agree exactly, per the subgraph
        definition in Section 2 of the paper.  Backends may differ.
        """
        for node in self._store.nodes():
            other_node = other._store.get_node(node.id)
            if other_node is None:
                return False
            if other_node.label != node.label:
                return False
            if dict(other_node.attributes) != dict(node.attributes):
                return False
        return all(other._store.has_edge_key(edge.key()) for edge in self._store.edges())

    # ------------------------------------------------------------- statistics

    def node_count(self) -> int:
        """Return |V|."""
        return self._store.node_count()

    def edge_count(self) -> int:
        """Return |E|."""
        return self._store.edge_count()

    def density(self) -> float:
        """Return |E| / (|V| * (|V| - 1)), the density measure used in Section 7."""
        n = self._store.node_count()
        if n <= 1:
            return 0.0
        return self._store.edge_count() / (n * (n - 1))

    def average_degree(self) -> float:
        """Return the average total degree."""
        if not self._store.node_count():
            return 0.0
        return 2 * self._store.edge_count() / self._store.node_count()

    def labels(self) -> frozenset[str]:
        """Return the set of node labels present in the graph."""
        return self._store.labels()

    def edge_labels(self) -> frozenset[str]:
        """Return the set of edge labels present in the graph."""
        return self._store.edge_labels()

    # ---------------------------------------------------------------- dunders

    def __contains__(self, node_id: Hashable) -> bool:
        return self._store.has_node(node_id)

    def __len__(self) -> int:
        return self._store.node_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_nodes = {n.id: (n.label, dict(n.attributes)) for n in self.nodes()} == {
            n.id: (n.label, dict(n.attributes)) for n in other.nodes()
        }
        return same_nodes and {e.key() for e in self.edges()} == {e.key() for e in other.edges()}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Graph({self.name!r}, |V|={self._store.node_count()}, "
            f"|E|={self._store.edge_count()}, store={self._store.backend!r})"
        )

    # ---------------------------------------------------------------- helpers

    def total_size(self) -> int:
        """Return |V| + |E|, the size measure |G| used in the complexity analyses."""
        return self._store.node_count() + self._store.edge_count()

    def validate_consistency(self) -> None:
        """Check internal index consistency; raises :class:`GraphError` on corruption.

        Intended for tests and for use after bulk operations; the cost is
        linear in |G|.  Each engine validates its own index structures.
        """
        self._store.validate()
