"""Directed property graphs.

The paper (Section 2) works with directed graphs ``G = (V, E, L, F_A)``:

* ``V`` — a finite set of nodes;
* ``E ⊆ V × V`` — directed edges, each carrying a label;
* ``L`` — a labelling function on nodes and edges;
* ``F_A`` — for each node, a tuple of attribute/value pairs carrying the
  node's content (numbers, strings, dates).

:class:`Graph` implements this model with the indexes the detection
algorithms need:

* forward and reverse adjacency lists (``successors`` / ``predecessors``);
* a label index over nodes (``nodes_with_label``) used for candidate
  selection in pattern matching;
* an edge-label index keyed by ``(source_label, edge_label, target_label)``
  triples used by update-driven matching to locate update pivots quickly.

Unlike the formal model, parallel edges with *different labels* between the
same pair of nodes are allowed (real knowledge graphs have them); a second
edge with the same label is a no-op.  Node attribute values may be integers,
floats, or strings — literals only ever see the numeric ones.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound

__all__ = ["Node", "Edge", "Graph", "WILDCARD"]

#: Label that matches any node label during pattern matching.
WILDCARD = "_"


@dataclass(frozen=True)
class Node:
    """A graph node: an id, a label, and an attribute tuple.

    Nodes are immutable value objects; updating an attribute goes through
    :meth:`Graph.set_attribute`, which replaces the stored node.
    """

    id: Hashable
    label: str
    attributes: Mapping[str, object] = field(default_factory=dict)

    def attribute(self, name: str, default: object = None) -> object:
        """Return attribute ``name`` or ``default`` when absent."""
        return self.attributes.get(name, default)

    def has_attribute(self, name: str) -> bool:
        """Return True when the node carries attribute ``name``."""
        return name in self.attributes

    def with_attribute(self, name: str, value: object) -> "Node":
        """Return a copy of this node with attribute ``name`` set to ``value``."""
        new_attrs = dict(self.attributes)
        new_attrs[name] = value
        return Node(self.id, self.label, new_attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node({self.id!r}, {self.label!r}, {dict(self.attributes)!r})"


@dataclass(frozen=True)
class Edge:
    """A directed labelled edge ``source --label--> target``."""

    source: Hashable
    target: Hashable
    label: str

    def key(self) -> tuple[Hashable, Hashable, str]:
        """Return the canonical dictionary key for this edge."""
        return (self.source, self.target, self.label)

    def endpoints(self) -> tuple[Hashable, Hashable]:
        """Return ``(source, target)``."""
        return (self.source, self.target)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Edge({self.source!r} -[{self.label}]-> {self.target!r})"


class Graph:
    """A directed property graph with label and adjacency indexes.

    The class is deliberately simple and explicit: plain dictionaries and
    sets, no clever metaprogramming, so behaviour is easy to audit.  All
    mutating operations keep the indexes consistent.
    """

    def __init__(self, name: str = "G") -> None:
        self.name = name
        self._nodes: dict[Hashable, Node] = {}
        self._edges: dict[tuple[Hashable, Hashable, str], Edge] = {}
        # adjacency: node id -> set of (neighbour id, edge label)
        self._out: dict[Hashable, set[tuple[Hashable, str]]] = {}
        self._in: dict[Hashable, set[tuple[Hashable, str]]] = {}
        # label index: node label -> set of node ids
        self._label_index: dict[str, set[Hashable]] = {}
        # edge signature index: (source label, edge label, target label) -> set of edge keys
        self._edge_signature_index: dict[tuple[str, str, str], set[tuple[Hashable, Hashable, str]]] = {}

    # ------------------------------------------------------------------ nodes

    def add_node(
        self,
        node_id: Hashable,
        label: str,
        attributes: Optional[Mapping[str, object]] = None,
    ) -> Node:
        """Add a node and return it.

        Re-adding an identical node is a no-op; re-adding with a different
        label or attributes raises :class:`DuplicateNode`.
        """
        node = Node(node_id, label, dict(attributes or {}))
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.label == node.label and dict(existing.attributes) == dict(node.attributes):
                return existing
            raise DuplicateNode(node_id)
        self._nodes[node_id] = node
        self._out.setdefault(node_id, set())
        self._in.setdefault(node_id, set())
        self._label_index.setdefault(label, set()).add(node_id)
        return node

    def ensure_node(self, node_id: Hashable, label: str = WILDCARD) -> Node:
        """Return the node, creating it with ``label`` and no attributes if missing."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        return self.add_node(node_id, label)

    def node(self, node_id: Hashable) -> Node:
        """Return the node with id ``node_id`` or raise :class:`NodeNotFound`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFound(node_id) from None

    def has_node(self, node_id: Hashable) -> bool:
        """Return True when ``node_id`` is in the graph."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[Hashable]:
        """Iterate over all node ids."""
        return iter(self._nodes.keys())

    def nodes_with_label(self, label: str) -> frozenset[Hashable]:
        """Return the ids of all nodes carrying ``label``.

        The wildcard label returns every node id, matching the pattern
        semantics of Section 2 (wildcard matches any label).
        """
        if label == WILDCARD:
            return frozenset(self._nodes.keys())
        return frozenset(self._label_index.get(label, frozenset()))

    def set_attribute(self, node_id: Hashable, name: str, value: object) -> Node:
        """Set attribute ``name`` of node ``node_id`` to ``value`` and return the new node."""
        node = self.node(node_id)
        updated = node.with_attribute(name, value)
        self._nodes[node_id] = updated
        return updated

    def remove_node(self, node_id: Hashable) -> None:
        """Remove a node and all edges incident to it."""
        node = self.node(node_id)
        for neighbour, label in list(self._out.get(node_id, ())):
            self.remove_edge(node_id, neighbour, label)
        for neighbour, label in list(self._in.get(node_id, ())):
            self.remove_edge(neighbour, node_id, label)
        del self._nodes[node_id]
        self._out.pop(node_id, None)
        self._in.pop(node_id, None)
        bucket = self._label_index.get(node.label)
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._label_index[node.label]

    # ------------------------------------------------------------------ edges

    def add_edge(self, source: Hashable, target: Hashable, label: str) -> Edge:
        """Add a labelled edge; endpoints must already exist.

        Adding an edge that is already present is a no-op and returns the
        existing edge object.
        """
        if source not in self._nodes:
            raise NodeNotFound(source)
        if target not in self._nodes:
            raise NodeNotFound(target)
        key = (source, target, label)
        existing = self._edges.get(key)
        if existing is not None:
            return existing
        edge = Edge(source, target, label)
        self._edges[key] = edge
        self._out[source].add((target, label))
        self._in[target].add((source, label))
        signature = (self._nodes[source].label, label, self._nodes[target].label)
        self._edge_signature_index.setdefault(signature, set()).add(key)
        return edge

    def edge(self, source: Hashable, target: Hashable, label: str) -> Edge:
        """Return the edge or raise :class:`EdgeNotFound`."""
        try:
            return self._edges[(source, target, label)]
        except KeyError:
            raise EdgeNotFound(source, target, label) from None

    def has_edge(self, source: Hashable, target: Hashable, label: Optional[str] = None) -> bool:
        """Return True when an edge from ``source`` to ``target`` exists.

        When ``label`` is None, any label counts.
        """
        if label is not None:
            return (source, target, label) in self._edges
        return any(nbr == target for nbr, _ in self._out.get(source, ()))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def edges_with_signature(self, source_label: str, edge_label: str, target_label: str) -> list[Edge]:
        """Return edges whose endpoint labels and edge label match the signature.

        Wildcards in ``source_label``/``target_label`` match any node label.
        Used by update-driven matching to find update pivots.
        """
        if source_label != WILDCARD and target_label != WILDCARD:
            keys = self._edge_signature_index.get((source_label, edge_label, target_label), ())
            return [self._edges[key] for key in keys]
        matches = []
        for (s_label, e_label, t_label), keys in self._edge_signature_index.items():
            if e_label != edge_label:
                continue
            if source_label != WILDCARD and s_label != source_label:
                continue
            if target_label != WILDCARD and t_label != target_label:
                continue
            matches.extend(self._edges[key] for key in keys)
        return matches

    def remove_edge(self, source: Hashable, target: Hashable, label: str) -> None:
        """Remove an edge; raises :class:`EdgeNotFound` when absent."""
        key = (source, target, label)
        if key not in self._edges:
            raise EdgeNotFound(source, target, label)
        del self._edges[key]
        self._out[source].discard((target, label))
        self._in[target].discard((source, label))
        signature = (self._nodes[source].label, label, self._nodes[target].label)
        bucket = self._edge_signature_index.get(signature)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._edge_signature_index[signature]

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: Hashable) -> frozenset[tuple[Hashable, str]]:
        """Return the set of ``(target id, edge label)`` pairs leaving ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFound(node_id)
        return frozenset(self._out[node_id])

    def predecessors(self, node_id: Hashable) -> frozenset[tuple[Hashable, str]]:
        """Return the set of ``(source id, edge label)`` pairs entering ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFound(node_id)
        return frozenset(self._in[node_id])

    def neighbours(self, node_id: Hashable) -> frozenset[Hashable]:
        """Return ids adjacent to ``node_id`` ignoring direction and labels."""
        if node_id not in self._nodes:
            raise NodeNotFound(node_id)
        out_ids = {nbr for nbr, _ in self._out[node_id]}
        in_ids = {nbr for nbr, _ in self._in[node_id]}
        return frozenset(out_ids | in_ids)

    def degree(self, node_id: Hashable) -> int:
        """Return the total (in + out) degree of ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFound(node_id)
        return len(self._out[node_id]) + len(self._in[node_id])

    def adjacency_size(self, node_id: Hashable) -> int:
        """Alias of :meth:`degree`; the cost model of PIncDect uses |v.adj|."""
        return self.degree(node_id)

    # ------------------------------------------------------------- subgraphs

    def induced_subgraph(self, node_ids: Iterable[Hashable], name: Optional[str] = None) -> "Graph":
        """Return the subgraph induced by ``node_ids`` (Section 2).

        The result contains exactly the requested nodes (with their labels and
        attributes) and every edge of this graph whose endpoints both fall in
        the requested set.
        """
        wanted = set(node_ids)
        missing = wanted - self._nodes.keys()
        if missing:
            raise NodeNotFound(sorted(missing, key=repr)[0])
        sub = Graph(name or f"{self.name}[induced]")
        for node_id in wanted:
            node = self._nodes[node_id]
            sub.add_node(node.id, node.label, node.attributes)
        for edge in self._edges.values():
            if edge.source in wanted and edge.target in wanted:
                sub.add_edge(edge.source, edge.target, edge.label)
        return sub

    def copy(self, name: Optional[str] = None) -> "Graph":
        """Return a deep, independent copy of this graph."""
        clone = Graph(name or self.name)
        for node in self._nodes.values():
            clone.add_node(node.id, node.label, node.attributes)
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, edge.label)
        return clone

    def is_subgraph_of(self, other: "Graph") -> bool:
        """Return True when every node and edge of this graph occurs in ``other``.

        Node labels and attributes must agree exactly, per the subgraph
        definition in Section 2 of the paper.
        """
        for node in self._nodes.values():
            if not other.has_node(node.id):
                return False
            other_node = other.node(node.id)
            if other_node.label != node.label:
                return False
            if dict(other_node.attributes) != dict(node.attributes):
                return False
        return all(edge.key() in other._edges for edge in self._edges.values())

    # ------------------------------------------------------------- statistics

    def node_count(self) -> int:
        """Return |V|."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return |E|."""
        return len(self._edges)

    def density(self) -> float:
        """Return |E| / (|V| * (|V| - 1)), the density measure used in Section 7."""
        n = len(self._nodes)
        if n <= 1:
            return 0.0
        return len(self._edges) / (n * (n - 1))

    def average_degree(self) -> float:
        """Return the average total degree."""
        if not self._nodes:
            return 0.0
        return 2 * len(self._edges) / len(self._nodes)

    def labels(self) -> frozenset[str]:
        """Return the set of node labels present in the graph."""
        return frozenset(self._label_index.keys())

    def edge_labels(self) -> frozenset[str]:
        """Return the set of edge labels present in the graph."""
        return frozenset(edge.label for edge in self._edges.values())

    # ---------------------------------------------------------------- dunders

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_nodes = {n.id: (n.label, dict(n.attributes)) for n in self.nodes()} == {
            n.id: (n.label, dict(n.attributes)) for n in other.nodes()
        }
        return same_nodes and set(self._edges.keys()) == set(other._edges.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph({self.name!r}, |V|={len(self._nodes)}, |E|={len(self._edges)})"

    # ---------------------------------------------------------------- helpers

    def total_size(self) -> int:
        """Return |V| + |E|, the size measure |G| used in the complexity analyses."""
        return len(self._nodes) + len(self._edges)

    def validate_consistency(self) -> None:
        """Check internal index consistency; raises :class:`GraphError` on corruption.

        Intended for tests and for use after bulk operations; the cost is
        linear in |G|.
        """
        for (source, target, label), edge in self._edges.items():
            if source not in self._nodes or target not in self._nodes:
                raise GraphError(f"edge {edge!r} references a missing node")
            if (target, label) not in self._out.get(source, set()):
                raise GraphError(f"out-adjacency missing for {edge!r}")
            if (source, label) not in self._in.get(target, set()):
                raise GraphError(f"in-adjacency missing for {edge!r}")
        for label, ids in self._label_index.items():
            for node_id in ids:
                if node_id not in self._nodes or self._nodes[node_id].label != label:
                    raise GraphError(f"label index corrupt for label {label!r}, node {node_id!r}")
