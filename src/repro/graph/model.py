"""Value objects of the property-graph model: nodes, edges, the wildcard label.

Split out of :mod:`repro.graph.graph` so storage engines
(:mod:`repro.graph.store`) and the facade can share them without circular
imports.  Public code may keep importing ``Node``/``Edge``/``WILDCARD`` from
``repro.graph.graph``, which re-exports them.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

__all__ = ["Node", "Edge", "WILDCARD"]

#: Label that matches any node label during pattern matching.
WILDCARD = "_"


@dataclass(frozen=True)
class Node:
    """A graph node: an id, a label, and an attribute tuple.

    Nodes are immutable value objects; updating an attribute goes through
    :meth:`repro.graph.graph.Graph.set_attribute`, which replaces the stored
    node.
    """

    id: Hashable
    label: str
    attributes: Mapping[str, object] = field(default_factory=dict)

    def attribute(self, name: str, default: object = None) -> object:
        """Return attribute ``name`` or ``default`` when absent."""
        return self.attributes.get(name, default)

    def has_attribute(self, name: str) -> bool:
        """Return True when the node carries attribute ``name``."""
        return name in self.attributes

    def with_attribute(self, name: str, value: object) -> "Node":
        """Return a copy of this node with attribute ``name`` set to ``value``."""
        new_attrs = dict(self.attributes)
        new_attrs[name] = value
        return Node(self.id, self.label, new_attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node({self.id!r}, {self.label!r}, {dict(self.attributes)!r})"


@dataclass(frozen=True)
class Edge:
    """A directed labelled edge ``source --label--> target``."""

    source: Hashable
    target: Hashable
    label: str

    def key(self) -> tuple[Hashable, Hashable, str]:
        """Return the canonical dictionary key for this edge."""
        return (self.source, self.target, self.label)

    def endpoints(self) -> tuple[Hashable, Hashable]:
        """Return ``(source, target)``."""
        return (self.source, self.target)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Edge({self.source!r} -[{self.label}]-> {self.target!r})"
