"""Graph patterns ``Q[x̄]``.

A graph pattern (paper, Section 2) is a small directed graph whose nodes are
bound to distinct *variables*; pattern node and edge labels are drawn from the
same alphabet as data graphs, plus the wildcard ``_`` which matches any node
label.  A *match* of ``Q[x̄]`` in a data graph ``G`` is a homomorphism ``h``
preserving labels and edges; the match is reported as the vector ``h(x̄)``.

:class:`Pattern` stores the pattern graph together with the variable order
``x̄`` and provides the structural queries the matcher and the satisfiability
checker need: diameters, connectivity, adjacency of pattern nodes, and a
deterministic matching order seeded from a pivot edge (used by update-driven
incremental matching).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.errors import PatternError
from repro.graph.graph import WILDCARD, Graph

__all__ = ["PatternNode", "PatternEdge", "Pattern"]


@dataclass(frozen=True)
class PatternNode:
    """A pattern node: a variable name and a label (possibly the wildcard)."""

    variable: str
    label: str

    def matches_label(self, label: str) -> bool:
        """Return True when a data node carrying ``label`` can match this pattern node."""
        return self.label == WILDCARD or self.label == label


@dataclass(frozen=True)
class PatternEdge:
    """A pattern edge between two variables, carrying an edge label."""

    source: str
    target: str
    label: str

    def endpoints(self) -> tuple[str, str]:
        """Return ``(source variable, target variable)``."""
        return (self.source, self.target)


class Pattern:
    """A graph pattern ``Q[x̄]`` with a fixed variable order.

    Variables are strings; the bijection ``µ`` of the paper is implicit in the
    one-to-one correspondence between variables and pattern nodes.
    """

    def __init__(self, name: str = "Q") -> None:
        self.name = name
        self._nodes: dict[str, PatternNode] = {}
        self._order: list[str] = []
        self._edges: list[PatternEdge] = []
        self._edge_keys: set[tuple[str, str, str]] = set()
        self._out: dict[str, list[PatternEdge]] = {}
        self._in: dict[str, list[PatternEdge]] = {}

    # ----------------------------------------------------------- construction

    def add_node(self, variable: str, label: str = WILDCARD) -> PatternNode:
        """Add a pattern node bound to ``variable``; duplicate variables are rejected."""
        if not variable:
            raise PatternError("pattern variables must be non-empty strings")
        if variable in self._nodes:
            existing = self._nodes[variable]
            if existing.label == label:
                return existing
            raise PatternError(
                f"variable {variable!r} is already bound to label {existing.label!r}"
            )
        node = PatternNode(variable, label)
        self._nodes[variable] = node
        self._order.append(variable)
        self._out.setdefault(variable, [])
        self._in.setdefault(variable, [])
        return node

    def add_edge(self, source: str, target: str, label: str) -> PatternEdge:
        """Add a pattern edge; both endpoint variables must exist."""
        for variable in (source, target):
            if variable not in self._nodes:
                raise PatternError(f"pattern variable {variable!r} is not defined")
        key = (source, target, label)
        if key in self._edge_keys:
            return next(e for e in self._edges if (e.source, e.target, e.label) == key)
        edge = PatternEdge(source, target, label)
        self._edges.append(edge)
        self._edge_keys.add(key)
        self._out[source].append(edge)
        self._in[target].append(edge)
        return edge

    @classmethod
    def from_edges(
        cls,
        name: str,
        nodes: Iterable[tuple[str, str]],
        edges: Iterable[tuple[str, str, str]] = (),
    ) -> "Pattern":
        """Build a pattern from ``(variable, label)`` pairs and ``(src, dst, label)`` triples."""
        pattern = cls(name)
        for variable, label in nodes:
            pattern.add_node(variable, label)
        for source, target, label in edges:
            pattern.add_edge(source, target, label)
        return pattern

    # ---------------------------------------------------------------- queries

    @property
    def variables(self) -> tuple[str, ...]:
        """Return the variable list x̄ in insertion order."""
        return tuple(self._order)

    def node(self, variable: str) -> PatternNode:
        """Return the pattern node bound to ``variable``."""
        try:
            return self._nodes[variable]
        except KeyError:
            raise PatternError(f"pattern variable {variable!r} is not defined") from None

    def has_variable(self, variable: str) -> bool:
        """Return True when ``variable`` is bound in this pattern."""
        return variable in self._nodes

    def nodes(self) -> Iterator[PatternNode]:
        """Iterate over pattern nodes in variable order."""
        return (self._nodes[v] for v in self._order)

    def edges(self) -> tuple[PatternEdge, ...]:
        """Return the pattern edges in insertion order."""
        return tuple(self._edges)

    def out_edges(self, variable: str) -> tuple[PatternEdge, ...]:
        """Return pattern edges leaving ``variable``."""
        return tuple(self._out.get(variable, ()))

    def in_edges(self, variable: str) -> tuple[PatternEdge, ...]:
        """Return pattern edges entering ``variable``."""
        return tuple(self._in.get(variable, ()))

    def incident_edges(self, variable: str) -> tuple[PatternEdge, ...]:
        """Return all pattern edges touching ``variable``."""
        return tuple(self._out.get(variable, ())) + tuple(self._in.get(variable, ()))

    def neighbours(self, variable: str) -> frozenset[str]:
        """Return variables adjacent to ``variable`` ignoring direction."""
        adjacent = {e.target for e in self._out.get(variable, ())}
        adjacent.update(e.source for e in self._in.get(variable, ()))
        return frozenset(adjacent)

    def node_count(self) -> int:
        """Return the number of pattern nodes |V_Q|."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of pattern edges |E_Q|."""
        return len(self._edges)

    def size(self) -> int:
        """Return |V_Q| + |E_Q|."""
        return len(self._nodes) + len(self._edges)

    # ------------------------------------------------------------ structure

    def is_connected(self) -> bool:
        """Return True when the pattern is connected as an undirected graph."""
        if not self._nodes:
            return True
        seen = {self._order[0]}
        frontier = deque(seen)
        while frontier:
            current = frontier.popleft()
            for neighbour in self.neighbours(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._nodes)

    def connected_components(self) -> list[frozenset[str]]:
        """Return the variable sets of the undirected connected components."""
        remaining = set(self._order)
        components: list[frozenset[str]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                for neighbour in self.neighbours(current):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def distances_from(self, variable: str) -> dict[str, int]:
        """Return undirected BFS distances from ``variable`` to every reachable variable."""
        distances = {variable: 0}
        frontier = deque([variable])
        while frontier:
            current = frontier.popleft()
            for neighbour in self.neighbours(current):
                if neighbour not in distances:
                    distances[neighbour] = distances[current] + 1
                    frontier.append(neighbour)
        return distances

    def diameter(self) -> int:
        """Return the pattern diameter d_Q (Section 6.1).

        Defined as the maximum undirected shortest-path distance between any
        two pattern nodes in the same connected component.  A single-node or
        empty pattern has diameter 0.
        """
        best = 0
        for variable in self._order:
            distances = self.distances_from(variable)
            if distances:
                best = max(best, max(distances.values()))
        return best

    def radius_from(self, variable: str) -> int:
        """Return the eccentricity of ``variable`` within its component."""
        distances = self.distances_from(variable)
        return max(distances.values()) if distances else 0

    # ------------------------------------------------------- matching support

    def matching_order(self, seed: Optional[Sequence[str]] = None) -> list[str]:
        """Return a connectivity-respecting order over all variables.

        The order starts from ``seed`` (e.g. the endpoints of an update pivot)
        and repeatedly appends a not-yet-ordered variable adjacent to the
        ordered prefix; disconnected leftovers (only possible for disconnected
        patterns) are appended afterwards component by component.  Backtracking
        matchers use this order so each new variable can be constrained by at
        least one already-matched neighbour.
        """
        order: list[str] = []
        placed: set[str] = set()

        def place(variable: str) -> None:
            if variable not in placed:
                order.append(variable)
                placed.add(variable)

        for variable in seed or ():
            if variable not in self._nodes:
                raise PatternError(f"seed variable {variable!r} is not in the pattern")
            place(variable)

        def expand_from_prefix() -> bool:
            for variable in list(order):
                for neighbour in sorted(self.neighbours(variable)):
                    if neighbour not in placed:
                        place(neighbour)
                        return True
            return False

        while len(placed) < len(self._nodes):
            if order and expand_from_prefix():
                continue
            # start a new component deterministically
            for variable in self._order:
                if variable not in placed:
                    place(variable)
                    break

        return order

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Return a JSON-serialisable description of the pattern.

        Shape: ``{"name": ..., "nodes": [[variable, label], ...],
        "edges": [[source, target, label], ...]}`` with nodes in variable
        order and edges in insertion order, so :meth:`from_dict` rebuilds an
        ``==``-identical pattern.
        """
        return {
            "name": self.name,
            "nodes": [[variable, self._nodes[variable].label] for variable in self._order],
            "edges": [[edge.source, edge.target, edge.label] for edge in self._edges],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Pattern":
        """Rebuild a pattern from :meth:`to_dict` output.

        Raises :class:`PatternError` on structurally malformed documents
        (wrong entry shapes included), so callers such as the CLI's
        ``--rules-file`` loader can map any bad input to a usage error.
        """
        if not isinstance(document, dict) or "nodes" not in document:
            raise PatternError("pattern document must be a dict with a 'nodes' list")
        try:
            nodes = [(variable, label) for variable, label in document["nodes"]]
            edges = [
                (source, target, label)
                for source, target, label in document.get("edges", ())
            ]
        except (TypeError, ValueError) as exc:
            raise PatternError(
                "pattern document entries must be [variable, label] node pairs "
                f"and [source, target, label] edge triples: {exc}"
            ) from exc
        return cls.from_edges(document.get("name", "Q"), nodes=nodes, edges=edges)

    def to_graph(self, label_attributes: Optional[dict[str, dict[str, object]]] = None) -> Graph:
        """Materialise the pattern as a data graph (used by the satisfiability checker).

        Each pattern node becomes a data node whose id is the variable name;
        wildcard labels are kept verbatim.  ``label_attributes`` optionally
        supplies attribute tuples per variable.
        """
        graph = Graph(f"{self.name}-canonical")
        attrs = label_attributes or {}
        for variable in self._order:
            node = self._nodes[variable]
            graph.add_node(variable, node.label, attrs.get(variable, {}))
        for edge in self._edges:
            graph.add_edge(edge.source, edge.target, edge.label)
        return graph

    # ---------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self._order == other._order
            and {v: n.label for v, n in self._nodes.items()}
            == {v: n.label for v, n in other._nodes.items()}
            and self._edge_keys == other._edge_keys
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(self._order),
                tuple(sorted((v, n.label) for v, n in self._nodes.items())),
                tuple(sorted(self._edge_keys)),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pattern({self.name!r}, vars={self._order}, edges={len(self._edges)})"
