"""Batch updates ``ΔG`` and the update operator ``G ⊕ ΔG``.

The paper (Section 5.2) defines a *unit update* as an edge insertion or an
edge deletion.  Insertions may introduce new nodes (carrying labels and
attributes); deletions only remove the link, leaving endpoints in place.  A
*batch update* ΔG is a sequence of unit updates, and ``G ⊕ ΔG`` is the graph
obtained by applying them in order.

This module provides:

* :class:`EdgeInsertion` / :class:`EdgeDeletion` — unit updates;
* :class:`BatchUpdate` — an ordered batch with the queries the incremental
  algorithms need (inserted/deleted edge sets, touched nodes);
* :func:`apply_update` — compute ``G ⊕ ΔG`` (optionally in place);
* :class:`UpdateGenerator` — random batch-update generation controlled by
  ``|ΔG|`` and the insertion/deletion ratio γ, as used in Section 7.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import UpdateError
from repro.graph.graph import Graph, WILDCARD

__all__ = [
    "EdgeInsertion",
    "EdgeDeletion",
    "UnitUpdate",
    "BatchUpdate",
    "apply_update",
    "UpdateGenerator",
]


@dataclass(frozen=True)
class NodePayload:
    """Label and attributes for a node introduced by an edge insertion."""

    label: str = WILDCARD
    attributes: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EdgeInsertion:
    """``insert (source -[label]-> target)``.

    ``source_payload`` / ``target_payload`` describe the endpoints when they
    do not yet exist in the target graph; they are ignored for existing nodes.
    """

    source: Hashable
    target: Hashable
    label: str
    source_payload: Optional[NodePayload] = None
    target_payload: Optional[NodePayload] = None

    @property
    def is_insertion(self) -> bool:
        return True

    def edge_key(self) -> tuple[Hashable, Hashable, str]:
        """Return ``(source, target, label)``."""
        return (self.source, self.target, self.label)


@dataclass(frozen=True)
class EdgeDeletion:
    """``delete (source -[label]-> target)``."""

    source: Hashable
    target: Hashable
    label: str

    @property
    def is_insertion(self) -> bool:
        return False

    def edge_key(self) -> tuple[Hashable, Hashable, str]:
        """Return ``(source, target, label)``."""
        return (self.source, self.target, self.label)


UnitUpdate = Union[EdgeInsertion, EdgeDeletion]


class BatchUpdate:
    """An ordered batch of unit updates with convenience queries.

    The incremental algorithms treat ΔG as two sets, ΔG⁺ (insertions) and
    ΔG⁻ (deletions); ordering only matters when applying ΔG to a graph.
    """

    def __init__(self, updates: Iterable[UnitUpdate] = ()) -> None:
        self._updates: list[UnitUpdate] = list(updates)

    # ----------------------------------------------------------- construction

    def insert(
        self,
        source: Hashable,
        target: Hashable,
        label: str,
        source_payload: Optional[NodePayload] = None,
        target_payload: Optional[NodePayload] = None,
    ) -> "BatchUpdate":
        """Append an edge insertion and return self (builder style)."""
        self._updates.append(
            EdgeInsertion(source, target, label, source_payload, target_payload)
        )
        return self

    def delete(self, source: Hashable, target: Hashable, label: str) -> "BatchUpdate":
        """Append an edge deletion and return self (builder style)."""
        self._updates.append(EdgeDeletion(source, target, label))
        return self

    def extend(self, updates: Iterable[UnitUpdate]) -> "BatchUpdate":
        """Append several unit updates and return self."""
        self._updates.extend(updates)
        return self

    # ---------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[UnitUpdate]:
        return iter(self._updates)

    def __bool__(self) -> bool:
        return bool(self._updates)

    @property
    def insertions(self) -> tuple[EdgeInsertion, ...]:
        """Return ΔG⁺, the edge insertions in batch order."""
        return tuple(u for u in self._updates if isinstance(u, EdgeInsertion))

    @property
    def deletions(self) -> tuple[EdgeDeletion, ...]:
        """Return ΔG⁻, the edge deletions in batch order."""
        return tuple(u for u in self._updates if isinstance(u, EdgeDeletion))

    def inserted_edge_keys(self) -> frozenset[tuple[Hashable, Hashable, str]]:
        """Return the ``(source, target, label)`` keys of all insertions."""
        return frozenset(u.edge_key() for u in self.insertions)

    def deleted_edge_keys(self) -> frozenset[tuple[Hashable, Hashable, str]]:
        """Return the ``(source, target, label)`` keys of all deletions."""
        return frozenset(u.edge_key() for u in self.deletions)

    def touched_nodes(self) -> frozenset[Hashable]:
        """Return every node id that appears as an endpoint of some unit update."""
        nodes: set[Hashable] = set()
        for update in self._updates:
            nodes.add(update.source)
            nodes.add(update.target)
        return frozenset(nodes)

    def insertion_deletion_ratio(self) -> float:
        """Return γ = |ΔG⁺| / |ΔG⁻| (``inf`` when there are no deletions)."""
        inserts = len(self.insertions)
        deletes = len(self.deletions)
        if deletes == 0:
            return float("inf") if inserts else 0.0
        return inserts / deletes

    def reversed(self) -> "BatchUpdate":
        """Return the inverse batch (insertions become deletions and vice versa).

        Node payloads are dropped; applying ``ΔG`` then ``ΔG.reversed()``
        restores the original edge set (new isolated nodes may remain).
        """
        inverse: list[UnitUpdate] = []
        for update in reversed(self._updates):
            if isinstance(update, EdgeInsertion):
                inverse.append(EdgeDeletion(update.source, update.target, update.label))
            else:
                inverse.append(EdgeInsertion(update.source, update.target, update.label))
        return BatchUpdate(inverse)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BatchUpdate(+{len(self.insertions)}, -{len(self.deletions)})"


def apply_update(graph: Graph, delta: BatchUpdate, in_place: bool = False) -> Graph:
    """Return ``G ⊕ ΔG``.

    Insertions create missing endpoint nodes using their payloads (wildcard
    label, empty attributes when no payload is given).  Deleting an edge that
    is absent, or inserting one whose endpoints cannot be created, raises
    :class:`UpdateError` — silently ignoring either would let experiment
    drivers measure the wrong workload.

    When ``in_place`` is False the update is applied to a bulk clone of the
    graph (same storage backend, index structures copied wholesale rather
    than re-inserted edge by edge), so building ``G ⊕ ΔG`` costs
    O(|G| + |ΔG|) dictionary copies, not |G| checked insertions.
    """
    target = graph if in_place else graph.copy()
    for update in delta:
        if isinstance(update, EdgeInsertion):
            _apply_insertion(target, update)
        else:
            _apply_deletion(target, update)
    return target


def _apply_insertion(graph: Graph, update: EdgeInsertion) -> None:
    for node_id, payload in (
        (update.source, update.source_payload),
        (update.target, update.target_payload),
    ):
        if not graph.has_node(node_id):
            payload = payload or NodePayload()
            graph.add_node(node_id, payload.label, payload.attributes)
    if graph.has_edge(update.source, update.target, update.label):
        raise UpdateError(
            f"cannot insert duplicate edge {update.source!r} -[{update.label}]-> {update.target!r}"
        )
    graph.add_edge(update.source, update.target, update.label)


def _apply_deletion(graph: Graph, update: EdgeDeletion) -> None:
    if not graph.has_edge(update.source, update.target, update.label):
        raise UpdateError(
            f"cannot delete missing edge {update.source!r} -[{update.label}]-> {update.target!r}"
        )
    graph.remove_edge(update.source, update.target, update.label)


class UpdateGenerator:
    """Random batch updates controlled by size and insertion/deletion ratio.

    Mirrors the experimental setup of Section 7: "updates ΔG to graph G are
    randomly generated, controlled by the size |ΔG| and a ratio γ of edge
    insertions to deletions".  Deletions pick existing edges uniformly at
    random; insertions either close a new edge between existing nodes (with a
    label sampled from the graph's edge labels) or attach a brand-new node.
    """

    def __init__(self, seed: int = 0, new_node_probability: float = 0.25) -> None:
        if not 0.0 <= new_node_probability <= 1.0:
            raise UpdateError("new_node_probability must be within [0, 1]")
        self._rng = random.Random(seed)
        self._new_node_probability = new_node_probability
        self._batch_counter = 0

    def generate(
        self,
        graph: Graph,
        size: int,
        insert_ratio: float = 0.5,
        labels: Optional[Sequence[str]] = None,
    ) -> BatchUpdate:
        """Return a batch update of ``size`` unit updates against ``graph``.

        ``insert_ratio`` is the fraction of insertions (γ = 1 corresponds to
        0.5); it is clamped by the number of edges available for deletion.
        """
        if size < 0:
            raise UpdateError("batch update size must be non-negative")
        if not 0.0 <= insert_ratio <= 1.0:
            raise UpdateError("insert_ratio must be within [0, 1]")
        edge_pool = list(graph.edges())
        node_pool = list(graph.node_ids())
        if not node_pool and size > 0:
            raise UpdateError("cannot generate updates against an empty graph")
        # labels() / edge_labels() return frozensets whose iteration order is
        # hash-dependent; sort before sampling so the generated batch is a
        # pure function of (graph, seed) across interpreter runs
        edge_labels = sorted(labels or graph.edge_labels() or ("link",))
        node_labels = sorted(graph.labels() or (WILDCARD,))

        wanted_inserts = round(size * insert_ratio)
        wanted_deletes = size - wanted_inserts
        wanted_deletes = min(wanted_deletes, len(edge_pool))
        wanted_inserts = size - wanted_deletes

        batch = BatchUpdate()
        # edge_pool follows the store's insertion order, so the shuffle (and
        # with it the whole batch) is deterministic given the seed on every
        # backend and across interpreter runs
        self._rng.shuffle(edge_pool)
        existing_keys = {e.key() for e in edge_pool}
        for edge in edge_pool[:wanted_deletes]:
            batch.delete(edge.source, edge.target, edge.label)

        self._batch_counter += 1
        fresh_counter = 0
        attempts = 0
        while len(batch.insertions) < wanted_inserts and attempts < 50 * max(1, wanted_inserts):
            attempts += 1
            label = self._rng.choice(edge_labels)
            if self._rng.random() < self._new_node_probability:
                fresh_counter += 1
                # stable ids (the old scheme embedded id(graph), a memory
                # address, making batches differ between interpreter runs)
                new_id = f"new-{self._batch_counter}-{fresh_counter}"
                if graph.has_node(new_id):
                    continue
                anchor = self._rng.choice(node_pool)
                payload = NodePayload(self._rng.choice(node_labels), {"val": self._rng.randint(0, 1000)})
                batch.insert(anchor, new_id, label, target_payload=payload)
                existing_keys.add((anchor, new_id, label))
                continue
            source = self._rng.choice(node_pool)
            target = self._rng.choice(node_pool)
            key = (source, target, label)
            if source == target or key in existing_keys:
                continue
            batch.insert(source, target, label)
            existing_keys.add(key)
        return batch
