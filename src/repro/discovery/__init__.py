"""Levelwise NGD discovery (the rule-mining step of the paper's experimental setup)."""

from repro.discovery.discover import DiscoveryConfig, discover_ngds, mine_frequent_patterns

__all__ = ["DiscoveryConfig", "discover_ngds", "mine_frequent_patterns"]
