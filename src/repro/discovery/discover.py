"""Levelwise NGD discovery.

The paper obtains its benchmark rules by "extending the algorithm of [22] to
discover NGDs from the graphs", interleaving *vertical* levelwise expansion
(growing frequent patterns) with *horizontal* levelwise expansion (mining
literals for X → Y).  This module implements a compact version of that
process:

1. **Pattern mining** — frequent single-edge patterns are seeded from the
   graph's edge signatures; each level extends a frequent pattern by one
   edge anchored at an existing variable, keeping patterns whose (sampled)
   match count meets the support threshold and whose diameter stays within
   the requested bound.
2. **Literal mining** — for each frequent pattern, matches are sampled and
   their numeric attributes collected; candidate literals (order comparisons
   between variables, bounds against observed constants, and two-variable
   sums) are scored by *confidence* (the fraction of sampled matches that
   satisfy them); literals above the confidence threshold become conclusions,
   optionally guarded by a high-support premise literal.

The discovered rules are returned as a :class:`RuleSet` ready to be fed to
the detection algorithms; with ``confidence < 1.0`` they are deliberately
allowed to have (a few) violations in the graph they were mined from, just
like real-world data quality rules.
"""

from __future__ import annotations

import itertools
import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.ngd import NGD, RuleSet
from repro.errors import DiscoveryError
from repro.expr.expressions import const, var
from repro.expr.literals import Comparison, Literal, LiteralSet
from repro.graph.graph import Graph
from repro.graph.pattern import Pattern
from repro.matching.matchn import HomomorphismMatcher

__all__ = ["DiscoveryConfig", "discover_ngds", "mine_frequent_patterns"]


@dataclass(frozen=True)
class DiscoveryConfig:
    """Tuning knobs for the miner."""

    max_pattern_edges: int = 3
    max_diameter: int = 4
    min_support: int = 5
    match_sample: int = 200
    min_confidence: float = 0.95
    max_rules: int = 100
    max_literals: int = 2
    seed: int = 0


def _edge_signatures(graph: Graph, min_support: int) -> list[tuple[str, str, str, int]]:
    """Return frequent (source label, edge label, target label) signatures with counts."""
    counts: Counter[tuple[str, str, str]] = Counter()
    for edge in graph.edges():
        signature = (graph.node(edge.source).label, edge.label, graph.node(edge.target).label)
        counts[signature] += 1
    return [
        (source, label, target, count)
        for (source, label, target), count in counts.most_common()
        if count >= min_support
    ]


def _count_matches(graph: Graph, pattern: Pattern, cap: int) -> int:
    """Count matches of ``pattern`` in ``graph``, stopping at ``cap``."""
    matcher = HomomorphismMatcher(graph, pattern)
    count = 0
    for _ in matcher.matches():
        count += 1
        if count >= cap:
            break
    return count


def mine_frequent_patterns(graph: Graph, config: DiscoveryConfig) -> list[Pattern]:
    """Vertical levelwise expansion: grow frequent connected patterns edge by edge."""
    signatures = _edge_signatures(graph, config.min_support)
    if not signatures:
        raise DiscoveryError("the graph has no edge signature meeting the support threshold")

    level: list[Pattern] = []
    counter = itertools.count()
    for source_label, edge_label, target_label, _ in signatures:
        index = next(counter)
        pattern = Pattern.from_edges(
            f"mined_{index}",
            nodes=[("x0", source_label), ("x1", target_label)],
            edges=[("x0", "x1", edge_label)],
        )
        level.append(pattern)

    frequent: list[Pattern] = list(level)
    for _ in range(config.max_pattern_edges - 1):
        next_level: list[Pattern] = []
        for pattern in level:
            for extended in _extensions(pattern, signatures, counter):
                if extended.diameter() > config.max_diameter:
                    continue
                if _count_matches(graph, extended, config.min_support) >= config.min_support:
                    next_level.append(extended)
        if not next_level:
            break
        frequent.extend(next_level)
        level = next_level
        if len(frequent) >= 4 * config.max_rules:
            break
    return frequent


def _extensions(
    pattern: Pattern, signatures: list[tuple[str, str, str, int]], counter: Iterator[int]
) -> Iterator[Pattern]:
    """Yield patterns extending ``pattern`` with one new edge to a fresh variable."""
    for variable in pattern.variables:
        anchor_label = pattern.node(variable).label
        for source_label, edge_label, target_label, _ in signatures:
            if source_label == anchor_label:
                fresh = f"x{pattern.node_count()}"
                extended = _clone_with(pattern, next(counter))
                extended.add_node(fresh, target_label)
                extended.add_edge(variable, fresh, edge_label)
                yield extended
            if target_label == anchor_label:
                fresh = f"x{pattern.node_count()}"
                extended = _clone_with(pattern, next(counter))
                extended.add_node(fresh, source_label)
                extended.add_edge(fresh, variable, edge_label)
                yield extended


def _clone_with(pattern: Pattern, index: int) -> Pattern:
    clone = Pattern(f"mined_{index}")
    for variable in pattern.variables:
        clone.add_node(variable, pattern.node(variable).label)
    for edge in pattern.edges():
        clone.add_edge(edge.source, edge.target, edge.label)
    return clone


def _sample_assignments(
    graph: Graph, pattern: Pattern, sample: int
) -> list[dict[tuple[str, str], object]]:
    """Collect numeric attribute assignments from up to ``sample`` matches."""
    matcher = HomomorphismMatcher(graph, pattern)
    assignments: list[dict[tuple[str, str], object]] = []
    for match in matcher.matches():
        assignment: dict[tuple[str, str], object] = {}
        for variable, node_id in match.items():
            node = graph.node(node_id)
            for attribute, value in node.attributes.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    assignment[(variable, attribute)] = value
        assignments.append(assignment)
        if len(assignments) >= sample:
            break
    return assignments


def _candidate_literals(
    assignments: list[dict[tuple[str, str], object]], rng: random.Random
) -> list[Literal]:
    """Propose literals over the attributes observed in the sampled matches."""
    if not assignments:
        return []
    keys = sorted(set().union(*[set(a.keys()) for a in assignments]))
    literals: list[Literal] = []
    for key in keys:
        values = [a[key] for a in assignments if key in a]
        if not values:
            continue
        variable, attribute = key
        literals.append(Literal(var(variable, attribute), Comparison.GE, const(int(min(values)))))
        literals.append(Literal(var(variable, attribute), Comparison.LE, const(int(max(values)))))
    for left, right in itertools.combinations(keys, 2):
        lv, la = left
        rv, ra = right
        literals.append(Literal(var(lv, la), Comparison.LE, var(rv, ra)))
        literals.append(Literal(var(lv, la) + var(rv, ra), Comparison.GE, const(0)))
    rng.shuffle(literals)
    return literals


def _confidence(literal: Literal, assignments: list[dict[tuple[str, str], object]]) -> float:
    satisfied = sum(1 for assignment in assignments if literal.holds_for(assignment))
    return satisfied / len(assignments) if assignments else 0.0


def discover_ngds(graph: Graph, config: Optional[DiscoveryConfig] = None) -> RuleSet:
    """Mine a rule set of NGDs from ``graph`` (vertical + horizontal levelwise expansion)."""
    config = config or DiscoveryConfig()
    rng = random.Random(config.seed)
    patterns = mine_frequent_patterns(graph, config)
    rules: list[NGD] = []
    for pattern in patterns:
        if len(rules) >= config.max_rules:
            break
        assignments = _sample_assignments(graph, pattern, config.match_sample)
        if not assignments:
            continue
        candidates = _candidate_literals(assignments, rng)
        conclusions = [
            literal
            for literal in candidates
            if _confidence(literal, assignments) >= config.min_confidence
        ][: config.max_literals]
        if not conclusions:
            continue
        premise_pool = [
            literal
            for literal in candidates
            if literal not in conclusions and _confidence(literal, assignments) >= 0.99
        ]
        premise = LiteralSet(premise_pool[:1]) if premise_pool and rng.random() < 0.5 else LiteralSet()
        rules.append(
            NGD(
                pattern,
                premise=premise,
                conclusion=LiteralSet(conclusions),
                name=f"discovered_{len(rules)}",
            )
        )
    return RuleSet(rules, name=f"discovered({graph.name})")
